//! Lowering of a single IR operator to its PyTorch expression — the paper's
//! `GeneratePytorchCodeForOperandType`.

use ramiel_ir::{DType, OpKind};

fn int_list(v: &[i64]) -> String {
    let items: Vec<String> = v.iter().map(|d| d.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn usize_list(v: &[usize]) -> String {
    let items: Vec<String> = v.iter().map(|d| d.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn isize_list(v: &[isize]) -> String {
    let items: Vec<String> = v.iter().map(|d| d.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// Render the right-hand side of `out = <expr>` for one node. `args` are the
/// already-SSA-renamed Python names of the node's inputs.
pub fn torch_expr(op: &OpKind, args: &[String]) -> String {
    let a = |i: usize| args.get(i).cloned().unwrap_or_else(|| "None".into());
    match op {
        OpKind::Conv {
            stride,
            pads,
            groups,
            ..
        } => {
            let bias = if args.len() > 2 { a(2) } else { "None".into() };
            format!(
                "F.conv2d({}, {}, {bias}, stride=({}, {}), padding=({}, {}), groups={})",
                a(0),
                a(1),
                stride.0,
                stride.1,
                pads.0,
                pads.1,
                groups
            )
        }
        OpKind::MatMul => format!("torch.matmul({}, {})", a(0), a(1)),
        OpKind::Gemm { trans_b } => {
            let w = if *trans_b {
                a(1)
            } else {
                format!("{}.t()", a(1))
            };
            let bias = if args.len() > 2 { a(2) } else { "None".into() };
            format!("F.linear({}, {w}, {bias})", a(0))
        }
        OpKind::Relu => format!("F.relu({})", a(0)),
        OpKind::LeakyRelu { alpha } => format!("F.leaky_relu({}, {alpha})", a(0)),
        OpKind::Sigmoid => format!("torch.sigmoid({})", a(0)),
        OpKind::Tanh => format!("torch.tanh({})", a(0)),
        OpKind::Gelu => format!("F.gelu({})", a(0)),
        OpKind::Erf => format!("torch.erf({})", a(0)),
        OpKind::Sqrt => format!("torch.sqrt({})", a(0)),
        OpKind::Exp => format!("torch.exp({})", a(0)),
        OpKind::Neg => format!("-{}", a(0)),
        OpKind::Clip { min, max } => format!("torch.clamp({}, {min}, {max})", a(0)),
        OpKind::Dropout | OpKind::Identity => a(0),
        OpKind::Add => format!("{} + {}", a(0), a(1)),
        OpKind::Sub => format!("{} - {}", a(0), a(1)),
        OpKind::Mul => format!("{} * {}", a(0), a(1)),
        OpKind::Div => format!("{} / {}", a(0), a(1)),
        OpKind::Pow => format!("torch.pow({}, {})", a(0), a(1)),
        OpKind::Equal => format!("torch.eq({}, {})", a(0), a(1)),
        OpKind::Where => format!("torch.where({}, {}, {})", a(0), a(1), a(2)),
        OpKind::Softmax { axis } => format!("F.softmax({}, dim={axis})", a(0)),
        OpKind::BatchNorm { epsilon } => format!(
            "F.batch_norm({}, {}, {}, weight={}, bias={}, training=False, eps={epsilon})",
            a(0),
            a(3),
            a(4),
            a(1),
            a(2)
        ),
        OpKind::LayerNorm { epsilon } => format!(
            "F.layer_norm({}, {}.shape, weight={}, bias={}, eps={epsilon})",
            a(0),
            a(1),
            a(1),
            a(2)
        ),
        OpKind::ReduceMean { axes, keepdims } => format!(
            "torch.mean({}, dim={}, keepdim={})",
            a(0),
            isize_list(axes),
            if *keepdims { "True" } else { "False" }
        ),
        OpKind::MaxPool(p) => format!(
            "F.max_pool2d({}, ({}, {}), stride=({}, {}), padding=({}, {}), ceil_mode={})",
            a(0),
            p.kernel.0,
            p.kernel.1,
            p.stride.0,
            p.stride.1,
            p.pads.0,
            p.pads.1,
            if p.ceil_mode { "True" } else { "False" }
        ),
        OpKind::AveragePool(p) => format!(
            "F.avg_pool2d({}, ({}, {}), stride=({}, {}), padding=({}, {}), ceil_mode={}, count_include_pad=False)",
            a(0),
            p.kernel.0,
            p.kernel.1,
            p.stride.0,
            p.stride.1,
            p.pads.0,
            p.pads.1,
            if p.ceil_mode { "True" } else { "False" }
        ),
        OpKind::GlobalAveragePool => format!("F.adaptive_avg_pool2d({}, 1)", a(0)),
        OpKind::Concat { axis } => format!("torch.cat([{}], dim={axis})", args.join(", ")),
        OpKind::Split { axis, parts } => format!(
            "torch.split({}, {}, dim={axis})",
            a(0),
            usize_list(parts)
        ),
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } => format!(
            "_slice({}, {}, {}, {}, {})",
            a(0),
            isize_list(axes),
            int_list(starts),
            int_list(ends),
            int_list(steps)
        ),
        OpKind::Gather { axis } => format!("_gather({}, {}, {axis})", a(0), a(1)),
        OpKind::Reshape => format!("torch.reshape({}, _shape({}, {}))", a(0), a(0), a(1)),
        OpKind::Transpose { perm } => format!("{}.permute({})", a(0), usize_list(perm)),
        OpKind::Flatten { axis } => format!("torch.flatten({}, {axis})", a(0)),
        OpKind::Unsqueeze { axes } => {
            let mut expr = a(0);
            for ax in axes {
                expr = format!("torch.unsqueeze({expr}, {ax})");
            }
            expr
        }
        OpKind::Squeeze { axes } => {
            let mut expr = a(0);
            // squeeze from the back so earlier axes stay valid
            let mut axs = axes.clone();
            axs.sort_unstable_by(|x, y| y.cmp(x));
            for ax in axs {
                expr = format!("torch.squeeze({expr}, {ax})");
            }
            expr
        }
        OpKind::Expand => format!("{}.expand(_shape({}, {}))", a(0), a(0), a(1)),
        OpKind::Resize { scale } => format!(
            "F.interpolate({}, scale_factor=({}, {}), mode='nearest')",
            a(0),
            scale.0,
            scale.1
        ),
        OpKind::Pad { pads } => format!(
            "F.pad({}, ({}, {}, {}, {}))", // torch order: left, right, top, bottom
            a(0),
            pads.1,
            pads.3,
            pads.0,
            pads.2
        ),
        OpKind::Cast { to } => {
            let dt = match to {
                DType::F32 => "torch.float32",
                DType::I64 => "torch.int64",
                DType::Bool => "torch.bool",
            };
            format!("{}.to({dt})", a(0))
        }
        OpKind::Constant => "None  # resolved from weights".into(),
        OpKind::Shape => format!("torch.tensor({}.shape, dtype=torch.int64)", a(0)),
        OpKind::ConstantOfShape { value } => {
            format!("torch.full(_shape(None, {}), {value})", a(0))
        }
    }
}

/// Helper functions injected once at the top of every generated module.
pub const PY_HELPERS: &str = r#"
def _slice(x, axes, starts, ends, steps):
    idx = [slice(None)] * x.dim()
    for ax, s, e, st in zip(axes, starts, ends, steps):
        e = None if e >= 2**62 else e
        idx[ax] = slice(s, e, st)
    return x[tuple(idx)]


def _gather(x, indices, axis):
    return torch.index_select(x, axis, indices.reshape(-1)).reshape(
        x.shape[:axis] + tuple(indices.shape) + x.shape[axis + 1:]
    )


def _shape(x, spec):
    dims = [int(d) for d in spec]
    if x is not None:
        for i, d in enumerate(dims):
            if d == 0:
                dims[i] = x.shape[i]
    return dims
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> String {
        v.to_string()
    }

    #[test]
    fn conv_lowering() {
        let op = OpKind::Conv {
            kernel: (3, 3),
            stride: (2, 2),
            pads: (1, 1),
            groups: 1,
        };
        let e = torch_expr(&op, &[s("x"), s("w"), s("b")]);
        assert_eq!(
            e,
            "F.conv2d(x, w, b, stride=(2, 2), padding=(1, 1), groups=1)"
        );
    }

    #[test]
    fn binary_and_activation_lowering() {
        assert_eq!(torch_expr(&OpKind::Add, &[s("a"), s("b")]), "a + b");
        assert_eq!(torch_expr(&OpKind::Relu, &[s("x")]), "F.relu(x)");
        assert_eq!(
            torch_expr(&OpKind::Softmax { axis: -1 }, &[s("x")]),
            "F.softmax(x, dim=-1)"
        );
    }

    #[test]
    fn gemm_transposes_when_needed() {
        assert!(
            torch_expr(&OpKind::Gemm { trans_b: true }, &[s("x"), s("w"), s("b")])
                .contains("F.linear(x, w, b)")
        );
        assert!(torch_expr(&OpKind::Gemm { trans_b: false }, &[s("x"), s("w")]).contains("w.t()"));
    }

    #[test]
    fn helpers_define_slice_gather_shape() {
        assert!(PY_HELPERS.contains("def _slice"));
        assert!(PY_HELPERS.contains("def _gather"));
        assert!(PY_HELPERS.contains("def _shape"));
    }
}
