//! # ramiel-codegen
//!
//! Generates **readable, runnable PyTorch + Python** from a clustered
//! dataflow graph — the paper's headline differentiator ("contrary to other
//! work, we generate readable and executable parallel Pytorch+Python code").
//!
//! [`generate_parallel`] implements Algorithm 4: each cluster becomes a
//! Python method; every cross-cluster tensor dependence becomes a
//! `queues[...].put(...)` in the producer and a matching
//! `queues[...].get()` in the consumer; node outputs get fresh SSA names;
//! each node lowers to the equivalent `torch` call. A `__main__` harness
//! forks one `multiprocessing.Process` per cluster (the paper avoids Python
//! threads because of the GIL).
//!
//! [`generate_sequential`] emits the single-core reference version the paper
//! uses as its baseline ("to ensure completeness … a single core
//! non-parallel version of the code is also generated").

pub mod hyper;
mod pyop;
mod python;

pub use hyper::generate_hyper_parallel;
pub use python::{generate_parallel, generate_sequential, CodegenOptions};

use std::collections::HashMap;

/// Maps IR tensor names to valid, unique Python identifiers (the paper's
/// "new SSA-name for the output variable").
#[derive(Debug, Default)]
pub struct SsaNamer {
    assigned: HashMap<String, String>,
    used: std::collections::HashSet<String>,
    counter: usize,
}

impl SsaNamer {
    pub fn new() -> Self {
        Self::default()
    }

    /// The Python identifier for an IR tensor name (stable per name).
    pub fn name(&mut self, tensor: &str) -> String {
        if let Some(n) = self.assigned.get(tensor) {
            return n.clone();
        }
        let mut base: String = tensor
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if base
            .chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(true)
        {
            base.insert(0, 'v');
        }
        let mut candidate = base.clone();
        while !self.used.insert(candidate.clone()) {
            candidate = format!("{base}_{}", self.counter);
            self.counter += 1;
        }
        self.assigned.insert(tensor.to_string(), candidate.clone());
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssa_names_are_valid_and_unique() {
        let mut n = SsaNamer::new();
        let a = n.name("conv_1:0");
        assert_eq!(a, "conv_1_0");
        // stable
        assert_eq!(n.name("conv_1:0"), a);
        // collision gets a suffix
        let b = n.name("conv_1.0");
        assert_ne!(a, b);
        // leading digit prefixed
        let c = n.name("0weird");
        assert!(c.starts_with('v'));
    }
}
