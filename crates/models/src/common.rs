//! Layer helpers shared by the model generators.

use ramiel_ir::{GraphBuilder, OpKind, PoolSpec, TensorData};

/// `Conv (no bias) → BatchNorm → Relu` — the ResNet/Inception workhorse.
pub fn conv_bn_relu(
    b: &mut GraphBuilder,
    x: &str,
    cin: usize,
    cout: usize,
    kernel: (usize, usize),
    stride: usize,
    pads: (usize, usize),
) -> String {
    let c = b.conv(x, cin, cout, kernel, (stride, stride), pads, 1);
    let n = b.batch_norm(&c, cout);
    b.op("relu", OpKind::Relu, vec![n])
}

/// `Conv → Sigmoid → Mul` — SiLU activation as ONNX exporters emit it for
/// YOLO v5.
pub fn conv_silu(
    b: &mut GraphBuilder,
    x: &str,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> String {
    let c = b.conv(x, cin, cout, (k, k), (stride, stride), (pad, pad), 1);
    let s = b.op("sig", OpKind::Sigmoid, vec![c.clone()]);
    b.op("silu", OpKind::Mul, vec![c, s])
}

/// Max pool with a square kernel.
pub fn max_pool(b: &mut GraphBuilder, x: &str, k: usize, stride: usize, pad: usize) -> String {
    b.op(
        "maxpool",
        OpKind::MaxPool(PoolSpec {
            kernel: (k, k),
            stride: (stride, stride),
            pads: (pad, pad),
            ceil_mode: false,
        }),
        vec![x.to_string()],
    )
}

/// Average pool with a square kernel.
pub fn avg_pool(b: &mut GraphBuilder, x: &str, k: usize, stride: usize, pad: usize) -> String {
    b.op(
        "avgpool",
        OpKind::AveragePool(PoolSpec {
            kernel: (k, k),
            stride: (stride, stride),
            pads: (pad, pad),
            ceil_mode: false,
        }),
        vec![x.to_string()],
    )
}

/// Concat along the channel axis.
pub fn concat_channels(b: &mut GraphBuilder, inputs: Vec<String>) -> String {
    b.op("concat", OpKind::Concat { axis: 1 }, inputs)
}

/// Classifier head: `GlobalAveragePool → Flatten → Gemm → Softmax`.
pub fn classifier_head(b: &mut GraphBuilder, x: &str, cin: usize, classes: usize) -> String {
    let gap = b.op("gap", OpKind::GlobalAveragePool, vec![x.to_string()]);
    let fl = b.op("flatten", OpKind::Flatten { axis: 1 }, vec![gap]);
    let fc = b.linear(&fl, cin, classes);
    b.op("softmax", OpKind::Softmax { axis: -1 }, vec![fc])
}

/// The ONNX-exporter reshape idiom: recompute part of the target shape at
/// "runtime" through `Shape → Gather → Unsqueeze → Concat` and feed it to
/// `Reshape`. Statically the result equals `Reshape(x, target)`, but the
/// chain only disappears after constant propagation + DCE — exactly the
/// structure the paper prunes in YOLO/BERT/NASNet (Table III).
///
/// `dynamic_axes` selects which entries of `target` are recomputed from the
/// input's shape (by axis index); the rest are embedded as constants.
pub fn exporter_reshape(
    b: &mut GraphBuilder,
    x: &str,
    target: &[i64],
    dynamic_axes: &[usize],
) -> String {
    let shape = b.op("shape", OpKind::Shape, vec![x.to_string()]);
    let mut parts: Vec<String> = Vec::with_capacity(target.len());
    for (i, &d) in target.iter().enumerate() {
        if dynamic_axes.contains(&i) {
            let idx = b.const_i64("sidx", vec![i as i64]);
            let g = b.op(
                "gather",
                OpKind::Gather { axis: 0 },
                vec![shape.clone(), idx],
            );
            parts.push(g);
        } else {
            let name = b.fresh("sdim");
            b.init(&name, TensorData::vec_i64(vec![d]));
            parts.push(name);
        }
    }
    let spec = b.op("shapecat", OpKind::Concat { axis: 0 }, parts);
    b.op("reshape", OpKind::Reshape, vec![x.to_string(), spec])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::DType;

    #[test]
    fn conv_bn_relu_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = conv_bn_relu(&mut b, &x, 3, 16, (3, 3), 2, (1, 1));
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![1, 16, 4, 4]);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn conv_silu_is_three_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let y = conv_silu(&mut b, &x, 4, 8, 3, 1, 1);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.value_info[&y].shape, vec![1, 8, 8, 8]);
    }

    #[test]
    fn exporter_reshape_resolves_statically() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 4, 4]);
        let y = exporter_reshape(&mut b, &x, &[0, -1], &[0]);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![2, 16]);
        // the chain really exists (Shape + Gather + Concat + Reshape)
        assert!(g.nodes.iter().any(|n| matches!(n.op, OpKind::Shape)));
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n.op, OpKind::Gather { .. })));
    }

    #[test]
    fn classifier_head_is_four_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 8, 4, 4]);
        let y = classifier_head(&mut b, &x, 8, 10);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.value_info[&y].shape, vec![1, 10]);
    }
}
