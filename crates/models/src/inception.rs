//! Inception V3 and V4: deeper inception towers with factorized (1×7 / 7×1)
//! convolutions. Fig. 2's observation — parallel paths of very different
//! computational intensity — comes from the asymmetric branch costs in
//! blocks B and C; this is the model family where the paper applies task
//! cloning (Fig. 7).
//!
//! Paper-faithful node counts: V3 238, V4 339 (Table I); ours land within a
//! few percent (the zoo exports include a handful of auxiliary nodes we
//! omit).

use crate::common::{avg_pool, classifier_head, concat_channels, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder};

/// Inception-A: 16 nodes (1×1 | 1×1→5×5 | 1×1→3×3→3×3 | pool→1×1 | concat).
fn block_a(b: &mut GraphBuilder, x: &str, cin: usize, q: usize) -> (String, usize) {
    let b1 = b.conv_relu(x, cin, q, 1, 1, 0);
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let b2 = b.conv_relu(&r2, q, q, 5, 1, 2);
    let r3 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m3 = b.conv_relu(&r3, q, q, 3, 1, 1);
    let b3 = b.conv_relu(&m3, q, q, 3, 1, 1);
    let p = avg_pool(b, x, 3, 1, 1);
    let b4 = b.conv_relu(&p, cin, q, 1, 1, 0);
    (concat_channels(b, vec![b1, b2, b3, b4]), 4 * q)
}

/// Reduction-A: 10 nodes, halves the spatial extent.
fn reduction_a(b: &mut GraphBuilder, x: &str, cin: usize, q: usize) -> (String, usize) {
    let b1 = b.conv_relu(x, cin, q, 3, 2, 1);
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m2 = b.conv_relu(&r2, q, q, 3, 1, 1);
    let b2 = b.conv_relu(&m2, q, q, 3, 2, 1);
    let b3 = max_pool(b, x, 3, 2, 1);
    (concat_channels(b, vec![b1, b2, b3]), 2 * q + cin)
}

/// Inception-B: 22 nodes, factorized 7×7 branches (1×7 then 7×1).
fn block_b(b: &mut GraphBuilder, x: &str, cin: usize, q: usize) -> (String, usize) {
    let b1 = b.conv_relu(x, cin, q, 1, 1, 0);
    // single factorized 7x7
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m2 = b.conv(&r2, q, q, (1, 7), (1, 1), (0, 3), 1);
    let m2 = b.op("relu", ramiel_ir::OpKind::Relu, vec![m2]);
    let b2a = b.conv(&m2, q, q, (7, 1), (1, 1), (3, 0), 1);
    let b2 = b.op("relu", ramiel_ir::OpKind::Relu, vec![b2a]);
    // double factorized 7x7
    let r3 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m3a = b.conv(&r3, q, q, (7, 1), (1, 1), (3, 0), 1);
    let m3a = b.op("relu", ramiel_ir::OpKind::Relu, vec![m3a]);
    let m3b = b.conv(&m3a, q, q, (1, 7), (1, 1), (0, 3), 1);
    let m3b = b.op("relu", ramiel_ir::OpKind::Relu, vec![m3b]);
    let m3c = b.conv(&m3b, q, q, (7, 1), (1, 1), (3, 0), 1);
    let m3c = b.op("relu", ramiel_ir::OpKind::Relu, vec![m3c]);
    let m3d = b.conv(&m3c, q, q, (1, 7), (1, 1), (0, 3), 1);
    let b3 = b.op("relu", ramiel_ir::OpKind::Relu, vec![m3d]);
    let p = avg_pool(b, x, 3, 1, 1);
    let b4 = b.conv_relu(&p, cin, q, 1, 1, 0);
    (concat_channels(b, vec![b1, b2, b3, b4]), 4 * q)
}

/// Reduction-B: 14 nodes.
fn reduction_b(b: &mut GraphBuilder, x: &str, cin: usize, q: usize) -> (String, usize) {
    let r1 = b.conv_relu(x, cin, q, 1, 1, 0);
    let b1 = b.conv_relu(&r1, q, q, 3, 2, 1);
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m2 = b.conv(&r2, q, q, (1, 7), (1, 1), (0, 3), 1);
    let m2 = b.op("relu", ramiel_ir::OpKind::Relu, vec![m2]);
    let m2b = b.conv(&m2, q, q, (7, 1), (1, 1), (3, 0), 1);
    let m2b = b.op("relu", ramiel_ir::OpKind::Relu, vec![m2b]);
    let b2 = b.conv_relu(&m2b, q, q, 3, 2, 1);
    let b3 = max_pool(b, x, 3, 2, 1);
    (concat_channels(b, vec![b1, b2, b3]), 2 * q + cin)
}

/// Inception-C: 22 nodes, with split 1×3 / 3×1 sub-branches.
fn block_c(b: &mut GraphBuilder, x: &str, cin: usize, q: usize) -> (String, usize) {
    let b1 = b.conv_relu(x, cin, q, 1, 1, 0);
    // branch 2: 1x1 → {1x3, 3x1} → concat
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let s2a = b.conv(&r2, q, q, (1, 3), (1, 1), (0, 1), 1);
    let s2a = b.op("relu", ramiel_ir::OpKind::Relu, vec![s2a]);
    let s2b = b.conv(&r2, q, q, (3, 1), (1, 1), (1, 0), 1);
    let s2b = b.op("relu", ramiel_ir::OpKind::Relu, vec![s2b]);
    let b2 = concat_channels(b, vec![s2a, s2b]);
    // branch 3: 1x1 → 3x3 → {1x3, 3x1} → concat
    let r3 = b.conv_relu(x, cin, q, 1, 1, 0);
    let m3 = b.conv_relu(&r3, q, q, 3, 1, 1);
    let s3a = b.conv(&m3, q, q, (1, 3), (1, 1), (0, 1), 1);
    let s3a = b.op("relu", ramiel_ir::OpKind::Relu, vec![s3a]);
    let s3b = b.conv(&m3, q, q, (3, 1), (1, 1), (1, 0), 1);
    let s3b = b.op("relu", ramiel_ir::OpKind::Relu, vec![s3b]);
    let b3 = concat_channels(b, vec![s3a, s3b]);
    let p = avg_pool(b, x, 3, 1, 1);
    let b4 = b.conv_relu(&p, cin, q, 1, 1, 0);
    (concat_channels(b, vec![b1, b2, b3, b4]), 6 * q)
}

fn stem(b: &mut GraphBuilder, x: &str, w: usize) -> (String, usize) {
    let mut t = b.conv_relu(x, 3, w, 3, 2, 1);
    t = b.conv_relu(&t, w, w, 3, 1, 1);
    t = b.conv_relu(&t, w, 2 * w, 3, 1, 1);
    t = max_pool(b, &t, 3, 2, 1);
    t = b.conv_relu(&t, 2 * w, 2 * w, 1, 1, 0);
    t = b.conv_relu(&t, 2 * w, 4 * w, 3, 1, 1);
    t = max_pool(b, &t, 3, 2, 1);
    (t, 4 * w)
}

/// Build Inception V3: 3×A, red-A, 4×B, red-B, 2×C.
pub fn build_v3(cfg: &ModelConfig) -> Graph {
    build_inception(cfg, "Inception V3", [3, 4, 2])
}

/// Build Inception V4: 4×A, red-A, 7×B, red-B, 3×C (plus a deeper stem in
/// the original; approximated with the shared stem).
pub fn build_v4(cfg: &ModelConfig) -> Graph {
    build_inception(cfg, "Inception V4", [4, 7, 3])
}

fn build_inception(cfg: &ModelConfig, name: &str, blocks: [usize; 3]) -> Graph {
    let w = cfg.width;
    let mut b = GraphBuilder::new(name);
    let x = b.input(
        "input",
        DType::F32,
        vec![cfg.batch, 3, cfg.spatial, cfg.spatial],
    );
    let (mut t, mut cin) = stem(&mut b, &x, w);
    for _ in 0..cfg.repeats(blocks[0]) {
        let (o, c) = block_a(&mut b, &t, cin, w);
        t = o;
        cin = c;
    }
    let (o, c) = reduction_a(&mut b, &t, cin, w);
    t = o;
    cin = c;
    for _ in 0..cfg.repeats(blocks[1]) {
        let (o, c) = block_b(&mut b, &t, cin, w);
        t = o;
        cin = c;
    }
    let (o, c) = reduction_b(&mut b, &t, cin, w);
    t = o;
    cin = c;
    for _ in 0..cfg.repeats(blocks[2]) {
        let (o, c) = block_c(&mut b, &t, cin, w);
        t = o;
        cin = c;
    }
    let out = classifier_head(&mut b, &t, cin, 10);
    b.output(&out);
    b.finish().expect("Inception must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_node_count_matches_paper() {
        let g = build_v3(&ModelConfig::full());
        assert!(
            (200..=260).contains(&g.num_nodes()),
            "Inception V3 has {} nodes, expected ≈238",
            g.num_nodes()
        );
    }

    #[test]
    fn v4_node_count_matches_paper() {
        let g = build_v4(&ModelConfig::full());
        assert!(
            (290..=370).contains(&g.num_nodes()),
            "Inception V4 has {} nodes, expected ≈339",
            g.num_nodes()
        );
        assert!(g.num_nodes() > build_v3(&ModelConfig::full()).num_nodes());
    }

    #[test]
    fn factorized_convs_present() {
        let g = build_v3(&ModelConfig::full());
        let has_1x7 = g
            .nodes
            .iter()
            .any(|n| matches!(n.op, ramiel_ir::OpKind::Conv { kernel: (1, 7), .. }));
        let has_7x1 = g
            .nodes
            .iter()
            .any(|n| matches!(n.op, ramiel_ir::OpKind::Conv { kernel: (7, 1), .. }));
        assert!(has_1x7 && has_7x1);
    }
}
