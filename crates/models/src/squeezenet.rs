//! SqueezeNet 1.1 — the paper's running example (Figs. 1, 5, 8, 9).
//!
//! Structure: stem conv, then eight *fire modules* (squeeze 1×1 → two
//! parallel expands 1×1 / 3×3 → concat), interleaved max pools, and a conv
//! classifier. The fork-join inside each fire module is the two-path
//! parallelism the paper clusters; the overall graph is chain-dominated,
//! which is why its potential parallelism lands below 1×.
//!
//! Paper-faithful node count: 66 (Table I).

use crate::common::{classifier_head, concat_channels, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder};

/// One fire module: 7 nodes.
fn fire(b: &mut GraphBuilder, x: &str, cin: usize, squeeze: usize, expand: usize) -> String {
    let sq = b.conv_relu(x, cin, squeeze, 1, 1, 0);
    let e1 = b.conv_relu(&sq, squeeze, expand, 1, 1, 0);
    let e3 = b.conv_relu(&sq, squeeze, expand, 3, 1, 1);
    concat_channels(b, vec![e1, e3])
}

/// Build SqueezeNet.
pub fn build(cfg: &ModelConfig) -> Graph {
    let w = cfg.width; // expand width unit
    let mut b = GraphBuilder::new("Squeezenet");
    let x = b.input(
        "input",
        DType::F32,
        vec![cfg.batch, 3, cfg.spatial, cfg.spatial],
    );

    // stem: conv3x3/s2 + relu + maxpool
    let mut t = b.conv_relu(&x, 3, 2 * w, 3, 2, 1);
    t = max_pool(&mut b, &t, 3, 2, 0);
    let mut cin = 2 * w;

    let fires = cfg.repeats(8);
    for i in 0..fires {
        // squeeze = w/2 scaled up through the net like the original
        let squeeze = (w / 2 + i * w / 8).max(1);
        let expand = w + i * w / 4;
        t = fire(&mut b, &t, cin, squeeze, expand);
        cin = 2 * expand;
        // pools after fire 2 and fire 4 (indices 1, 3), as in v1.1
        if i == 1 || i == 3 {
            t = max_pool(&mut b, &t, 3, 2, 0);
        }
    }

    // classifier: conv1x1 + relu + GAP + flatten/softmax head
    let classes = 10;
    t = b.conv_relu(&t, cin, classes, 1, 1, 0);
    let out = classifier_head(&mut b, &t, classes, classes);
    b.output(&out);
    b.finish().expect("SqueezeNet must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_paper() {
        let g = build(&ModelConfig::full());
        // 2 stem + 1 pool + 8×7 fire + 2 pools + 2 classifier conv + 4 head = 67
        assert!(
            (60..=72).contains(&g.num_nodes()),
            "SqueezeNet has {} nodes, expected ≈66",
            g.num_nodes()
        );
    }

    #[test]
    fn fire_modules_fork_and_join() {
        let g = build(&ModelConfig::tiny());
        let adj = g.adjacency();
        // at least one node (the squeeze relu) has two successors and at
        // least one (the concat) has two predecessors
        assert!(adj.succs.iter().any(|s| s.len() >= 2));
        assert!(adj.preds.iter().any(|p| p.len() >= 2));
    }

    #[test]
    fn output_is_class_distribution() {
        let g = build(&ModelConfig::tiny());
        let out = &g.outputs[0];
        assert_eq!(g.value_info[out].shape, vec![1, 10]);
    }
}
