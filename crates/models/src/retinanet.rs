//! RetinaNet: ResNet-50 backbone + FPN + shared classification/box subnets
//! over five pyramid levels.
//!
//! The five pyramid levels give five *independent* head subgraphs hanging
//! off the FPN — task parallelism that LC exploits (the paper measures 1.3×,
//! beating its own 1.2× static estimate).
//!
//! Paper node count: 450; ours lands ≈360 (the zoo export also carries the
//! anchor-generation subgraph, which is pure constant data we register as
//! initializers instead).

use crate::common::{conv_bn_relu, exporter_reshape, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// ResNet bottleneck (expansion 2 at our scale): 12–14 nodes.
fn bottleneck(
    b: &mut GraphBuilder,
    x: &str,
    cin: usize,
    mid: usize,
    cout: usize,
    stride: usize,
) -> String {
    let c1 = conv_bn_relu(b, x, cin, mid, (1, 1), 1, (0, 0));
    let c2 = conv_bn_relu(b, &c1, mid, mid, (3, 3), stride, (1, 1));
    let c3 = b.conv(&c2, mid, cout, (1, 1), (1, 1), (0, 0), 1);
    let c3 = b.batch_norm(&c3, cout);
    let shortcut = if cin != cout || stride != 1 {
        let d = b.conv(x, cin, cout, (1, 1), (stride, stride), (0, 0), 1);
        b.batch_norm(&d, cout)
    } else {
        x.to_string()
    };
    let sum = b.op("res", OpKind::Add, vec![c3, shortcut]);
    b.op("relu", OpKind::Relu, vec![sum])
}

/// One head subnet (4 conv+relu, then a final conv) + exporter reshape.
fn head(b: &mut GraphBuilder, x: &str, cin: usize, out_ch: usize, sigmoid: bool) -> String {
    let mut t = x.to_string();
    for _ in 0..4 {
        t = b.conv_relu(&t, cin, cin, 3, 1, 1);
    }
    let logits = b.conv(&t, cin, out_ch, (3, 3), (1, 1), (1, 1), 1);
    let rs = exporter_reshape(b, &logits, &[0, out_ch as i64, -1], &[0]);
    if sigmoid {
        b.op("cls_sig", OpKind::Sigmoid, vec![rs])
    } else {
        rs
    }
}

/// Build RetinaNet.
pub fn build(cfg: &ModelConfig) -> Graph {
    let w = cfg.width;
    let classes = 10;
    let anchors = 9;
    let mut b = GraphBuilder::new("Retinanet");
    // The FPN needs ≥5 halvings before P6/P7, so clamp the resolution.
    let spatial = cfg.spatial.max(32);
    let x = b.input("input", DType::F32, vec![cfg.batch, 3, spatial, spatial]);

    // ResNet-50 stem
    let mut t = conv_bn_relu(&mut b, &x, 3, w, (7, 7), 2, (3, 3));
    t = max_pool(&mut b, &t, 3, 2, 1);

    // stages [3, 4, 6, 3]; keep C3..C5 features
    let stage_blocks = [
        cfg.repeats(3),
        cfg.repeats(4),
        cfg.repeats(6),
        cfg.repeats(3),
    ];
    let mut cin = w;
    let mut features = Vec::new();
    for (si, &blocks) in stage_blocks.iter().enumerate() {
        let mid = w << si;
        let cout = 2 * mid;
        for bi in 0..blocks {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            t = bottleneck(&mut b, &t, cin, mid, cout, stride);
            cin = cout;
        }
        if si >= 1 {
            features.push((t.clone(), cin)); // C3, C4, C5
        }
    }

    // FPN
    let fpn_ch = 2 * w;
    let (c3, c3c) = features[0].clone();
    let (c4, c4c) = features[1].clone();
    let (c5, c5c) = features[2].clone();
    let p5 = b.conv(&c5, c5c, fpn_ch, (1, 1), (1, 1), (0, 0), 1);
    let p5_up = b.op("up5", OpKind::Resize { scale: (2, 2) }, vec![p5.clone()]);
    let l4 = b.conv(&c4, c4c, fpn_ch, (1, 1), (1, 1), (0, 0), 1);
    let p4 = b.op("p4", OpKind::Add, vec![l4, p5_up]);
    let p4_up = b.op("up4", OpKind::Resize { scale: (2, 2) }, vec![p4.clone()]);
    let l3 = b.conv(&c3, c3c, fpn_ch, (1, 1), (1, 1), (0, 0), 1);
    let p3 = b.op("p3", OpKind::Add, vec![l3, p4_up]);
    let p3 = b.conv(&p3, fpn_ch, fpn_ch, (3, 3), (1, 1), (1, 1), 1);
    let p4 = b.conv(&p4, fpn_ch, fpn_ch, (3, 3), (1, 1), (1, 1), 1);
    let p5 = b.conv(&p5, fpn_ch, fpn_ch, (3, 3), (1, 1), (1, 1), 1);
    let p6 = b.conv(&c5, c5c, fpn_ch, (3, 3), (2, 2), (1, 1), 1);
    let p6r = b.op("p6_relu", OpKind::Relu, vec![p6.clone()]);
    let p7 = b.conv(&p6r, fpn_ch, fpn_ch, (3, 3), (2, 2), (1, 1), 1);

    // shared heads over the 5 levels
    let mut cls_outs = Vec::new();
    let mut box_outs = Vec::new();
    for level in [p3, p4, p5, p6, p7] {
        cls_outs.push(head(&mut b, &level, fpn_ch, anchors * classes, true));
        box_outs.push(head(&mut b, &level, fpn_ch, anchors * 4, false));
    }
    let cls = b.op("cls_all", OpKind::Concat { axis: 2 }, cls_outs);
    let boxes = b.op("box_all", OpKind::Concat { axis: 2 }, box_outs);
    b.output(&cls);
    b.output(&boxes);
    b.finish().expect("RetinaNet must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_near_paper() {
        let g = build(&ModelConfig::full());
        assert!(
            (300..=470).contains(&g.num_nodes()),
            "RetinaNet has {} nodes, expected ≈450",
            g.num_nodes()
        );
    }

    #[test]
    fn five_parallel_head_pairs() {
        let g = build(&ModelConfig::full());
        let sig = g
            .nodes
            .iter()
            .filter(|n| n.name.starts_with("cls_sig"))
            .count();
        assert_eq!(sig, 5, "one sigmoid per pyramid level");
    }

    #[test]
    fn two_outputs_cls_and_box() {
        let g = build(&ModelConfig::tiny());
        assert_eq!(g.outputs.len(), 2);
    }
}
