//! GoogLeNet (Inception v1): nine four-branch inception modules.
//!
//! Each module forks into 1×1, 1×1→3×3, 1×1→5×5 and pool→1×1 branches that
//! reconverge in a channel concat — the fork-join parallelism that gives the
//! model its 1.4× potential parallelism in Table I.
//!
//! Paper-faithful node count: 153 (Table I); ours lands a handful lower
//! because the inference export drops the aux classifiers.

use crate::common::{classifier_head, concat_channels, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// One inception module: 14 nodes. Branch widths are fractions of `out`.
fn inception(b: &mut GraphBuilder, x: &str, cin: usize, out: usize) -> (String, usize) {
    let q = (out / 4).max(1);
    // branch 1: 1x1
    let b1 = b.conv_relu(x, cin, q, 1, 1, 0);
    // branch 2: 1x1 → 3x3
    let r2 = b.conv_relu(x, cin, q, 1, 1, 0);
    let b2 = b.conv_relu(&r2, q, q, 3, 1, 1);
    // branch 3: 1x1 → 5x5
    let r3 = b.conv_relu(x, cin, q, 1, 1, 0);
    let b3 = b.conv_relu(&r3, q, q, 5, 1, 2);
    // branch 4: pool → 1x1
    let p = max_pool(b, x, 3, 1, 1);
    let b4 = b.conv_relu(&p, cin, q, 1, 1, 0);
    (concat_channels(b, vec![b1, b2, b3, b4]), 4 * q)
}

/// Build GoogLeNet.
pub fn build(cfg: &ModelConfig) -> Graph {
    let w = cfg.width;
    let mut b = GraphBuilder::new("Googlenet");
    let x = b.input(
        "input",
        DType::F32,
        vec![cfg.batch, 3, cfg.spatial, cfg.spatial],
    );

    // stem: conv7x7/s2 + pool + LRN-slot (bn) + conv1 + conv3 + bn + pool
    let mut t = b.conv_relu(&x, 3, 2 * w, 7, 2, 3);
    t = max_pool(&mut b, &t, 3, 2, 1);
    t = b.batch_norm(&t, 2 * w);
    t = b.conv_relu(&t, 2 * w, 2 * w, 1, 1, 0);
    t = b.conv_relu(&t, 2 * w, 4 * w, 3, 1, 1);
    t = b.batch_norm(&t, 4 * w);
    t = max_pool(&mut b, &t, 3, 2, 1);
    let mut cin = 4 * w;

    // 9 inception modules in 3 stages (2 / 5 / 2) with pools between.
    let counts = [cfg.repeats(2), cfg.repeats(5), cfg.repeats(2)];
    for (stage, &n) in counts.iter().enumerate() {
        for _ in 0..n {
            let (out, c) = inception(&mut b, &t, cin, 4 * w + stage * w);
            t = out;
            cin = c;
        }
        if stage + 1 < counts.len() {
            t = max_pool(&mut b, &t, 3, 2, 1);
        }
    }

    // head with the exported Dropout (identity at inference)
    let d = b.op("dropout", OpKind::Dropout, vec![t]);
    let out = classifier_head(&mut b, &d, cin, 10);
    b.output(&out);
    b.finish().expect("GoogLeNet must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_paper() {
        let g = build(&ModelConfig::full());
        // 7-node stem + 9×14 modules + 2 pools + dropout + 4-node head ≈ 140
        assert!(
            (130..=160).contains(&g.num_nodes()),
            "GoogLeNet has {} nodes, expected ≈153",
            g.num_nodes()
        );
    }

    #[test]
    fn modules_have_four_way_fanout() {
        let g = build(&ModelConfig::tiny());
        let adj = g.adjacency();
        // some node feeds 4 branches
        assert!(adj.succs.iter().any(|s| s.len() >= 4));
        // the concat joins 4 branches
        assert!(adj.preds.iter().any(|p| p.len() >= 4));
    }
}
