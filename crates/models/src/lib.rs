//! # ramiel-models
//!
//! Programmatic generators for the eight models the paper evaluates:
//! SqueezeNet, GoogleNet, Inception V3, Inception V4, YOLO v5, BERT,
//! RetinaNet and NASNet.
//!
//! The paper pulls frozen ONNX exports of these models from the PyTorch /
//! HuggingFace / ONNX model zoos. We rebuild the same *graph structures*
//! directly in the IR: the fork-join fire modules of SqueezeNet, the
//! four-branch inception blocks, YOLO's CSP blocks with SiLU (each
//! `Conv → Sigmoid → Mul`), BERT's multi-headed attention stacks with the
//! exporter's decomposed LayerNorm/GELU and `Shape → Gather → Concat →
//! Reshape` chains, RetinaNet's ResNet-50 + FPN + shared heads, and NASNet's
//! wide many-branch cells. Tensor sizes are scaled down (the
//! [`ModelConfig`] width/spatial knobs) so real execution is fast; all of
//! the clustering results depend only on topology and the static cost
//! model, which are preserved.

pub mod bert;
pub mod common;
pub mod googlenet;
pub mod inception;
pub mod nasnet;
pub mod retinanet;
pub mod squeezenet;
pub mod synthetic;
pub mod yolo;

use ramiel_ir::Graph;

/// The eight evaluation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    Squeezenet,
    Googlenet,
    InceptionV3,
    InceptionV4,
    YoloV5,
    Bert,
    Retinanet,
    NasNet,
}

impl ModelKind {
    /// All models, in the paper's Table I order.
    pub fn all() -> [ModelKind; 8] {
        [
            ModelKind::Squeezenet,
            ModelKind::Googlenet,
            ModelKind::InceptionV3,
            ModelKind::InceptionV4,
            ModelKind::YoloV5,
            ModelKind::Retinanet,
            ModelKind::Bert,
            ModelKind::NasNet,
        ]
    }

    /// Display name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Squeezenet => "Squeezenet",
            ModelKind::Googlenet => "Googlenet",
            ModelKind::InceptionV3 => "Inception V3",
            ModelKind::InceptionV4 => "Inception V4",
            ModelKind::YoloV5 => "Yolo V5",
            ModelKind::Bert => "BERT",
            ModelKind::Retinanet => "Retinanet",
            ModelKind::NasNet => "NASNet",
        }
    }
}

/// Size knobs for model instantiation.
///
/// `width` scales channel counts and `spatial` the input resolution; both
/// only affect tensor sizes, never graph topology, so the clustering tables
/// are invariant to them. `full()` uses the paper-faithful block counts;
/// `tiny()` shrinks *block counts* too, for fast unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Inference batch size (the hyperclustering experiments use 2–12).
    pub batch: usize,
    /// Base channel width for vision models.
    pub width: usize,
    /// Input spatial resolution (H = W) for vision models.
    pub spatial: usize,
    /// Transformer hidden size (BERT).
    pub hidden: usize,
    /// Transformer sequence length (BERT).
    pub seq_len: usize,
    /// Repeated-block count multiplier in percent (100 = paper-faithful).
    pub depth_pct: usize,
}

impl ModelConfig {
    /// Paper-faithful topology at benchmark-friendly tensor sizes.
    pub fn full() -> Self {
        ModelConfig {
            batch: 1,
            width: 8,
            spatial: 32,
            hidden: 64,
            seq_len: 32,
            depth_pct: 100,
        }
    }

    /// Reduced block counts for fast unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            batch: 1,
            width: 4,
            spatial: 16,
            hidden: 16,
            seq_len: 8,
            depth_pct: 25,
        }
    }

    /// Same topology with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Scale a paper-faithful repeat count by `depth_pct` (min 1).
    pub fn repeats(&self, paper_count: usize) -> usize {
        ((paper_count * self.depth_pct) / 100).max(1)
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::full()
    }
}

/// Operator histogram of a graph: (op name, count), sorted by count.
pub fn op_histogram(graph: &Graph) -> Vec<(&'static str, usize)> {
    let mut counts: std::collections::HashMap<&'static str, usize> =
        std::collections::HashMap::new();
    for n in &graph.nodes {
        *counts.entry(n.op.name()).or_default() += 1;
    }
    let mut out: Vec<(&'static str, usize)> = counts.into_iter().collect();
    out.sort_by_key(|&(name, count)| (std::cmp::Reverse(count), name));
    out
}

/// Build a model graph.
pub fn build(kind: ModelKind, cfg: &ModelConfig) -> Graph {
    match kind {
        ModelKind::Squeezenet => squeezenet::build(cfg),
        ModelKind::Googlenet => googlenet::build(cfg),
        ModelKind::InceptionV3 => inception::build_v3(cfg),
        ModelKind::InceptionV4 => inception::build_v4(cfg),
        ModelKind::YoloV5 => yolo::build(cfg),
        ModelKind::Bert => bert::build(cfg),
        ModelKind::Retinanet => retinanet::build(cfg),
        ModelKind::NasNet => nasnet::build(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::validate::validate;

    #[test]
    fn all_models_build_and_validate_at_tiny_scale() {
        let cfg = ModelConfig::tiny();
        for kind in ModelKind::all() {
            let g = build(kind, &cfg);
            validate(&g).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(g.num_nodes() > 3, "{} suspiciously small", kind.name());
        }
    }

    #[test]
    fn batch_size_propagates_to_inputs() {
        let g1 = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let g4 = build(ModelKind::Squeezenet, &ModelConfig::tiny().with_batch(4));
        assert_eq!(g1.inputs[0].shape[0], 1);
        assert_eq!(g4.inputs[0].shape[0], 4);
        // topology identical
        assert_eq!(g1.num_nodes(), g4.num_nodes());
    }

    #[test]
    fn op_histogram_counts_everything() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let hist = op_histogram(&g);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, g.num_nodes());
        // conv-dominated model: Conv or Relu leads the histogram
        assert!(matches!(hist[0].0, "Conv" | "Relu"));
        // sorted by descending count
        assert!(hist.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn depth_scaling_keeps_min_one() {
        let cfg = ModelConfig {
            depth_pct: 1,
            ..ModelConfig::tiny()
        };
        assert_eq!(cfg.repeats(8), 1);
        assert_eq!(ModelConfig::full().repeats(8), 8);
    }
}
