//! NASNet: the biggest, most parallel graph in the evaluation (Fig. 4).
//!
//! Each cell combines its two input states through five independent branch
//! pairs (separable convolutions, pools, identities) whose results are
//! summed pairwise and concatenated — a huge fan-out that yields the 3.7×
//! potential parallelism of Table I. Cells also carry the exporter's
//! shape-computation chains (`Shape`/`Gather`/`Reshape`), the "simpler
//! operations like slice, gather and reshape" the paper calls out, and the
//! raw material for its NASNet constant-propagation win (67 → 9 clusters in
//! Table III).
//!
//! Paper node count: 1426 (Table I).

use crate::common::{avg_pool, classifier_head, concat_channels, exporter_reshape, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// Separable convolution: `Relu → depthwise Conv → pointwise Conv → BN`
/// (4 nodes).
fn sep_conv(b: &mut GraphBuilder, x: &str, c: usize, k: usize) -> String {
    let r = b.op("sep_relu", OpKind::Relu, vec![x.to_string()]);
    let dw = b.conv(&r, c, c, (k, k), (1, 1), (k / 2, k / 2), c);
    let pw = b.conv(&dw, c, c, (1, 1), (1, 1), (0, 0), 1);
    b.batch_norm(&pw, c)
}

/// One branch of a combination.
#[derive(Clone, Copy)]
enum Branch {
    Sep3,
    Sep5,
    Avg3,
    Max3,
    Id,
}

fn apply(b: &mut GraphBuilder, branch: Branch, x: &str, c: usize) -> String {
    match branch {
        Branch::Sep3 => sep_conv(b, x, c, 3),
        Branch::Sep5 => sep_conv(b, x, c, 5),
        Branch::Avg3 => avg_pool(b, x, 3, 1, 1),
        Branch::Max3 => max_pool(b, x, 3, 1, 1),
        Branch::Id => b.op("id", OpKind::Identity, vec![x.to_string()]),
    }
}

/// NASNet-A-style normal cell. Five branch pairs over (prev, cur), pairwise
/// summed, concatenated; channel-adjusting 1×1 convs on both inputs; plus an
/// exporter shape chain on the output.
fn cell(
    b: &mut GraphBuilder,
    prev: &str,
    prev_c: usize,
    cur: &str,
    cur_c: usize,
    c: usize,
) -> (String, usize) {
    let p = b.conv_relu(prev, prev_c, c, 1, 1, 0);
    let h = b.conv_relu(cur, cur_c, c, 1, 1, 0);
    // (left branch, right branch, left input is prev?)
    let combos: [(Branch, Branch, bool); 5] = [
        (Branch::Sep3, Branch::Sep5, false),
        (Branch::Sep5, Branch::Sep3, true),
        (Branch::Sep3, Branch::Sep3, true),
        (Branch::Avg3, Branch::Id, false),
        (Branch::Max3, Branch::Sep5, true),
    ];
    let mut outs = Vec::with_capacity(5);
    for (l, r, left_prev) in combos {
        let li = if left_prev { &p } else { &h };
        let lo = apply(b, l, li, c);
        let ro = apply(b, r, &h, c);
        outs.push(b.op("combine", OpKind::Add, vec![lo, ro]));
    }
    let cat = concat_channels(b, outs);
    // exporter chain: identity reshape recomputing all four dims
    let shaped = exporter_reshape(b, &cat, &[0, 0, 0, 0], &[0, 1, 2, 3]);
    (shaped, 5 * c)
}

/// Build NASNet.
pub fn build(cfg: &ModelConfig) -> Graph {
    let c = cfg.width;
    let mut b = GraphBuilder::new("NASNet");
    // NASNet runs at reduced resolution to keep its 1400-node graph cheap.
    let spatial = (cfg.spatial / 2).max(8);
    let x = b.input("input", DType::F32, vec![cfg.batch, 3, spatial, spatial]);

    let stem = b.conv_relu(&x, 3, c, 3, 1, 1);
    let mut prev = stem.clone();
    let mut prev_c = c;
    let mut cur = stem;
    let mut cur_c = c;

    let cells = cfg.repeats(28);
    let reduction_every = 8;
    for i in 0..cells {
        if i > 0 && i % reduction_every == 0 && spatial >> (i / reduction_every) >= 2 {
            // reduction: halve both streams so they stay aligned
            prev = max_pool(&mut b, &prev, 3, 2, 1);
            cur = max_pool(&mut b, &cur, 3, 2, 1);
        }
        let (next, next_c) = cell(&mut b, &prev, prev_c, &cur, cur_c, c);
        prev = cur;
        prev_c = cur_c;
        cur = next;
        cur_c = next_c;
    }

    let out = classifier_head(&mut b, &cur, cur_c, 10);
    b.output(&out);
    b.finish().expect("NASNet must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_paper() {
        let g = build(&ModelConfig::full());
        assert!(
            (1250..=1600).contains(&g.num_nodes()),
            "NASNet has {} nodes, expected ≈1426",
            g.num_nodes()
        );
    }

    #[test]
    fn wide_fanout_present() {
        let g = build(&ModelConfig::tiny());
        let adj = g.adjacency();
        let max_fanout = adj.succs.iter().map(|s| s.len()).max().unwrap();
        assert!(max_fanout >= 5, "cell inputs must feed ≥5 branches");
    }

    #[test]
    fn shape_chains_per_cell() {
        let cfg = ModelConfig::full();
        let g = build(&cfg);
        let shapes = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Shape))
            .count();
        assert_eq!(shapes, cfg.repeats(28), "one exporter chain per cell");
    }
}
