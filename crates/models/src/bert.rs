//! BERT encoder, as an ONNX exporter sees it (Fig. 3).
//!
//! Every transformer layer carries the exporter's *decomposed* forms:
//! LayerNorm as `ReduceMean → Sub → Mul → ReduceMean → Add → Sqrt → Div →
//! Mul → Add`, GELU as `Div → Erf → Add → Mul → Mul`, and the head
//! split/merge reshapes as `Shape → Gather → Concat → Reshape` chains. The
//! repeated MHA subgraph "hanging off one node" is exactly the structure the
//! paper notes lends itself to constant propagation and DCE.
//!
//! Paper node count: 963 for the zoo export; ours lands ≈800 with 12 layers
//! (the export also decomposes a few ops we keep fused, e.g. bias packing).

use crate::common::exporter_reshape;
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// Decomposed layer normalization: 9 nodes.
fn layer_norm_decomposed(b: &mut GraphBuilder, x: &str, hidden: usize) -> String {
    let mean = b.op(
        "ln_mean",
        OpKind::ReduceMean {
            axes: vec![-1],
            keepdims: true,
        },
        vec![x.to_string()],
    );
    let centered = b.op("ln_sub", OpKind::Sub, vec![x.to_string(), mean]);
    let sq = b.op(
        "ln_sq",
        OpKind::Mul,
        vec![centered.clone(), centered.clone()],
    );
    let var = b.op(
        "ln_var",
        OpKind::ReduceMean {
            axes: vec![-1],
            keepdims: true,
        },
        vec![sq],
    );
    let eps = b.const_scalar("ln_eps", 1e-12);
    let var_eps = b.op("ln_addeps", OpKind::Add, vec![var, eps]);
    let std = b.op("ln_sqrt", OpKind::Sqrt, vec![var_eps]);
    let normed = b.op("ln_div", OpKind::Div, vec![centered, std]);
    let gamma = b.weight("ln_g", vec![hidden], ramiel_ir::builder::Init::Const(1.0));
    let scaled = b.op("ln_scale", OpKind::Mul, vec![normed, gamma]);
    let beta = b.weight("ln_b", vec![hidden], ramiel_ir::builder::Init::Const(0.0));
    b.op("ln_shift", OpKind::Add, vec![scaled, beta])
}

/// Decomposed GELU: 5 nodes.
fn gelu_decomposed(b: &mut GraphBuilder, x: &str) -> String {
    let sqrt2 = b.const_scalar("g_sqrt2", std::f32::consts::SQRT_2);
    let scaled = b.op("g_div", OpKind::Div, vec![x.to_string(), sqrt2]);
    let erf = b.op("g_erf", OpKind::Erf, vec![scaled]);
    let one = b.const_scalar("g_one", 1.0);
    let shifted = b.op("g_add", OpKind::Add, vec![erf, one]);
    let prod = b.op("g_mul", OpKind::Mul, vec![x.to_string(), shifted]);
    let half = b.const_scalar("g_half", 0.5);
    b.op("g_scale", OpKind::Mul, vec![prod, half])
}

/// Dense projection: `MatMul(x, W) + bias` (2 nodes).
fn dense(b: &mut GraphBuilder, x: &str, din: usize, dout: usize) -> String {
    let w = b.weight(
        "w",
        vec![din, dout],
        ramiel_ir::builder::Init::Uniform(0.05),
    );
    let mm = b.op("mm", OpKind::MatMul, vec![x.to_string(), w]);
    let bias = b.weight("bias", vec![dout], ramiel_ir::builder::Init::Uniform(0.05));
    b.op("badd", OpKind::Add, vec![mm, bias])
}

/// Split `[B, S, H]` into heads `[B, nh, S, dh]` via the exporter chain.
fn split_heads(b: &mut GraphBuilder, x: &str, seq: usize, heads: usize, dh: usize) -> String {
    let rs = exporter_reshape(b, x, &[0, seq as i64, heads as i64, dh as i64], &[0]);
    b.op(
        "perm",
        OpKind::Transpose {
            perm: vec![0, 2, 1, 3],
        },
        vec![rs],
    )
}

/// One transformer encoder layer.
#[allow(clippy::too_many_arguments)]
fn encoder_layer(
    b: &mut GraphBuilder,
    x: &str,
    mask_bias: &str,
    hidden: usize,
    heads: usize,
    seq: usize,
) -> String {
    let dh = hidden / heads;
    let q = dense(b, x, hidden, hidden);
    let k = dense(b, x, hidden, hidden);
    let v = dense(b, x, hidden, hidden);
    let qh = split_heads(b, &q, seq, heads, dh);
    let kh = split_heads(b, &k, seq, heads, dh);
    let vh = split_heads(b, &v, seq, heads, dh);
    let kt = b.op(
        "kt",
        OpKind::Transpose {
            perm: vec![0, 1, 3, 2],
        },
        vec![kh],
    );
    let scores = b.op("qk", OpKind::MatMul, vec![qh, kt]);
    let scale = b.const_scalar("scale", (dh as f32).sqrt());
    let scaled = b.op("qk_scale", OpKind::Div, vec![scores, scale]);
    let masked = b.op("qk_mask", OpKind::Add, vec![scaled, mask_bias.to_string()]);
    let probs = b.op("attn", OpKind::Softmax { axis: -1 }, vec![masked]);
    let ctx = b.op("av", OpKind::MatMul, vec![probs, vh]);
    let merged = b.op(
        "unperm",
        OpKind::Transpose {
            perm: vec![0, 2, 1, 3],
        },
        vec![ctx],
    );
    let flat = exporter_reshape(b, &merged, &[0, seq as i64, hidden as i64], &[0]);
    let attn_out = dense(b, &flat, hidden, hidden);
    let res1 = b.op("res1", OpKind::Add, vec![x.to_string(), attn_out]);
    let ln1 = layer_norm_decomposed(b, &res1, hidden);

    let ffn1 = dense(b, &ln1, hidden, 4 * hidden);
    let act = gelu_decomposed(b, &ffn1);
    let ffn2 = dense(b, &act, 4 * hidden, hidden);
    let res2 = b.op("res2", OpKind::Add, vec![ln1, ffn2]);
    layer_norm_decomposed(b, &res2, hidden)
}

/// Build the BERT encoder.
pub fn build(cfg: &ModelConfig) -> Graph {
    let hidden = cfg.hidden;
    let heads = (hidden / 16).max(1);
    let seq = cfg.seq_len;
    let vocab = 128;
    let layers = cfg.repeats(12);
    let mut b = GraphBuilder::new("BERT");

    let ids = b.input("input_ids", DType::I64, vec![cfg.batch, seq]);
    let mask = b.input("attention_mask", DType::F32, vec![cfg.batch, seq]);

    // embeddings: word gather + position add + decomposed LN
    let word_emb = b.weight(
        "word_emb",
        vec![vocab, hidden],
        ramiel_ir::builder::Init::Uniform(0.05),
    );
    let we = b.op("word", OpKind::Gather { axis: 0 }, vec![word_emb, ids]);
    let pos_emb = b.weight(
        "pos_emb",
        vec![seq, hidden],
        ramiel_ir::builder::Init::Uniform(0.05),
    );
    let emb = b.op("embed", OpKind::Add, vec![we, pos_emb]);
    let mut t = layer_norm_decomposed(&mut b, &emb, hidden);

    // attention-mask bias: (1 − mask) · −10000, broadcast over heads
    let m1 = b.op("mask_u", OpKind::Unsqueeze { axes: vec![1, 2] }, vec![mask]);
    let one = b.const_scalar("one", 1.0);
    let inv = b.op("mask_inv", OpKind::Sub, vec![one, m1]);
    let neg = b.const_scalar("neg", -10000.0);
    let mask_bias = b.op("mask_bias", OpKind::Mul, vec![inv, neg]);

    for _ in 0..layers {
        t = encoder_layer(&mut b, &t, &mask_bias, hidden, heads, seq);
    }

    // pooler: first token → dense → tanh
    let first = b.op(
        "cls",
        OpKind::Slice {
            axes: vec![1],
            starts: vec![0],
            ends: vec![1],
            steps: vec![1],
        },
        vec![t.clone()],
    );
    let flat = b.op("cls_flat", OpKind::Flatten { axis: 1 }, vec![first]);
    let pooled = b.linear(&flat, hidden, hidden);
    let out = b.op("pool_tanh", OpKind::Tanh, vec![pooled]);
    b.output(&t);
    b.output(&out);
    b.finish().expect("BERT must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_near_paper() {
        let g = build(&ModelConfig::full());
        assert!(
            (700..=1000).contains(&g.num_nodes()),
            "BERT has {} nodes, expected ≈963",
            g.num_nodes()
        );
    }

    #[test]
    fn repeated_mha_structure() {
        let g = build(&ModelConfig::full());
        let softmaxes = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Softmax { .. }))
            .count();
        assert_eq!(softmaxes, 12, "one attention softmax per layer");
        let erfs = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Erf))
            .count();
        assert_eq!(erfs, 12, "one decomposed GELU per layer");
    }

    #[test]
    fn exporter_chains_fold_statically() {
        let g = build(&ModelConfig::tiny());
        // shape inference succeeded (finish() ran), so every reshape chain
        // resolved; check the chains exist for CP+DCE to prune
        let shape_nodes = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Shape))
            .count();
        assert!(shape_nodes >= 4);
    }

    #[test]
    fn sequence_and_pooled_outputs() {
        let cfg = ModelConfig::tiny();
        let g = build(&cfg);
        assert_eq!(g.outputs.len(), 2);
        let seq_out = &g.outputs[0];
        assert_eq!(
            g.value_info[seq_out].shape,
            vec![cfg.batch, cfg.seq_len, cfg.hidden]
        );
    }
}
