//! Synthetic graph generators for property-based tests and ablations.
//!
//! These generate *valid, executable* graphs (elementwise ops over a shared
//! vector shape) with controllable topology, so proptest can hammer the
//! clustering/merging/codegen invariants on shapes no hand-written model
//! covers.

use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// Deterministic splitmix64 — keeps this crate free of RNG dependencies.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Bounded activations only: chained `Exp` overflows to inf/NaN on deep
// random graphs, which would make equivalence comparisons vacuous.
const UNARY_OPS: [OpKind; 4] = [OpKind::Relu, OpKind::Sigmoid, OpKind::Tanh, OpKind::Neg];

/// `stages` fork-join diamonds in sequence: each stage forks into `branches`
/// chains of `chain_len` unary ops that reconverge in an `Add` tree
/// (well, a flat n-ary `Concat`-free `Add` fold).
pub fn fork_join(branches: usize, chain_len: usize, stages: usize) -> Graph {
    assert!(branches >= 1 && chain_len >= 1 && stages >= 1);
    let mut b = GraphBuilder::new(format!("fork_join_{branches}x{chain_len}x{stages}"));
    let mut t = b.input("x", DType::F32, vec![64]);
    let mut state = 0xFEED_u64;
    for _ in 0..stages {
        let root = b.op("root", OpKind::Relu, vec![t]);
        let mut outs = Vec::with_capacity(branches);
        for _ in 0..branches {
            let mut u = root.clone();
            for _ in 0..chain_len {
                let op = UNARY_OPS[(next(&mut state) % 4) as usize].clone();
                u = b.op("n", op, vec![u]);
            }
            outs.push(u);
        }
        // fold the branches with Adds
        let mut acc = outs[0].clone();
        for o in &outs[1..] {
            acc = b.op("join", OpKind::Add, vec![acc, o.clone()]);
        }
        t = acc;
    }
    b.output(&t);
    b.finish().expect("fork_join must build")
}

/// Random layered DAG: `layers × width` unary/binary nodes; each node reads
/// 1–2 tensors from the previous `lookback` layers. Always connected and
/// acyclic by construction.
pub fn layered_random(seed: u64, layers: usize, width: usize, lookback: usize) -> Graph {
    assert!(layers >= 1 && width >= 1);
    let mut b = GraphBuilder::new(format!("layered_{seed}_{layers}x{width}"));
    let input = b.input("x", DType::F32, vec![32]);
    let mut state = seed ^ 0xABCD_EF01;
    let mut prev_layers: Vec<Vec<String>> = vec![vec![input]];
    for _ in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            // pick 1 or 2 inputs from recent layers
            let pick = |state: &mut u64, prev: &[Vec<String>]| -> String {
                let lo = prev.len().saturating_sub(lookback.max(1));
                let li = lo + (next(state) as usize) % (prev.len() - lo);
                let l = &prev[li];
                l[(next(state) as usize) % l.len()].clone()
            };
            let a = pick(&mut state, &prev_layers);
            if next(&mut state).is_multiple_of(2) {
                let op = UNARY_OPS[(next(&mut state) % 4) as usize].clone();
                layer.push(b.op("u", op, vec![a]));
            } else {
                let c = pick(&mut state, &prev_layers);
                let op = if next(&mut state).is_multiple_of(2) {
                    OpKind::Add
                } else {
                    OpKind::Mul
                };
                layer.push(b.op("b", op, vec![a, c]));
            }
        }
        prev_layers.push(layer);
    }
    // every sink becomes an output so nothing is dead
    let adj_outputs: Vec<String> = {
        let g = b.graph_mut();
        let adj = g.adjacency();
        g.nodes
            .iter()
            .filter(|n| adj.succs[n.id].is_empty())
            .map(|n| n.outputs[0].clone())
            .collect()
    };
    for o in adj_outputs {
        b.output(&o);
    }
    b.finish().expect("layered_random must build")
}

/// A pure chain of `n` unary ops — worst case for task parallelism.
pub fn chain(n: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("chain_{n}"));
    let mut t = b.input("x", DType::F32, vec![64]);
    for _ in 0..n {
        t = b.op("n", OpKind::Relu, vec![t]);
    }
    b.output(&t);
    b.finish().expect("chain must build")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::validate::validate;

    #[test]
    fn generators_produce_valid_graphs() {
        validate(&fork_join(4, 3, 2)).unwrap();
        validate(&layered_random(7, 6, 4, 2)).unwrap();
        validate(&chain(10)).unwrap();
    }

    #[test]
    fn fork_join_node_count() {
        // per stage: 1 root + branches·chain_len + (branches−1) joins
        let g = fork_join(3, 2, 2);
        assert_eq!(g.num_nodes(), 2 * (1 + 3 * 2 + 2));
    }

    #[test]
    fn layered_random_is_deterministic() {
        let a = layered_random(42, 5, 3, 2);
        let b = layered_random(42, 5, 3, 2);
        assert_eq!(a, b);
        let c = layered_random(43, 5, 3, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn chain_is_sequential() {
        let g = chain(5);
        assert_eq!(g.num_nodes(), 5);
        let adj = g.adjacency();
        assert!(adj.succs.iter().all(|s| s.len() <= 1));
    }
}
