//! YOLO v5: CSP backbone + SPPF + PANet head + three detection heads.
//!
//! Every convolution carries the exporter's SiLU expansion
//! (`Conv → Sigmoid → Mul`), and each detection head ends in the
//! `Shape → Gather → Concat → Reshape` chains plus grid-decode arithmetic
//! that the paper's constant propagation + DCE pass prunes (Fig. 6,
//! Table III). Long serial CSP chains keep the potential parallelism low
//! (1.18× in Table I), which is why LC alone slightly slows YOLO down and
//! only CP+DCE turns it positive (Table VI).
//!
//! Paper-faithful node count: 280 (Table I).

use crate::common::{concat_channels, conv_silu, exporter_reshape, max_pool};
use crate::ModelConfig;
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

/// CSP bottleneck: two 3×3 conv_silu plus an optional residual add.
fn bottleneck(b: &mut GraphBuilder, x: &str, c: usize, shortcut: bool) -> String {
    let y1 = conv_silu(b, x, c, c, 1, 1, 0);
    let y2 = conv_silu(b, &y1, c, c, 3, 1, 1);
    if shortcut {
        b.op("res", OpKind::Add, vec![x.to_string(), y2])
    } else {
        y2
    }
}

/// C3 module: split into two 1×1 paths, run `n` bottlenecks on one, concat,
/// fuse with a final 1×1. `10 + 7n` nodes.
fn c3(b: &mut GraphBuilder, x: &str, cin: usize, cout: usize, n: usize, shortcut: bool) -> String {
    let half = (cout / 2).max(1);
    let mut main = conv_silu(b, x, cin, half, 1, 1, 0);
    for _ in 0..n {
        main = bottleneck(b, &main, half, shortcut);
    }
    let side = conv_silu(b, x, cin, half, 1, 1, 0);
    let cat = concat_channels(b, vec![main, side]);
    conv_silu(b, &cat, 2 * half, cout, 1, 1, 0)
}

/// SPPF: 1×1 squeeze, three chained stride-1 max pools, concat, 1×1 fuse.
fn sppf(b: &mut GraphBuilder, x: &str, cin: usize, cout: usize) -> String {
    let half = (cin / 2).max(1);
    let cv1 = conv_silu(b, x, cin, half, 1, 1, 0);
    let p1 = max_pool(b, &cv1, 5, 1, 2);
    let p2 = max_pool(b, &p1, 5, 1, 2);
    let p3 = max_pool(b, &p2, 5, 1, 2);
    let cat = concat_channels(b, vec![cv1, p1, p2, p3]);
    conv_silu(b, &cat, 4 * half, cout, 1, 1, 0)
}

/// One detection head: 1×1 conv to anchor channels, exporter reshape to
/// `[N, A, -1]`, sigmoid, grid decode (`2·σ − 0.5`-style mul/sub arithmetic
/// on a slice) — most of it dead weight that CP+DCE shrinks.
fn detect_head(
    b: &mut GraphBuilder,
    x: &str,
    cin: usize,
    anchors: usize,
    classes: usize,
) -> String {
    let ch = anchors * (classes + 5);
    let conv = b.conv(x, cin, ch, (1, 1), (1, 1), (0, 0), 1);
    let rs = exporter_reshape(b, &conv, &[0, anchors as i64, -1], &[0]);
    let sig = b.op("sig", OpKind::Sigmoid, vec![rs]);
    // constant grid construction, exactly as the exporter freezes it —
    // a pure-constant chain that CP+DCE folds to a single initializer
    let gshape = b.const_i64("gshape", vec![1, anchors as i64, 1]);
    let grid = b.op("grid", OpKind::ConstantOfShape { value: 0.5 }, vec![gshape]);
    let two_c = b.const_scalar("gtwo", 2.0);
    let gscaled = b.op("gmul", OpKind::Mul, vec![grid, two_c]);
    let ghalf_c = b.const_scalar("ghalf", 0.5);
    let goffset = b.op("goff", OpKind::Mul, vec![gscaled, ghalf_c]);
    // grid decode on the xy slice: y = 2·σ(x) − grid_offset
    let xy = b.op(
        "xy",
        OpKind::Slice {
            axes: vec![2],
            starts: vec![0],
            ends: vec![2],
            steps: vec![1],
        },
        vec![sig.clone()],
    );
    let two = b.const_scalar("two", 2.0);
    let scaled = b.op("mul2", OpKind::Mul, vec![xy, two]);
    let centered = b.op("sub", OpKind::Sub, vec![scaled, goffset]);
    // anchor scaling on the wh slice, with the exporter's constant anchor
    // arithmetic (also foldable)
    let anchor = b.weight(
        "anchors",
        vec![1, anchors, 1],
        ramiel_ir::builder::Init::Const(1.0),
    );
    let atwo = b.const_scalar("atwo", 2.0);
    let anchor2 = b.op("amul", OpKind::Mul, vec![anchor, atwo]);
    let wh = b.op(
        "wh",
        OpKind::Slice {
            axes: vec![2],
            starts: vec![2],
            ends: vec![4],
            steps: vec![1],
        },
        vec![sig.clone()],
    );
    let wh_scaled = b.op("whmul", OpKind::Mul, vec![wh, anchor2]);
    let rest = b.op(
        "rest",
        OpKind::Slice {
            axes: vec![2],
            starts: vec![4],
            ends: vec![i64::MAX],
            steps: vec![1],
        },
        vec![sig],
    );
    b.op(
        "det",
        OpKind::Concat { axis: 2 },
        vec![centered, wh_scaled, rest],
    )
}

/// Build YOLO v5.
pub fn build(cfg: &ModelConfig) -> Graph {
    let w = cfg.width;
    let classes = 10;
    let anchors = 3;
    let mut b = GraphBuilder::new("Yolo V5");
    // Five stride-2 stages need at least 32 pixels to stay consistent.
    let spatial = cfg.spatial.max(32);
    let x = b.input("input", DType::F32, vec![cfg.batch, 3, spatial, spatial]);

    // backbone
    let t0 = conv_silu(&mut b, &x, 3, w, 3, 2, 1); // /2
    let t1 = conv_silu(&mut b, &t0, w, 2 * w, 3, 2, 1); // /4
    let c1 = c3(&mut b, &t1, 2 * w, 2 * w, cfg.repeats(2), true);
    let t2 = conv_silu(&mut b, &c1, 2 * w, 4 * w, 3, 2, 1); // /8
    let c2 = c3(&mut b, &t2, 4 * w, 4 * w, cfg.repeats(3), true); // → P3
    let t3 = conv_silu(&mut b, &c2, 4 * w, 8 * w, 3, 2, 1); // /16
    let c3_ = c3(&mut b, &t3, 8 * w, 8 * w, cfg.repeats(4), true); // → P4
    let t4 = conv_silu(&mut b, &c3_, 8 * w, 8 * w, 3, 2, 1); // /32
    let c4 = c3(&mut b, &t4, 8 * w, 8 * w, cfg.repeats(2), true);
    let sp = sppf(&mut b, &c4, 8 * w, 8 * w); // → P5

    // PANet top-down
    let u1c = conv_silu(&mut b, &sp, 8 * w, 8 * w, 1, 1, 0);
    let u1 = b.op("up", OpKind::Resize { scale: (2, 2) }, vec![u1c.clone()]);
    let m1 = concat_channels(&mut b, vec![u1, c3_]);
    let h1 = c3(&mut b, &m1, 16 * w, 8 * w, cfg.repeats(1), false); // P4'
    let u2c = conv_silu(&mut b, &h1, 8 * w, 4 * w, 1, 1, 0);
    let u2 = b.op("up", OpKind::Resize { scale: (2, 2) }, vec![u2c.clone()]);
    let m2 = concat_channels(&mut b, vec![u2, c2]);
    let h2 = c3(&mut b, &m2, 8 * w, 4 * w, cfg.repeats(1), false); // P3'

    // PANet bottom-up
    let d1 = conv_silu(&mut b, &h2, 4 * w, 4 * w, 3, 2, 1);
    let m3 = concat_channels(&mut b, vec![d1, u2c]);
    let h3 = c3(&mut b, &m3, 8 * w, 8 * w, cfg.repeats(1), false); // P4''
    let d2 = conv_silu(&mut b, &h3, 8 * w, 8 * w, 3, 2, 1);
    let m4 = concat_channels(&mut b, vec![d2, u1c]);
    let h4 = c3(&mut b, &m4, 16 * w, 8 * w, cfg.repeats(1), false); // P5''

    // detection heads at three scales
    let o1 = detect_head(&mut b, &h2, 4 * w, anchors, classes);
    let o2 = detect_head(&mut b, &h3, 8 * w, anchors, classes);
    let o3 = detect_head(&mut b, &h4, 8 * w, anchors, classes);
    b.output(&o1);
    b.output(&o2);
    b.output(&o3);
    b.finish().expect("YOLO v5 must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_paper() {
        let g = build(&ModelConfig::full());
        assert!(
            (230..=310).contains(&g.num_nodes()),
            "YOLO v5 has {} nodes, expected ≈280",
            g.num_nodes()
        );
    }

    #[test]
    fn has_foldable_shape_chains() {
        let g = build(&ModelConfig::full());
        let shapes = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Shape))
            .count();
        assert_eq!(shapes, 3, "one exporter chain per detect head");
    }

    #[test]
    fn three_detection_outputs() {
        let g = build(&ModelConfig::tiny());
        assert_eq!(g.outputs.len(), 3);
    }

    #[test]
    fn silu_expansion_dominates() {
        let g = build(&ModelConfig::full());
        let sig = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Sigmoid))
            .count();
        assert!(sig > 40, "expected many SiLU sigmoid nodes, got {sig}");
    }
}
