//! Newline-delimited JSON over `std::net` TCP — the transport behind
//! `ramiel serve <model.json> --port N`. One JSON object per line in each
//! direction; one thread per connection (the server's own admission
//! control is the concurrency limiter, not the transport).
//!
//! ## Wire format
//!
//! Request: `{"id":1,"op":"infer","inputs":{"x":{"shape":[2],"payload":{"F32":[1.0,2.0]}}}}`
//!
//! Ops: `ping`, `infer` (named [`TensorData`] inputs), `infer_synth`
//! (server-side deterministic inputs from `seed` — lets load generators
//! skip shipping tensors), `stats` (resets per-window gauges — pollers see
//! interval deltas; includes per-model plan `versions` so hot swaps are
//! observable), `metrics` (Prometheus text exposition in the `metrics`
//! response field; scrape with `ramiel top`), `trace` (Chrome trace JSON of
//! recent requests in the `trace` field), `load` (pull `source` through the
//! registry — with optional `sha256` pin — and hot-swap it in as `model`;
//! the response carries the new plan `version` and the content digest),
//! `shutdown` (graceful drain, then the accept loop exits).
//!
//! When the server runs with a registry ([`run_tcp_with_registry`]), an
//! `infer`/`infer_synth` naming an unknown model whose name parses as a
//! model reference (a path or URL) is *autoloaded* on first request.
//!
//! Response: `{"id":1,"ok":true,...}` with `outputs` / `stats` on success,
//! `error` + `code` (SV-*/RT-*) on failure. `model` is optional everywhere
//! and defaults to the model the server was started with.

use crate::plan::PlanSpec;
use crate::registry::Registry;
use crate::server::{ServeError, Server};
use ramiel_ir::TensorData;
use ramiel_runtime::Env;
use ramiel_tensor::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Deserialize)]
struct WireRequest {
    id: Option<u64>,
    op: String,
    /// Defaults to the model `run_tcp` was started with.
    model: Option<String>,
    /// `infer`: named input tensors.
    inputs: Option<BTreeMap<String, TensorData>>,
    /// `infer_synth`: seed for server-side deterministic inputs.
    seed: Option<u64>,
    /// Relative deadline; the request is shed if it can't start in time.
    deadline_ms: Option<u64>,
    /// `load`: model reference to pull (`file://…`, `http://…`, or a path).
    source: Option<String>,
    /// `load`: optional sha256 pin for the pulled bytes.
    sha256: Option<String>,
}

#[derive(Debug, Serialize)]
struct WireResponse {
    id: u64,
    ok: bool,
    outputs: Option<BTreeMap<String, TensorData>>,
    stats: Option<crate::stats::StatsSnapshot>,
    models: Option<Vec<String>>,
    /// `metrics` op: Prometheus text exposition.
    metrics: Option<String>,
    /// `trace` op: Chrome trace JSON (`{"traceEvents": [...]}`).
    trace: Option<serde_json::Value>,
    /// `stats` op: plan version per loaded model (hot-swap observable).
    versions: Option<BTreeMap<String, u64>>,
    /// `load` op: the new plan's version.
    version: Option<u64>,
    /// `load` op: content digest of the pulled model bytes.
    sha256: Option<String>,
    error: Option<String>,
    code: Option<String>,
}

impl WireResponse {
    fn ok(id: u64) -> WireResponse {
        WireResponse {
            id,
            ok: true,
            outputs: None,
            stats: None,
            models: None,
            metrics: None,
            trace: None,
            versions: None,
            version: None,
            sha256: None,
            error: None,
            code: None,
        }
    }

    fn err(id: u64, e: &ServeError) -> WireResponse {
        WireResponse {
            error: Some(e.to_string()),
            code: Some(e.code().to_string()),
            ok: false,
            ..WireResponse::ok(id)
        }
    }

    /// Failure with an explicit code — used for registry (`RG-*`) and
    /// importer (`ONNX-*`) failures surfaced through the `load` op, which
    /// have their own code namespaces.
    fn err_code(id: u64, code: &str, message: String) -> WireResponse {
        WireResponse {
            error: Some(message),
            code: Some(code.to_string()),
            ok: false,
            ..WireResponse::ok(id)
        }
    }
}

/// Serve `server` on `listener` until a client sends `{"op":"shutdown"}`.
/// Prints `listening on ADDR` so callers binding port 0 can discover the
/// port. Blocks the calling thread; connections each get their own.
pub fn run_tcp(
    server: &Arc<Server>,
    default_model: &str,
    listener: TcpListener,
) -> std::io::Result<()> {
    run_tcp_with_registry(server, default_model, listener, None)
}

/// [`run_tcp`] with an attached model registry: enables the `load` op and
/// autoload-on-first-request for unknown model names that parse as model
/// references.
pub fn run_tcp_with_registry(
    server: &Arc<Server>,
    default_model: &str,
    listener: TcpListener,
    registry: Option<Arc<Registry>>,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    println!("listening on {addr}");
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let server = Arc::clone(server);
        let model = default_model.to_string();
        let stop = Arc::clone(&stop);
        let registry = registry.clone();
        std::thread::Builder::new()
            .name("ramiel-serve-conn".into())
            .spawn(move || {
                let shutdown_requested = handle_conn(&server, &model, registry.as_deref(), stream);
                if shutdown_requested {
                    server.shutdown();
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe `stop`.
                    let _ = TcpStream::connect(addr);
                }
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// Serve one connection; returns true if the client requested shutdown.
fn handle_conn(
    server: &Server,
    default_model: &str,
    registry: Option<&Registry>,
    stream: TcpStream,
) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = match serde_json::from_str::<WireRequest>(&line) {
            Ok(req) => handle_request(server, default_model, registry, req),
            Err(e) => (
                WireResponse::err(0, &ServeError::Internal(format!("bad request: {e}"))),
                false,
            ),
        };
        let mut out = serde_json::to_string(&resp).unwrap_or_else(|_| {
            r#"{"id":0,"ok":false,"error":"response serialization failed","code":"SV-INTERNAL"}"#
                .to_string()
        });
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

fn handle_request(
    server: &Server,
    default_model: &str,
    registry: Option<&Registry>,
    req: WireRequest,
) -> (WireResponse, bool) {
    let id = req.id.unwrap_or(0);
    let model = req.model.as_deref().unwrap_or(default_model);
    match req.op.as_str() {
        "ping" => (WireResponse::ok(id), false),
        "stats" => {
            let mut r = WireResponse::ok(id);
            r.stats = Some(server.stats_and_reset_window());
            r.models = Some(server.models());
            r.versions = Some(server.model_versions());
            (r, false)
        }
        "metrics" => {
            let mut r = WireResponse::ok(id);
            r.metrics = Some(server.metrics_text());
            (r, false)
        }
        "trace" => {
            let mut r = WireResponse::ok(id);
            r.trace = Some(server.trace_chrome());
            (r, false)
        }
        "shutdown" => (WireResponse::ok(id), true),
        "load" => {
            let Some(source) = req.source.as_deref() else {
                return (
                    WireResponse::err(id, &ServeError::Internal("load needs `source`".into())),
                    false,
                );
            };
            let Some(registry) = registry else {
                return (
                    WireResponse::err(
                        id,
                        &ServeError::Internal("server is running without a registry".into()),
                    ),
                    false,
                );
            };
            // The `model` name the plan is installed under defaults to the
            // lane the server was started with — a hot *swap*, not a new lane.
            match load_from_registry(server, registry, model, source, req.sha256.as_deref(), id) {
                Ok((version, digest)) => {
                    let mut r = WireResponse::ok(id);
                    r.version = Some(version);
                    r.sha256 = Some(digest);
                    (r, false)
                }
                Err(resp) => (*resp, false),
            }
        }
        "infer" => {
            let Some(wire_inputs) = req.inputs else {
                return (
                    WireResponse::err(id, &ServeError::Internal("infer needs `inputs`".into())),
                    false,
                );
            };
            let mut env = Env::new();
            for (name, td) in &wire_inputs {
                match Value::from_tensor_data(td) {
                    Ok(v) => {
                        env.insert(name.clone(), v);
                    }
                    Err(e) => {
                        return (
                            WireResponse::err(
                                id,
                                &ServeError::Internal(format!("bad tensor `{name}`: {e}")),
                            ),
                            false,
                        )
                    }
                }
            }
            if let Err(resp) = autoload(server, registry, model, id) {
                return (*resp, false);
            }
            (run_infer(server, model, env, req.deadline_ms, id), false)
        }
        "infer_synth" => {
            if let Err(resp) = autoload(server, registry, model, id) {
                return (*resp, false);
            }
            let Some(plan) = server.plan(model) else {
                return (
                    WireResponse::err(id, &ServeError::UnknownModel(model.to_string())),
                    false,
                );
            };
            let env = ramiel_runtime::synth_inputs(&plan.graph, req.seed.unwrap_or(0));
            (run_infer(server, model, env, req.deadline_ms, id), false)
        }
        other => (
            WireResponse::err(id, &ServeError::Internal(format!("unknown op `{other}`"))),
            false,
        ),
    }
}

/// Pull `source` through the registry, import it with the unified model
/// loader, and hot-swap it in as `name`. Returns the new plan's version and
/// the content digest, or a ready-to-send error response (registry failures
/// keep their `RG-*` codes, importer failures their `ONNX-*`/parse codes).
fn load_from_registry(
    server: &Server,
    registry: &Registry,
    name: &str,
    source: &str,
    pin: Option<&str>,
    id: u64,
) -> Result<(u64, String), Box<WireResponse>> {
    let pulled = registry
        .pull(source, pin)
        .map_err(|e| Box::new(WireResponse::err_code(id, e.code(), e.to_string())))?;
    let graph = ramiel_onnx::load_model(&pulled.path).map_err(|e| {
        let code = match &e {
            ramiel_onnx::LoadError::Onnx(oe) => oe.code(),
            ramiel_onnx::LoadError::Io { .. } => "RG-IO",
            ramiel_onnx::LoadError::Native(_) => "SV-MODEL",
        };
        Box::new(WireResponse::err_code(id, code, e.to_string()))
    })?;
    let plan = server
        .load(name, PlanSpec::new(graph))
        .map_err(|e| Box::new(WireResponse::err(id, &e)))?;
    Ok((plan.version, pulled.sha256))
}

/// Autoload-on-first-request: if `model` isn't loaded but the server has a
/// registry and the name parses as a model reference (a URL or an existing
/// path), pull and load it before the request proceeds. Missing models whose
/// names are *not* references fall through to the usual SV-MODEL error.
fn autoload(
    server: &Server,
    registry: Option<&Registry>,
    model: &str,
    id: u64,
) -> Result<(), Box<WireResponse>> {
    if server.plan(model).is_some() {
        return Ok(());
    }
    let Some(registry) = registry else {
        return Ok(());
    };
    let is_reference = model.contains("://") || std::path::Path::new(model).exists();
    if !is_reference {
        return Ok(());
    }
    load_from_registry(server, registry, model, model, None, id).map(|_| ())
}

fn run_infer(
    server: &Server,
    model: &str,
    env: Env,
    deadline_ms: Option<u64>,
    id: u64,
) -> WireResponse {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let result = server
        .submit_with_deadline(model, env, deadline)
        .and_then(|ticket| ticket.wait());
    match result {
        Ok(outputs) => {
            let mut r = WireResponse::ok(id);
            r.outputs = Some(
                outputs
                    .iter()
                    .map(|(name, v)| (name.clone(), v.to_tensor_data()))
                    .collect(),
            );
            r
        }
        Err(e) => WireResponse::err(id, &e),
    }
}
