//! Newline-delimited JSON over `std::net` TCP — the transport behind
//! `ramiel serve <model.json> --port N`. One JSON object per line in each
//! direction; one thread per connection (the server's own admission
//! control is the concurrency limiter, not the transport).
//!
//! ## Wire format
//!
//! Request: `{"id":1,"op":"infer","inputs":{"x":{"shape":[2],"payload":{"F32":[1.0,2.0]}}}}`
//!
//! Ops: `ping`, `infer` (named [`TensorData`] inputs), `infer_synth`
//! (server-side deterministic inputs from `seed` — lets load generators
//! skip shipping tensors), `stats` (resets per-window gauges — pollers see
//! interval deltas), `metrics` (Prometheus text exposition in the
//! `metrics` response field; scrape with `ramiel top`), `trace` (Chrome
//! trace JSON of recent requests in the `trace` field), `shutdown`
//! (graceful drain, then the accept loop exits).
//!
//! Response: `{"id":1,"ok":true,...}` with `outputs` / `stats` on success,
//! `error` + `code` (SV-*/RT-*) on failure. `model` is optional everywhere
//! and defaults to the model the server was started with.

use crate::server::{ServeError, Server};
use ramiel_ir::TensorData;
use ramiel_runtime::Env;
use ramiel_tensor::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Deserialize)]
struct WireRequest {
    id: Option<u64>,
    op: String,
    /// Defaults to the model `run_tcp` was started with.
    model: Option<String>,
    /// `infer`: named input tensors.
    inputs: Option<BTreeMap<String, TensorData>>,
    /// `infer_synth`: seed for server-side deterministic inputs.
    seed: Option<u64>,
    /// Relative deadline; the request is shed if it can't start in time.
    deadline_ms: Option<u64>,
}

#[derive(Debug, Serialize)]
struct WireResponse {
    id: u64,
    ok: bool,
    outputs: Option<BTreeMap<String, TensorData>>,
    stats: Option<crate::stats::StatsSnapshot>,
    models: Option<Vec<String>>,
    /// `metrics` op: Prometheus text exposition.
    metrics: Option<String>,
    /// `trace` op: Chrome trace JSON (`{"traceEvents": [...]}`).
    trace: Option<serde_json::Value>,
    error: Option<String>,
    code: Option<String>,
}

impl WireResponse {
    fn ok(id: u64) -> WireResponse {
        WireResponse {
            id,
            ok: true,
            outputs: None,
            stats: None,
            models: None,
            metrics: None,
            trace: None,
            error: None,
            code: None,
        }
    }

    fn err(id: u64, e: &ServeError) -> WireResponse {
        WireResponse {
            error: Some(e.to_string()),
            code: Some(e.code().to_string()),
            ok: false,
            ..WireResponse::ok(id)
        }
    }
}

/// Serve `server` on `listener` until a client sends `{"op":"shutdown"}`.
/// Prints `listening on ADDR` so callers binding port 0 can discover the
/// port. Blocks the calling thread; connections each get their own.
pub fn run_tcp(
    server: &Arc<Server>,
    default_model: &str,
    listener: TcpListener,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    println!("listening on {addr}");
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let server = Arc::clone(server);
        let model = default_model.to_string();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("ramiel-serve-conn".into())
            .spawn(move || {
                let shutdown_requested = handle_conn(&server, &model, stream);
                if shutdown_requested {
                    server.shutdown();
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe `stop`.
                    let _ = TcpStream::connect(addr);
                }
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// Serve one connection; returns true if the client requested shutdown.
fn handle_conn(server: &Server, default_model: &str, stream: TcpStream) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = match serde_json::from_str::<WireRequest>(&line) {
            Ok(req) => handle_request(server, default_model, req),
            Err(e) => (
                WireResponse::err(0, &ServeError::Internal(format!("bad request: {e}"))),
                false,
            ),
        };
        let mut out = serde_json::to_string(&resp).unwrap_or_else(|_| {
            r#"{"id":0,"ok":false,"error":"response serialization failed","code":"SV-INTERNAL"}"#
                .to_string()
        });
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

fn handle_request(server: &Server, default_model: &str, req: WireRequest) -> (WireResponse, bool) {
    let id = req.id.unwrap_or(0);
    let model = req.model.as_deref().unwrap_or(default_model);
    match req.op.as_str() {
        "ping" => (WireResponse::ok(id), false),
        "stats" => {
            let mut r = WireResponse::ok(id);
            r.stats = Some(server.stats_and_reset_window());
            r.models = Some(server.models());
            (r, false)
        }
        "metrics" => {
            let mut r = WireResponse::ok(id);
            r.metrics = Some(server.metrics_text());
            (r, false)
        }
        "trace" => {
            let mut r = WireResponse::ok(id);
            r.trace = Some(server.trace_chrome());
            (r, false)
        }
        "shutdown" => (WireResponse::ok(id), true),
        "infer" => {
            let Some(wire_inputs) = req.inputs else {
                return (
                    WireResponse::err(id, &ServeError::Internal("infer needs `inputs`".into())),
                    false,
                );
            };
            let mut env = Env::new();
            for (name, td) in &wire_inputs {
                match Value::from_tensor_data(td) {
                    Ok(v) => {
                        env.insert(name.clone(), v);
                    }
                    Err(e) => {
                        return (
                            WireResponse::err(
                                id,
                                &ServeError::Internal(format!("bad tensor `{name}`: {e}")),
                            ),
                            false,
                        )
                    }
                }
            }
            (run_infer(server, model, env, req.deadline_ms, id), false)
        }
        "infer_synth" => {
            let Some(plan) = server.plan(model) else {
                return (
                    WireResponse::err(id, &ServeError::UnknownModel(model.to_string())),
                    false,
                );
            };
            let env = ramiel_runtime::synth_inputs(&plan.graph, req.seed.unwrap_or(0));
            (run_infer(server, model, env, req.deadline_ms, id), false)
        }
        other => (
            WireResponse::err(id, &ServeError::Internal(format!("unknown op `{other}`"))),
            false,
        ),
    }
}

fn run_infer(
    server: &Server,
    model: &str,
    env: Env,
    deadline_ms: Option<u64>,
    id: u64,
) -> WireResponse {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let result = server
        .submit_with_deadline(model, env, deadline)
        .and_then(|ticket| ticket.wait());
    match result {
        Ok(outputs) => {
            let mut r = WireResponse::ok(id);
            r.outputs = Some(
                outputs
                    .iter()
                    .map(|(name, v)| (name.clone(), v.to_tensor_data()))
                    .collect(),
            );
            r
        }
        Err(e) => WireResponse::err(id, &e),
    }
}
