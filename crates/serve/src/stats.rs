//! Serving counters: queue depth, batch-size histogram, per-phase latency
//! histograms, shed counts. Entirely lock-free on the hot path — counters
//! are plain atomics and the histograms are the fixed-bucket atomics from
//! [`ramiel_obs::metrics`] (the old per-batch `Mutex<BTreeMap>` histogram
//! is gone).

use ramiel_obs::metrics::{bucket_bounds, Histogram, PeakGauge};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by the server, its lanes, and the stats endpoint.
#[derive(Default)]
pub struct ServeStats {
    /// Requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Requests answered with outputs.
    pub completed: AtomicU64,
    /// Requests answered with an execution error.
    pub failed: AtomicU64,
    /// Requests rejected because the queue was full (after any blocking
    /// backpressure wait).
    pub shed_queue_full: AtomicU64,
    /// Requests rejected because their deadline passed before execution.
    pub shed_deadline: AtomicU64,
    /// Requests rejected during shutdown.
    pub rejected_shutdown: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests carried by those batches (mean batch = this / batches).
    pub batched_requests: AtomicU64,
    /// Batch retries on the standing pool.
    pub retries: AtomicU64,
    /// Batches that degraded to per-request sequential execution.
    pub fallbacks: AtomicU64,
    /// Deepest queue observed at admission (per-window + lifetime).
    peak_depth: PeakGauge,
    /// Achieved batch sizes (exact buckets below 16, so `max_batch <= 15`
    /// configurations report size-precise histograms).
    batch_sizes: Histogram,
    /// Per-request time-in-queue, nanoseconds (enqueue → collector pop).
    pub(crate) queue_wait_ns: Histogram,
    /// Collector pop → batch execution start, nanoseconds.
    pub(crate) batch_wait_ns: Histogram,
    /// Batch execution window attributed to each request, nanoseconds.
    pub(crate) execute_ns: Histogram,
    /// Execution end → response handed to the caller, nanoseconds.
    pub(crate) respond_ns: Histogram,
    /// End-to-end latency (enqueue → responded), nanoseconds.
    pub(crate) latency_ns: Histogram,
}

impl ServeStats {
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_sizes.record(size as u64);
    }

    pub fn note_depth(&self, depth: usize) {
        self.peak_depth.observe(depth as u64);
    }

    /// Point-in-time copy of every counter, plus derived means and
    /// quantiles. Leaves the current window running.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.build_snapshot(false)
    }

    /// [`ServeStats::snapshot`], additionally resetting every per-window
    /// gauge (the queue-depth peak) so periodic scrapes see interval
    /// deltas instead of lifetime highs.
    pub fn snapshot_and_reset_window(&self) -> StatsSnapshot {
        self.build_snapshot(true)
    }

    fn build_snapshot(&self, reset_windows: bool) -> StatsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let queue = self.queue_wait_ns.snapshot();
        let latency = self.latency_ns.snapshot();
        let execute = self.execute_ns.snapshot();
        let ms = |ns: u64| ns as f64 / 1e6;
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            batches,
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_depth.lifetime(),
            window_peak_queue_depth: if reset_windows {
                self.peak_depth.take_window()
            } else {
                self.peak_depth.window()
            },
            mean_batch: if batches > 0 {
                batched as f64 / batches as f64
            } else {
                0.0
            },
            mean_queue_ms: queue.mean() / 1e6,
            queue_p50_ms: ms(queue.percentile(0.5)),
            queue_p99_ms: ms(queue.percentile(0.99)),
            execute_p50_ms: ms(execute.percentile(0.5)),
            execute_p99_ms: ms(execute.percentile(0.99)),
            latency_p50_ms: ms(latency.percentile(0.5)),
            latency_p90_ms: ms(latency.percentile(0.9)),
            latency_p99_ms: ms(latency.percentile(0.99)),
            latency_max_ms: ms(latency.max),
            batch_histogram: self
                .batch_sizes
                .snapshot()
                .nonzero()
                .map(|(i, count)| BatchBucket {
                    // Exact below 16; the bucket's lower edge above.
                    size: bucket_bounds(i).0 as usize,
                    count,
                })
                .collect(),
        }
    }
}

/// One bucket of the achieved-batch-size histogram.
#[derive(Debug, Clone, Serialize)]
pub struct BatchBucket {
    pub size: usize,
    pub count: u64,
}

/// Serializable snapshot returned by `Server::stats` and the TCP `stats`
/// op.
#[derive(Debug, Clone, Serialize)]
pub struct StatsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub shed_queue_full: u64,
    pub shed_deadline: u64,
    pub rejected_shutdown: u64,
    pub batches: u64,
    pub retries: u64,
    pub fallbacks: u64,
    /// Lifetime queue-depth high-water mark.
    pub peak_queue_depth: u64,
    /// Queue-depth high-water mark since the last window reset
    /// ([`ServeStats::snapshot_and_reset_window`], used by the TCP `stats`
    /// and `metrics` ops).
    pub window_peak_queue_depth: u64,
    /// Mean achieved batch size (batched requests / batches).
    pub mean_batch: f64,
    /// Mean time-in-queue per request, milliseconds.
    pub mean_queue_ms: f64,
    pub queue_p50_ms: f64,
    pub queue_p99_ms: f64,
    pub execute_p50_ms: f64,
    pub execute_p99_ms: f64,
    pub latency_p50_ms: f64,
    pub latency_p90_ms: f64,
    pub latency_p99_ms: f64,
    pub latency_max_ms: f64,
    pub batch_histogram: Vec<BatchBucket>,
}
