//! Serving counters: queue depth, batch-size histogram, time-in-queue,
//! shed counts. Lock-free on the hot path (atomics), with one small mutex
//! for the batch-size histogram (touched once per *batch*, not per
//! request).

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by the server, its lanes, and the stats endpoint.
#[derive(Default)]
pub struct ServeStats {
    /// Requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Requests answered with outputs.
    pub completed: AtomicU64,
    /// Requests answered with an execution error.
    pub failed: AtomicU64,
    /// Requests rejected because the queue was full (after any blocking
    /// backpressure wait).
    pub shed_queue_full: AtomicU64,
    /// Requests rejected because their deadline passed before execution.
    pub shed_deadline: AtomicU64,
    /// Requests rejected during shutdown.
    pub rejected_shutdown: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests carried by those batches (mean batch = this / batches).
    pub batched_requests: AtomicU64,
    /// Batch retries on the standing pool.
    pub retries: AtomicU64,
    /// Batches that degraded to per-request sequential execution.
    pub fallbacks: AtomicU64,
    /// Total nanoseconds requests spent queued before execution.
    pub queue_ns: AtomicU64,
    /// Deepest queue observed at admission.
    pub peak_depth: AtomicU64,
    batch_hist: Mutex<BTreeMap<usize, u64>>,
}

impl ServeStats {
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        *self.batch_hist.lock().entry(size).or_insert(0) += 1;
    }

    pub fn note_depth(&self, depth: usize) {
        self.peak_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter, plus derived means.
    pub fn snapshot(&self) -> StatsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        let queue_ns = self.queue_ns.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            batches,
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_depth.load(Ordering::Relaxed),
            mean_batch: if batches > 0 {
                batched as f64 / batches as f64
            } else {
                0.0
            },
            mean_queue_ms: if batched > 0 {
                queue_ns as f64 / batched as f64 / 1e6
            } else {
                0.0
            },
            batch_histogram: self
                .batch_hist
                .lock()
                .iter()
                .map(|(&size, &count)| BatchBucket { size, count })
                .collect(),
        }
    }
}

/// One bucket of the achieved-batch-size histogram.
#[derive(Debug, Clone, Serialize)]
pub struct BatchBucket {
    pub size: usize,
    pub count: u64,
}

/// Serializable snapshot returned by `Server::stats` and the TCP `stats`
/// op.
#[derive(Debug, Clone, Serialize)]
pub struct StatsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub shed_queue_full: u64,
    pub shed_deadline: u64,
    pub rejected_shutdown: u64,
    pub batches: u64,
    pub retries: u64,
    pub fallbacks: u64,
    pub peak_queue_depth: u64,
    /// Mean achieved batch size (batched requests / batches).
    pub mean_batch: f64,
    /// Mean time-in-queue per request, milliseconds.
    pub mean_queue_ms: f64,
    pub batch_histogram: Vec<BatchBucket>,
}
