//! Remote model registry: resolve `file://` / `http://` model references
//! into an on-disk content-addressed cache with sha256 checksum pinning.
//!
//! Layout under the registry root:
//!
//! ```text
//! <root>/sha256/<hex-digest>    # the model bytes, named by their digest
//! <root>/manifest.json          # digest → {source, bytes, fetched_unix}
//! ```
//!
//! Files are immutable once written (a content address never changes
//! meaning), writes go through a temp-file + rename so a crashed pull never
//! leaves a half-written entry under a valid digest, and a pinned pull that
//! finds its digest already cached is served without touching the network.
//! A checksum mismatch refuses the pull *before* anything is written: the
//! cache only ever holds bytes that hashed to their own name.
//!
//! Errors carry stable `RG-*` codes, mirroring the `SV-*`/`ONNX-*`
//! conventions elsewhere in the stack.

use crate::sha256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

/// Structured registry failure; `code()` is the stable machine-readable
/// class.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Unsupported or malformed reference scheme (e.g. `https://` — no TLS
    /// stack is available in this build).
    Scheme { reference: String, reason: String },
    /// HTTP fetch failure (connect, malformed response, non-200 status).
    Http { url: String, reason: String },
    /// Local filesystem failure (read of a `file://` source, cache write).
    Io { path: String, reason: String },
    /// The fetched bytes do not hash to the pinned digest. Nothing was
    /// cached.
    Checksum { expected: String, actual: String },
    /// The manifest exists but cannot be parsed.
    Manifest { path: String, reason: String },
}

impl RegistryError {
    pub fn code(&self) -> &'static str {
        match self {
            RegistryError::Scheme { .. } => "RG-SCHEME",
            RegistryError::Http { .. } => "RG-HTTP",
            RegistryError::Io { .. } => "RG-IO",
            RegistryError::Checksum { .. } => "RG-CHECKSUM",
            RegistryError::Manifest { .. } => "RG-MANIFEST",
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            RegistryError::Scheme { reference, reason } => {
                write!(f, "cannot resolve `{reference}`: {reason}")
            }
            RegistryError::Http { url, reason } => write!(f, "GET {url} failed: {reason}"),
            RegistryError::Io { path, reason } => write!(f, "{path}: {reason}"),
            RegistryError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: pinned sha256 {expected}, fetched bytes hash to {actual}; \
                 refusing to cache or load"
            ),
            RegistryError::Manifest { path, reason } => {
                write!(f, "corrupt manifest {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One manifest row: provenance for a cached digest.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ManifestEntry {
    /// Where the bytes came from (`file://…`, `http://…`, or a plain path).
    pub source: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Unix seconds at fetch time (provenance only; never used for cache
    /// validity — content addresses don't expire).
    pub fetched_unix: u64,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct Manifest {
    models: BTreeMap<String, ManifestEntry>,
}

/// A successfully resolved model reference.
#[derive(Debug, Clone)]
pub struct Pulled {
    /// Lowercase hex sha256 of the bytes — the content address.
    pub sha256: String,
    /// Cache path holding the bytes (`<root>/sha256/<digest>`).
    pub path: PathBuf,
    /// The reference that was resolved.
    pub source: String,
    /// Size in bytes.
    pub bytes: u64,
    /// True when the pinned digest was already cached and no fetch ran.
    pub cache_hit: bool,
}

/// The on-disk content-addressed model cache.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// A registry rooted at `root` (created lazily on first pull).
    pub fn new(root: impl Into<PathBuf>) -> Registry {
        Registry { root: root.into() }
    }

    /// Default cache root: `$RAMIEL_CACHE`, else `~/.cache/ramiel`, else
    /// `./.ramiel-cache`.
    pub fn default_root() -> PathBuf {
        if let Ok(dir) = std::env::var("RAMIEL_CACHE") {
            return PathBuf::from(dir);
        }
        if let Ok(home) = std::env::var("HOME") {
            return Path::new(&home).join(".cache").join("ramiel");
        }
        PathBuf::from(".ramiel-cache")
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cache path for a digest, whether or not it exists yet.
    pub fn blob_path(&self, sha256_hex: &str) -> PathBuf {
        self.root.join("sha256").join(sha256_hex)
    }

    /// The cached blob for `sha256_hex`, if present.
    pub fn lookup(&self, sha256_hex: &str) -> Option<PathBuf> {
        let p = self.blob_path(sha256_hex);
        p.is_file().then_some(p)
    }

    /// Resolve `reference` into the cache, verifying against `pin` when
    /// given. `file://<path>` and plain paths read the local filesystem;
    /// `http://host[:port]/path` fetches over TCP. A pinned pull whose
    /// digest is already cached returns without fetching.
    pub fn pull(&self, reference: &str, pin: Option<&str>) -> Result<Pulled, RegistryError> {
        let pin = match pin {
            Some(p) => {
                let p = p.to_ascii_lowercase();
                if p.len() != 64 || !p.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(RegistryError::Scheme {
                        reference: reference.to_string(),
                        reason: format!("`{p}` is not a 64-hex-digit sha256"),
                    });
                }
                Some(p)
            }
            None => None,
        };
        if let Some(pin) = &pin {
            if let Some(path) = self.lookup(pin) {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                return Ok(Pulled {
                    sha256: pin.clone(),
                    path,
                    source: reference.to_string(),
                    bytes,
                    cache_hit: true,
                });
            }
        }

        let data = fetch(reference)?;
        let digest = sha256::hex_digest(&data);
        if let Some(pin) = &pin {
            if *pin != digest {
                return Err(RegistryError::Checksum {
                    expected: pin.clone(),
                    actual: digest,
                });
            }
        }
        let path = self.store(&digest, &data)?;
        self.record(&digest, reference, data.len() as u64)?;
        Ok(Pulled {
            sha256: digest,
            path,
            source: reference.to_string(),
            bytes: data.len() as u64,
            cache_hit: false,
        })
    }

    /// Write `data` under its digest via temp-file + rename.
    fn store(&self, digest: &str, data: &[u8]) -> Result<PathBuf, RegistryError> {
        let blob_dir = self.root.join("sha256");
        let io_err = |path: &Path, e: std::io::Error| RegistryError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        std::fs::create_dir_all(&blob_dir).map_err(|e| io_err(&blob_dir, e))?;
        let dest = blob_dir.join(digest);
        if dest.is_file() {
            return Ok(dest); // immutable by construction: same digest, same bytes
        }
        let tmp = blob_dir.join(format!(".tmp-{}-{digest}", std::process::id()));
        std::fs::write(&tmp, data).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &dest).map_err(|e| io_err(&dest, e))?;
        Ok(dest)
    }

    /// Merge one entry into the manifest.
    fn record(&self, digest: &str, source: &str, bytes: u64) -> Result<(), RegistryError> {
        let mut manifest = self.manifest()?;
        let fetched_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        manifest.insert(
            digest.to_string(),
            ManifestEntry {
                source: source.to_string(),
                bytes,
                fetched_unix,
            },
        );
        let path = self.root.join("manifest.json");
        let body = serde_json::to_string_pretty(&Manifest { models: manifest }).map_err(|e| {
            RegistryError::Manifest {
                path: path.display().to_string(),
                reason: e.to_string(),
            }
        })?;
        let tmp = self
            .root
            .join(format!(".manifest-tmp-{}", std::process::id()));
        let io_err = |p: &Path, e: std::io::Error| RegistryError::Io {
            path: p.display().to_string(),
            reason: e.to_string(),
        };
        std::fs::write(&tmp, body).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(())
    }

    /// The manifest contents (empty when no pull has run yet).
    pub fn manifest(&self) -> Result<BTreeMap<String, ManifestEntry>, RegistryError> {
        let path = self.root.join("manifest.json");
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => {
                return Err(RegistryError::Io {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                })
            }
        };
        serde_json::from_str::<Manifest>(&body)
            .map(|m| m.models)
            .map_err(|e| RegistryError::Manifest {
                path: path.display().to_string(),
                reason: e.to_string(),
            })
    }
}

/// Fetch the raw bytes behind a reference.
fn fetch(reference: &str) -> Result<Vec<u8>, RegistryError> {
    if let Some(rest) = reference.strip_prefix("file://") {
        return std::fs::read(rest).map_err(|e| RegistryError::Io {
            path: rest.to_string(),
            reason: e.to_string(),
        });
    }
    if reference.starts_with("http://") {
        return http_get(reference);
    }
    if let Some((scheme, _)) = reference.split_once("://") {
        return Err(RegistryError::Scheme {
            reference: reference.to_string(),
            reason: format!(
                "scheme `{scheme}://` is not supported (no TLS stack in this build); \
                 use http:// or file://"
            ),
        });
    }
    // No scheme: a plain local path.
    std::fs::read(reference).map_err(|e| RegistryError::Io {
        path: reference.to_string(),
        reason: e.to_string(),
    })
}

/// Minimal HTTP/1.0 GET over `std::net` (`Connection: close`, body read to
/// EOF — no chunked encoding to handle). Enough for the loopback fixture
/// server and any plain static file host.
fn http_get(url: &str) -> Result<Vec<u8>, RegistryError> {
    let err = |reason: String| RegistryError::Http {
        url: url.to_string(),
        reason,
    };
    let rest = url.strip_prefix("http://").expect("caller checked scheme");
    let (host_port, path) = match rest.split_once('/') {
        Some((hp, p)) => (hp, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    let host_port = if host_port.contains(':') {
        host_port.to_string()
    } else {
        format!("{host_port}:80")
    };
    let mut stream =
        TcpStream::connect(&host_port).map_err(|e| err(format!("connect {host_port}: {e}")))?;
    let host = host_port
        .rsplit_once(':')
        .map(|(h, _)| h)
        .unwrap_or(&host_port);
    stream
        .write_all(
            format!("GET {path} HTTP/1.0\r\nHost: {host}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| err(format!("send request: {e}")))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| err(format!("read response: {e}")))?;

    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| err("malformed response (no header terminator)".into()))?;
    let head = String::from_utf8_lossy(&response[..header_end]);
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| err(format!("malformed status line `{status_line}`")))?;
    if status != "200" {
        return Err(err(format!("status {status}")));
    }
    let body = response[header_end + 4..].to_vec();
    if let Some(len_line) = head
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))
    {
        let expected: usize = len_line[15..].trim().parse().unwrap_or(body.len());
        if body.len() != expected {
            return Err(err(format!(
                "truncated body: Content-Length {expected}, got {} bytes",
                body.len()
            )));
        }
    }
    Ok(body)
}

/// A loopback static-file HTTP server for tests and the CI registry
/// round-trip: serves files under `root` with `Content-Length`, 404 for
/// anything missing or escaping the root. Blocks the calling thread; one
/// thread per connection. Prints `fileserver on ADDR` for port discovery.
pub fn serve_dir(listener: std::net::TcpListener, root: PathBuf) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    println!("fileserver on {addr}");
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let root = root.clone();
        std::thread::Builder::new()
            .name("ramiel-fileserver-conn".into())
            .spawn(move || serve_file_conn(stream, &root))
            .expect("spawn fileserver connection thread");
    }
    Ok(())
}

fn serve_file_conn(mut stream: TcpStream, root: &Path) {
    use std::io::BufRead;
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients aren't reset mid-send.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && line.trim() != "" {
        line.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let rel = path.trim_start_matches('/');
    let safe = !rel.split('/').any(|seg| seg == "..") && !rel.is_empty();
    let body = if safe {
        std::fs::read(root.join(rel)).ok()
    } else {
        None
    };
    let response = match body {
        Some(data) => {
            let mut r = format!(
                "HTTP/1.0 200 OK\r\nContent-Length: {}\r\nContent-Type: application/octet-stream\r\n\r\n",
                data.len()
            )
            .into_bytes();
            r.extend_from_slice(&data);
            r
        }
        None => b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec(),
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}
