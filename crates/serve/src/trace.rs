//! Per-request trace ring: a bounded in-memory buffer of completed
//! request timelines, dumpable as a Chrome/Perfetto trace via the TCP
//! `trace` verb.
//!
//! Each admitted request gets a [`RequestTrace`] when it is answered:
//! its [`RequestId`] plus the four phase boundaries (enqueue → pop →
//! execute → respond) as nanosecond offsets from the server's epoch. The
//! ring keeps the most recent `capacity` entries — old traffic falls off
//! the back, so memory stays bounded no matter how long the server runs.
//!
//! The Chrome export puts every request on its own thread track (tid =
//! request id) inside one "requests" process track, with four adjacent
//! `X` spans per request. The output passes
//! [`ramiel_obs::validate_chrome_trace`], which the CLI `trace` op checks
//! client-side.

use parking_lot::Mutex;
use serde_json::json;
use std::collections::VecDeque;

/// Completed-request timeline. All timestamps are nanoseconds since the
/// server's epoch; phases are adjacent (`enqueued <= popped <= exec_start
/// <= exec_end <= responded`).
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request id minted at admission.
    pub id: u64,
    pub model: String,
    /// Live size of the batch this request executed in (0 if it never
    /// reached execution).
    pub batch: usize,
    /// `completed`, `failed`, `shed_deadline`, ...
    pub outcome: &'static str,
    pub enqueued_ns: u64,
    pub popped_ns: u64,
    pub exec_start_ns: u64,
    pub exec_end_ns: u64,
    pub responded_ns: u64,
}

/// Bounded ring of recent [`RequestTrace`]s. One short mutexed push per
/// answered request — the per-phase recording itself is lock-free (see
/// [`crate::stats::ServeStats`]); only the trace dump takes this lock for
/// longer.
pub struct TraceRing {
    capacity: usize,
    entries: Mutex<VecDeque<RequestTrace>>,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, t: RequestTrace) {
        let mut e = self.entries.lock();
        if e.len() >= self.capacity {
            e.pop_front();
        }
        e.push_back(t);
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Chrome trace JSON (`{"traceEvents": [...]}`): one process track,
    /// one thread track per request, four `X` spans per request. Passes
    /// [`ramiel_obs::validate_chrome_trace`].
    pub fn to_chrome_trace(&self) -> serde_json::Value {
        let entries = self.snapshot();
        let mut events = Vec::with_capacity(entries.len() * 4 + 2);
        if !entries.is_empty() {
            events.push(json!({
                "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                "args": { "name": "ramiel-serve requests" }
            }));
        }
        let us = |ns: u64| ns as f64 / 1_000.0;
        for t in &entries {
            let tid = t.id as u32;
            events.push(json!({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": { "name": format!("req {} ({})", t.id, t.model) }
            }));
            let spans = [
                ("queue", t.enqueued_ns, t.popped_ns),
                ("batch", t.popped_ns, t.exec_start_ns),
                ("execute", t.exec_start_ns, t.exec_end_ns),
                ("respond", t.exec_end_ns, t.responded_ns),
            ];
            for (name, start, end) in spans {
                events.push(json!({
                    "ph": "X", "name": name, "cat": "request",
                    "pid": 0, "tid": tid,
                    "ts": us(start), "dur": us(end.saturating_sub(start)),
                    "args": {
                        "id": t.id, "model": t.model,
                        "batch": t.batch, "outcome": t.outcome,
                    }
                }));
            }
        }
        json!({ "traceEvents": events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, base: u64) -> RequestTrace {
        RequestTrace {
            id,
            model: "m".into(),
            batch: 2,
            outcome: "completed",
            enqueued_ns: base,
            popped_ns: base + 1_000,
            exec_start_ns: base + 2_000,
            exec_end_ns: base + 10_000,
            responded_ns: base + 11_000,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let ring = TraceRing::new(3);
        for i in 0..10 {
            ring.push(entry(i, i * 100_000));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.iter().map(|t| t.id).collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn chrome_export_validates() {
        let ring = TraceRing::new(16);
        for i in 0..5 {
            ring.push(entry(i, i * 1_000_000));
        }
        let trace = ring.to_chrome_trace().to_string();
        let stats = ramiel_obs::validate_chrome_trace(&trace).expect("valid trace");
        assert_eq!(stats.complete_spans, 5 * 4);
    }

    #[test]
    fn empty_ring_exports_empty_valid_trace() {
        let ring = TraceRing::new(4);
        let trace = ring.to_chrome_trace().to_string();
        ramiel_obs::validate_chrome_trace(&trace).expect("empty trace is valid");
    }
}
