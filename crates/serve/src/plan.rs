//! Model registry and plan cache.
//!
//! `load()` pays every per-model cost exactly once — clustering,
//! hypercluster schedules (plus routing tables) at the batch sizes the
//! micro-batcher will actually hit, the shared initializer table, and a
//! per-plan [`ExecCtx`] whose packed-weight cache persists across requests
//! — and shares the result as an [`Arc<CompiledPlan>`]. The cache is
//! LRU-bounded ([`PlanCache::new`]) and every (re)load gets a fresh
//! monotonically increasing `version`, which is how lanes detect hot
//! reloads: a collector thread compares its pool's version against the
//! plan's and rebuilds workers when they diverge.

use crate::server::ServeError;
use parking_lot::Mutex;
use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, Clustering, StaticCost};
use ramiel_ir::Graph;
use ramiel_runtime::{PlannedBatch, StealPlan};
use ramiel_tensor::{ExecCtx, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to compile into a plan. The graph is the only required piece:
/// callers that already ran the pipeline (the CLI's `prepare()` path) pass
/// their clustering and initializer table through so nothing is recomputed;
/// otherwise `load()` clusters with the paper's static cost model.
pub struct PlanSpec {
    pub graph: Graph,
    /// `None` → LC+merge clustering under [`StaticCost`].
    pub clustering: Option<Clustering>,
    /// Use switched (Fig. 9) instead of plain (Fig. 8) hyperclustering for
    /// batch > 1 schedules.
    pub switched: bool,
    /// Batch sizes to pre-plan at load time. Batch 1 is always included;
    /// other sizes the batcher reaches are planned lazily on first use.
    pub batch_sizes: Vec<usize>,
    /// Pre-converted weights to share (e.g. from `ramiel::prepare`);
    /// `None` → converted once at load.
    pub init_values: Option<Arc<HashMap<String, Value>>>,
}

impl PlanSpec {
    pub fn new(graph: Graph) -> PlanSpec {
        PlanSpec {
            graph,
            clustering: None,
            switched: false,
            batch_sizes: Vec::new(),
            init_values: None,
        }
    }
}

/// A fully compiled, execution-ready model plan, shared by every request.
pub struct CompiledPlan {
    pub name: String,
    /// Monotonic across the owning [`PlanCache`]; bumped on every reload
    /// of the same name (hot reload).
    pub version: u64,
    pub graph: Graph,
    pub clustering: Clustering,
    pub switched: bool,
    /// Shared pre-converted weights — every fetch is a refcount bump.
    pub init_values: Arc<HashMap<String, Value>>,
    /// Per-plan execution context: its packed-weight cache warms up on the
    /// first request and is reused by every later one (clones share it).
    pub ctx: ExecCtx,
    /// Hypercluster schedules + routing tables, keyed by batch size.
    schedules: Mutex<BTreeMap<usize, Arc<PlannedBatch>>>,
    /// Work-stealing plans, keyed by batch size (built lazily — only lanes
    /// running [`crate::server::ServeExecutor::Stealing`] pay for them).
    steal_plans: Mutex<BTreeMap<usize, Arc<StealPlan>>>,
}

impl std::fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("clusters", &self.clustering.num_clusters())
            .field("switched", &self.switched)
            .finish_non_exhaustive()
    }
}

impl CompiledPlan {
    pub(crate) fn build(
        name: &str,
        version: u64,
        spec: PlanSpec,
        intra_op: usize,
    ) -> Result<CompiledPlan, ServeError> {
        let PlanSpec {
            graph,
            clustering,
            switched,
            batch_sizes,
            init_values,
        } = spec;
        let clustering = clustering.unwrap_or_else(|| cluster_graph(&graph, &StaticCost));
        let init_values = match init_values {
            Some(iv) => iv,
            None => ramiel_runtime::initializer_values(&graph).map_err(ServeError::Runtime)?,
        };
        let ctx = if intra_op > 1 {
            ExecCtx::with_intra_op(intra_op)
        } else {
            ExecCtx::sequential()
        };
        let plan = CompiledPlan {
            name: name.to_string(),
            version,
            graph,
            clustering,
            switched,
            init_values,
            ctx,
            schedules: Mutex::new(BTreeMap::new()),
            steal_plans: Mutex::new(BTreeMap::new()),
        };
        let mut sizes = batch_sizes;
        sizes.push(1);
        for b in sizes {
            plan.schedule_for(b)?;
        }
        Ok(plan)
    }

    /// The schedule (plus routing table) for `batch` samples — precompiled
    /// at load for the spec'd sizes, planned lazily (then cached) for any
    /// other size the micro-batcher manages to collect.
    pub fn schedule_for(&self, batch: usize) -> Result<Arc<PlannedBatch>, ServeError> {
        if batch == 0 {
            return Err(ServeError::Internal("batch size 0".into()));
        }
        let mut schedules = self.schedules.lock();
        if let Some(p) = schedules.get(&batch) {
            return Ok(Arc::clone(p));
        }
        let hc = if self.switched {
            switched_hypercluster(&self.clustering, batch)
        } else {
            hypercluster(&self.clustering, batch)
        };
        let planned = Arc::new(PlannedBatch::new(&self.graph, hc).map_err(ServeError::Runtime)?);
        schedules.insert(batch, Arc::clone(&planned));
        Ok(planned)
    }

    /// The work-stealing plan for `batch` samples (built on first use, then
    /// cached). Hints come from the same hyperclustering the hyper path
    /// would schedule, so locality placement matches across executors.
    pub fn steal_plan_for(&self, batch: usize) -> Result<Arc<StealPlan>, ServeError> {
        if batch == 0 {
            return Err(ServeError::Internal("batch size 0".into()));
        }
        let mut plans = self.steal_plans.lock();
        if let Some(p) = plans.get(&batch) {
            return Ok(Arc::clone(p));
        }
        let plan = if batch == 1 {
            StealPlan::new(&self.graph, &self.clustering, 1)
        } else {
            let hc = if self.switched {
                switched_hypercluster(&self.clustering, batch)
            } else {
                hypercluster(&self.clustering, batch)
            };
            StealPlan::from_hyper(&self.graph, &hc)
        }
        .map_err(ServeError::Runtime)?;
        let plan = Arc::new(plan);
        plans.insert(batch, Arc::clone(&plan));
        Ok(plan)
    }

    /// Cluster count == standing worker count for this plan's pools.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Batch sizes with a planned schedule (load-time + lazily added).
    pub fn planned_batches(&self) -> Vec<usize> {
        self.schedules.lock().keys().copied().collect()
    }
}

/// LRU-bounded registry of compiled plans, keyed by model name.
pub struct PlanCache {
    capacity: usize,
    /// Most-recently-used first.
    inner: Mutex<Vec<Arc<CompiledPlan>>>,
    next_version: AtomicU64,
}

impl PlanCache {
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Vec::new()),
            next_version: AtomicU64::new(1),
        }
    }

    /// Compile `spec` under `name` and insert it. Reloading an existing
    /// name replaces the plan (with a bumped `version`); inserting past
    /// capacity evicts the least-recently-used plans. Returns the new plan
    /// and whatever was evicted (so the server can drain those lanes).
    /// Compilation runs outside the cache lock.
    #[allow(clippy::type_complexity)]
    pub fn load(
        &self,
        name: &str,
        spec: PlanSpec,
        intra_op: usize,
    ) -> Result<(Arc<CompiledPlan>, Vec<Arc<CompiledPlan>>), ServeError> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(CompiledPlan::build(name, version, spec, intra_op)?);
        let mut inner = self.inner.lock();
        inner.retain(|p| p.name != name);
        inner.insert(0, Arc::clone(&plan));
        let mut evicted = Vec::new();
        while inner.len() > self.capacity {
            evicted.push(inner.pop().expect("len > capacity >= 1"));
        }
        Ok((plan, evicted))
    }

    /// Fetch by name, marking the plan most-recently-used.
    pub fn get(&self, name: &str) -> Option<Arc<CompiledPlan>> {
        let mut inner = self.inner.lock();
        let idx = inner.iter().position(|p| p.name == name)?;
        let plan = inner.remove(idx);
        inner.insert(0, Arc::clone(&plan));
        Some(plan)
    }

    /// Loaded model names, most-recently-used first.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().iter().map(|p| p.name.clone()).collect()
    }

    /// `(name, version)` for every loaded plan, most-recently-used first —
    /// the observable a hot-swap verifier polls for the version bump.
    pub fn versions(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|p| (p.name.clone(), p.version))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}
