use crate::plan::PlanSpec;
use crate::server::{OverflowPolicy, ServeConfig, ServeError, Server};
use ramiel_models::{build, synthetic, ModelConfig, ModelKind};
use ramiel_runtime::{run_sequential, synth_inputs};
use ramiel_tensor::ExecCtx;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

#[test]
fn infer_matches_sequential() {
    let g = synthetic::fork_join(3, 2, 2);
    let server = Server::new(small_cfg());
    server.load("fj", PlanSpec::new(g.clone())).unwrap();
    let ctx = ExecCtx::sequential();
    for seed in 0..4u64 {
        let inputs = synth_inputs(&g, seed);
        let out = server.infer("fj", inputs.clone()).unwrap();
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        assert_eq!(seq, out, "seed {seed}");
    }
    let snap = server.stats();
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.failed, 0);
}

#[test]
fn unknown_model_is_rejected_at_admission() {
    let server = Server::new(small_cfg());
    let err = server.infer("nope", Default::default()).unwrap_err();
    assert_eq!(err.code(), "SV-MODEL");
}

#[test]
fn expired_deadline_is_rejected_before_execution() {
    let g = synthetic::chain(3);
    let server = Server::new(small_cfg());
    server.load("c", PlanSpec::new(g.clone())).unwrap();
    let past = Instant::now() - Duration::from_millis(5);
    let err = server
        .submit_with_deadline("c", synth_inputs(&g, 0), Some(past))
        .unwrap_err();
    assert_eq!(err.code(), "SV-DEADLINE");
    assert_eq!(server.stats().shed_deadline, 1);
}

#[test]
fn plan_cache_evicts_lru_and_drains_its_lane() {
    let server = Server::new(ServeConfig {
        plan_capacity: 2,
        ..small_cfg()
    });
    let a = synthetic::chain(3);
    let b = synthetic::fork_join(2, 2, 1);
    let c = synthetic::chain(4);
    server.load("a", PlanSpec::new(a.clone())).unwrap();
    server.load("b", PlanSpec::new(b)).unwrap();
    server.load("c", PlanSpec::new(c)).unwrap(); // evicts "a"
    assert_eq!(server.models(), vec!["c".to_string(), "b".to_string()]);
    let err = server.infer("a", synth_inputs(&a, 0)).unwrap_err();
    assert_eq!(err.code(), "SV-MODEL");
    // Survivors still serve.
    server
        .infer("b", synth_inputs(&synthetic::fork_join(2, 2, 1), 0))
        .unwrap();
}

#[test]
fn hot_reload_bumps_version_and_keeps_serving() {
    let g = synthetic::fork_join(2, 2, 2);
    let server = Server::new(small_cfg());
    let v1 = server.load("m", PlanSpec::new(g.clone())).unwrap().version;
    let inputs = synth_inputs(&g, 7);
    let before = server.infer("m", inputs.clone()).unwrap();
    let v2 = server.load("m", PlanSpec::new(g.clone())).unwrap().version;
    assert!(v2 > v1, "reload must bump the plan version");
    let after = server.infer("m", inputs.clone()).unwrap();
    assert_eq!(
        before, after,
        "same graph + inputs ⇒ same outputs across reload"
    );
}

#[test]
fn switched_plans_serve_correctly() {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let server = Server::new(small_cfg());
    let spec = PlanSpec {
        switched: true,
        batch_sizes: vec![2, 4],
        ..PlanSpec::new(g.clone())
    };
    server.load("sq", PlanSpec { ..spec }).unwrap();
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 3);
    let out = server.infer("sq", inputs.clone()).unwrap();
    assert_eq!(run_sequential(&g, &inputs, &ctx).unwrap(), out);
}

#[test]
fn shutdown_rejects_new_work() {
    let g = synthetic::chain(3);
    let server = Server::new(small_cfg());
    server.load("c", PlanSpec::new(g.clone())).unwrap();
    server.shutdown();
    assert!(server.is_shutting_down());
    let err = server.infer("c", synth_inputs(&g, 0)).unwrap_err();
    assert_eq!(err.code(), "SV-SHUTDOWN");
    let err = server.load("d", PlanSpec::new(g)).unwrap_err();
    assert_eq!(err.code(), "SV-SHUTDOWN");
}

#[test]
fn shed_policy_reports_queue_full() {
    // Capacity-1 queue with shedding: saturate it from many threads while
    // the collector is busy; at least the queue bound must hold (no
    // unbounded growth), and any rejection must carry SV-FULL.
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let server = Arc::new(Server::new(ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        policy: OverflowPolicy::Shed,
        ..small_cfg()
    }));
    server.load("sq", PlanSpec::new(g.clone())).unwrap();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let server = Arc::clone(&server);
        let g = g.clone();
        handles.push(std::thread::spawn(move || {
            let mut shed = 0u32;
            for i in 0..4 {
                match server.infer("sq", synth_inputs(&g, t * 100 + i)) {
                    Ok(_) => {}
                    Err(ServeError::QueueFull { .. }) => shed += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            shed
        }));
    }
    let shed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let snap = server.stats();
    assert_eq!(snap.shed_queue_full, shed as u64);
    assert!(snap.peak_queue_depth <= 1, "bounded queue overflowed");
    assert_eq!(snap.completed + snap.failed, 32 - shed as u64);
}

#[test]
fn tcp_round_trip_ping_infer_stats_shutdown() {
    let g = synthetic::fork_join(2, 2, 2);
    let server = Arc::new(Server::new(small_cfg()));
    server.load("fj", PlanSpec::new(g.clone())).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = Arc::clone(&server);
    let accept = std::thread::spawn(move || crate::tcp::run_tcp(&srv, "fj", listener));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rpc = |line: &str| -> serde_json::Value {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    let pong = rpc(r#"{"id":1,"op":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(|v| v.as_bool()), Some(true));

    // Server-side synthetic inputs must agree with the reference executor.
    let resp = rpc(r#"{"id":2,"op":"infer_synth","seed":5}"#);
    assert_eq!(
        resp.get("ok").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );
    let seq = run_sequential(&g, &synth_inputs(&g, 5), &ExecCtx::sequential()).unwrap();
    let outputs = resp.get("outputs").unwrap();
    for (name, v) in &seq {
        let wire = outputs
            .get(name)
            .unwrap_or_else(|| panic!("missing output {name}"));
        let want = serde_json::Value::from_serialize(&v.to_tensor_data());
        assert_eq!(&want, wire, "output {name}");
    }

    let bad = rpc(r#"{"id":3,"op":"infer"}"#);
    assert_eq!(bad.get("ok").and_then(|v| v.as_bool()), Some(false));

    let stats = rpc(r#"{"id":4,"op":"stats"}"#);
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("completed"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );

    let bye = rpc(r#"{"id":5,"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(|v| v.as_bool()), Some(true));
    accept.join().unwrap().unwrap();
    assert!(server.is_shutting_down());
}

#[test]
fn metrics_and_trace_verbs_over_tcp() {
    let g = synthetic::fork_join(2, 2, 2);
    let server = Arc::new(Server::new(small_cfg()));
    server.load("fj", PlanSpec::new(g.clone())).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = Arc::clone(&server);
    let accept = std::thread::spawn(move || crate::tcp::run_tcp(&srv, "fj", listener));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rpc = |line: &str| -> serde_json::Value {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    for seed in 0..3 {
        let resp = rpc(&format!(
            r#"{{"id":{seed},"op":"infer_synth","seed":{seed}}}"#
        ));
        assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    }

    // `metrics`: well-formed Prometheus exposition with per-model latency
    // histograms and outcome counters.
    let resp = rpc(r#"{"id":10,"op":"metrics"}"#);
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let text = resp.get("metrics").and_then(|m| m.as_str()).unwrap();
    let samples = ramiel_obs::parse_prometheus(text);
    assert!(!samples.is_empty(), "exposition parsed to zero samples");
    let completed = samples
        .iter()
        .find(|s| {
            s.name == "ramiel_requests_total"
                && s.label("model") == Some("fj")
                && s.label("outcome") == Some("completed")
        })
        .expect("completed counter for fj");
    assert_eq!(completed.value as u64, 3);
    assert!(
        samples.iter().any(|s| s.name == "ramiel_request_latency_ns_bucket"
            && s.label("model") == Some("fj")),
        "per-model latency histogram missing"
    );
    assert!(
        samples.iter().any(|s| s.name == "ramiel_steal_workers"),
        "steal-pool telemetry missing from exposition"
    );

    // `trace`: a valid Chrome trace with four spans per answered request.
    let resp = rpc(r#"{"id":11,"op":"trace"}"#);
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let trace = resp.get("trace").unwrap();
    let stats = ramiel_obs::validate_chrome_trace(&trace.to_string()).expect("valid trace");
    assert_eq!(stats.complete_spans, 3 * 4);

    rpc(r#"{"id":12,"op":"shutdown"}"#);
    accept.join().unwrap().unwrap();
}

#[test]
fn latency_histograms_and_window_reset() {
    let g = synthetic::fork_join(2, 2, 2);
    let server = Server::new(small_cfg());
    server.load("fj", PlanSpec::new(g.clone())).unwrap();
    for seed in 0..6u64 {
        server.infer("fj", synth_inputs(&g, seed)).unwrap();
    }
    let snap = server.stats_and_reset_window();
    assert_eq!(snap.completed, 6);
    // Phase/latency histograms populated with sane orderings.
    assert!(snap.latency_max_ms > 0.0, "latency max must be positive");
    assert!(snap.latency_p50_ms <= snap.latency_p99_ms);
    assert!(snap.latency_p99_ms <= snap.latency_max_ms * 1.0001);
    assert!(snap.queue_p50_ms <= snap.queue_p99_ms);
    assert!(snap.mean_queue_ms >= 0.0);
    assert!(
        snap.window_peak_queue_depth >= 1,
        "peak window never observed"
    );
    assert_eq!(snap.peak_queue_depth, snap.window_peak_queue_depth);

    // The window was consumed: with no new traffic the next windowed
    // snapshot reports zero, while the lifetime peak persists.
    let next = server.stats_and_reset_window();
    assert_eq!(next.window_peak_queue_depth, 0);
    assert_eq!(next.peak_queue_depth, snap.peak_queue_depth);

    // The trace ring saw every answered request, newest retained.
    let ring = server.trace_ring().expect("tracing on by default");
    assert_eq!(ring.len(), 6);
    let chrome = server.trace_chrome().to_string();
    let stats = ramiel_obs::validate_chrome_trace(&chrome).expect("valid trace");
    assert_eq!(stats.complete_spans, 6 * 4);
}

#[test]
fn request_ids_are_unique_and_monotone() {
    let g = synthetic::chain(3);
    let server = Server::new(small_cfg());
    server.load("c", PlanSpec::new(g.clone())).unwrap();
    for seed in 0..5u64 {
        server.infer("c", synth_inputs(&g, seed)).unwrap();
    }
    let ring = server.trace_ring().unwrap();
    let ids: Vec<u64> = ring.snapshot().iter().map(|t| t.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 5, "request ids must be unique: {ids:?}");
}

#[test]
fn disabled_metrics_and_trace_still_serve() {
    let g = synthetic::chain(3);
    let server = Server::new(ServeConfig {
        metrics: ramiel_obs::Metrics::disabled(),
        trace_capacity: 0,
        ..small_cfg()
    });
    server.load("c", PlanSpec::new(g.clone())).unwrap();
    server.infer("c", synth_inputs(&g, 1)).unwrap();
    assert!(server.trace_ring().is_none());
    // Registry renders empty; steal-pool + server gauges still appear.
    let text = server.metrics_text();
    assert!(!text.contains("ramiel_request_latency_ns"));
    assert!(text.contains("ramiel_server_models"));
    // Chrome trace degrades to a valid empty trace.
    let chrome = server.trace_chrome().to_string();
    ramiel_obs::validate_chrome_trace(&chrome).expect("empty trace is valid");
    // Process-wide ServeStats histograms record regardless of the registry.
    assert!(server.stats().latency_max_ms > 0.0);
}
