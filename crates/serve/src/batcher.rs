//! Per-model dynamic micro-batcher.
//!
//! Each loaded model gets one *lane*: a bounded submission queue
//! (`std::sync::Mutex` + `Condvar` — the vendored `parking_lot` has no
//! condvar) drained by a dedicated collector thread. The collector blocks
//! for the first request, then coalesces follow-ups until it has
//! `max_batch` of them or `max_delay` has elapsed since the first —
//! whichever comes first — and executes the batch as ONE hypercluster job
//! on a persistent [`HyperPool`] whose workers live as long as the lane.
//! Per-sample outputs scatter back to per-request one-shot channels.
//!
//! ## State machine (per collector iteration)
//!
//! ```text
//!        ┌─────────── idle: wait(not_empty) ───────────┐
//!        ▼                                             │
//!   pop first ──▶ gather: pop until max_batch,         │
//!        │        or wait_timeout(max_delay) expires    │
//!        ▼                                             │
//!   drop dead-on-arrival (deadline passed in queue)    │
//!        ▼                                             │
//!   run batch on HyperPool ──retry (retryable, ≤N)──┐  │
//!        │                                          │  │
//!        ├── ok: scatter per-sample outputs ────────┼──┘
//!        └── still failing: per-request sequential
//!            fallback (isolates a poisoned sample) ─┘
//! ```
//!
//! Draining: shutdown flips `draining` *under the queue lock* (so
//! admission is linearized against it), wakes everything, and the
//! collector keeps executing until the queue is empty — in-flight and
//! already-queued requests complete; new ones are rejected.

use crate::plan::CompiledPlan;
use crate::server::{LaneConfig, OverflowPolicy, ServeError, ServeExecutor};
use crate::stats::ServeStats;
use crate::trace::RequestTrace;
use crossbeam::channel::Sender;
use ramiel_obs::{CounterHandle, GaugeHandle, HistHandle, PeakHandle};
use ramiel_runtime::{run_sequential_opts, Env, HyperPool, RunOptions, RuntimeError, StealPool};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued inference request.
pub(crate) struct Request {
    /// Server-unique id minted at admission; joins serve traces with
    /// steal-pool spans (the stealing run span carries the batch's ids).
    pub id: u64,
    pub inputs: Env,
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    /// When the collector popped this request off the queue (`None` until
    /// then). Queue-wait = popped − enqueued; batch-wait = exec − popped.
    pub popped: Option<Instant>,
    /// One-shot response channel (crossbeam unbounded, used once).
    pub resp: Sender<Result<Env, ServeError>>,
}

/// Per-lane handles into the server's metric registry, resolved once at
/// lane spawn (label sets are fixed: the lane's model name and executor).
/// Every handle is one branch when the registry is disabled.
pub(crate) struct LaneMetrics {
    queue_wait: HistHandle,
    batch_wait: HistHandle,
    execute: HistHandle,
    respond: HistHandle,
    latency: HistHandle,
    batch_size: HistHandle,
    batches: CounterHandle,
    completed: CounterHandle,
    failed: CounterHandle,
    shed_queue_full: CounterHandle,
    shed_deadline: CounterHandle,
    rejected_shutdown: CounterHandle,
    queue_depth: GaugeHandle,
    queue_peak: PeakHandle,
}

impl LaneMetrics {
    fn new(cfg: &LaneConfig, model: &str) -> LaneMetrics {
        let m = &cfg.metrics;
        let exec = match cfg.executor {
            ServeExecutor::Hyper => "hyper",
            ServeExecutor::Stealing => "stealing",
        };
        let phase = |p: &str| {
            m.histogram(
                "ramiel_request_phase_ns",
                "per-request phase latency, nanoseconds",
                &[("model", model), ("executor", exec), ("phase", p)],
            )
        };
        let outcome = |o: &str| {
            m.counter(
                "ramiel_requests_total",
                "requests by final outcome",
                &[("model", model), ("outcome", o)],
            )
        };
        LaneMetrics {
            queue_wait: phase("queue"),
            batch_wait: phase("batch"),
            execute: phase("execute"),
            respond: phase("respond"),
            latency: m.histogram(
                "ramiel_request_latency_ns",
                "end-to-end request latency (enqueue to response), nanoseconds",
                &[("model", model), ("executor", exec)],
            ),
            batch_size: m.histogram(
                "ramiel_batch_size",
                "achieved micro-batch sizes",
                &[("model", model)],
            ),
            batches: m.counter(
                "ramiel_batches_total",
                "micro-batches executed",
                &[("model", model)],
            ),
            completed: outcome("completed"),
            failed: outcome("failed"),
            shed_queue_full: outcome("shed_queue_full"),
            shed_deadline: outcome("shed_deadline"),
            rejected_shutdown: outcome("rejected_shutdown"),
            queue_depth: m.gauge(
                "ramiel_queue_depth",
                "submission queue depth at the last queue transition",
                &[("model", model)],
            ),
            queue_peak: m.peak_gauge(
                "ramiel_queue_peak_depth",
                "queue-depth high-water mark (per scrape window)",
                &[("model", model)],
            ),
        }
    }
}

pub(crate) struct LaneShared {
    queue: StdMutex<VecDeque<Request>>,
    /// Signalled on push; the collector waits here.
    not_empty: Condvar,
    /// Signalled on pop; blocked (backpressure-policy) submitters wait here.
    space: Condvar,
    /// Set under the queue lock by `shutdown`, read under it by admission
    /// and the collector's exit check.
    draining: AtomicBool,
    /// Swapped on hot reload; the collector rebuilds its pool when the
    /// version changes.
    plan: parking_lot::Mutex<Arc<CompiledPlan>>,
    cfg: LaneConfig,
    stats: Arc<ServeStats>,
    /// The lane's model name (stable across hot reloads — lanes are keyed
    /// by name), used for metric labels and trace entries.
    model: String,
    metrics: LaneMetrics,
}

fn lock<'a, T>(m: &'a StdMutex<T>) -> MutexGuard<'a, T> {
    // A collector panic can poison the queue mutex; the data (a request
    // queue) stays valid, so keep serving rather than cascading panics.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running lane: shared state + the collector thread's handle.
pub(crate) struct Lane {
    pub shared: Arc<LaneShared>,
    handle: Option<JoinHandle<()>>,
}

impl Lane {
    pub fn spawn(plan: Arc<CompiledPlan>, cfg: LaneConfig, stats: Arc<ServeStats>) -> Lane {
        let model = plan.name.clone();
        let metrics = LaneMetrics::new(&cfg, &model);
        let shared = Arc::new(LaneShared {
            queue: StdMutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            draining: AtomicBool::new(false),
            plan: parking_lot::Mutex::new(plan),
            cfg,
            stats,
            model,
            metrics,
        });
        let collector_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("ramiel-serve-lane".into())
            .spawn(move || collector(collector_shared))
            .expect("spawn lane collector");
        Lane {
            shared,
            handle: Some(handle),
        }
    }

    /// Drain and stop: reject new work, execute everything queued, join
    /// the collector (which drops the pool's workers). Idempotent.
    pub fn shutdown(&mut self) {
        {
            let _q = lock(&self.shared.queue);
            self.shared.draining.store(true, Ordering::SeqCst);
        }
        self.shared.not_empty.notify_all();
        self.shared.space.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Swap in a reloaded plan; picked up at the next batch boundary.
    pub fn swap_plan(&self, plan: Arc<CompiledPlan>) {
        *self.shared.plan.lock() = plan;
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl LaneShared {
    /// Admission: enforce the bounded queue per the overflow policy, then
    /// enqueue and wake the collector.
    pub fn enqueue(&self, req: Request) -> Result<(), ServeError> {
        let mut q = lock(&self.queue);
        if self.draining.load(Ordering::SeqCst) {
            self.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            self.metrics.rejected_shutdown.inc();
            return Err(ServeError::ShuttingDown);
        }
        if q.len() >= self.cfg.queue_capacity {
            match self.cfg.policy {
                OverflowPolicy::Shed => {
                    self.stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                    self.metrics.shed_queue_full.inc();
                    return Err(ServeError::QueueFull { depth: q.len() });
                }
                OverflowPolicy::Block { max_wait } => {
                    let give_up = Instant::now() + max_wait;
                    while q.len() >= self.cfg.queue_capacity
                        && !self.draining.load(Ordering::SeqCst)
                    {
                        let now = Instant::now();
                        if now >= give_up {
                            self.stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                            self.metrics.shed_queue_full.inc();
                            return Err(ServeError::QueueFull { depth: q.len() });
                        }
                        let (guard, _timeout) = self
                            .space
                            .wait_timeout(q, give_up - now)
                            .unwrap_or_else(|e| e.into_inner());
                        q = guard;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        self.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                        self.metrics.rejected_shutdown.inc();
                        return Err(ServeError::ShuttingDown);
                    }
                }
            }
        }
        q.push_back(req);
        let depth = q.len();
        drop(q);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.stats.note_depth(depth);
        self.metrics.queue_depth.set(depth as u64);
        self.metrics.queue_peak.observe(depth as u64);
        self.cfg.obs.counter("serve:queue_depth", depth as f64);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Record everything about an answered request in one place: the four
    /// phase histograms (queue-wait, batch-wait, execute, respond), the
    /// end-to-end latency, the per-model outcome counter, and — when
    /// tracing is on — one [`RequestTrace`] ring entry.
    ///
    /// `exec_start..exec_end` is the batch's execution window (equal
    /// instants for requests that never executed). Phase deltas use
    /// `saturating_duration_since`, so slightly out-of-order stamps clamp
    /// to zero instead of panicking.
    ///
    /// Call this BEFORE sending the response (mirroring the counter
    /// updates): once a caller's `wait()` returns, its request is fully
    /// visible in metrics and the trace ring.
    fn observe_done(
        &self,
        r: &Request,
        outcome: &'static str,
        batch: usize,
        exec_start: Instant,
        exec_end: Instant,
    ) {
        let responded = Instant::now();
        let popped = r.popped.unwrap_or(r.enqueued);
        let queue = popped.saturating_duration_since(r.enqueued);
        let batch_wait = exec_start.saturating_duration_since(popped);
        let execute = exec_end.saturating_duration_since(exec_start);
        let respond = responded.saturating_duration_since(exec_end);
        let latency = responded.saturating_duration_since(r.enqueued);

        self.stats.queue_wait_ns.record(queue.as_nanos() as u64);
        self.stats
            .batch_wait_ns
            .record(batch_wait.as_nanos() as u64);
        self.stats.execute_ns.record(execute.as_nanos() as u64);
        self.stats.respond_ns.record(respond.as_nanos() as u64);
        self.stats.latency_ns.record(latency.as_nanos() as u64);

        self.metrics.queue_wait.record_duration(queue);
        self.metrics.batch_wait.record_duration(batch_wait);
        self.metrics.execute.record_duration(execute);
        self.metrics.respond.record_duration(respond);
        self.metrics.latency.record_duration(latency);
        match outcome {
            "completed" => self.metrics.completed.inc(),
            "failed" => self.metrics.failed.inc(),
            "shed_deadline" => self.metrics.shed_deadline.inc(),
            _ => {}
        }

        if let Some(ring) = &self.cfg.trace {
            let ns = |i: Instant| i.saturating_duration_since(self.cfg.epoch).as_nanos() as u64;
            ring.push(RequestTrace {
                id: r.id,
                model: self.model.clone(),
                batch,
                outcome,
                enqueued_ns: ns(r.enqueued),
                popped_ns: ns(popped),
                exec_start_ns: ns(exec_start),
                exec_end_ns: ns(exec_end),
                responded_ns: ns(responded),
            });
        }
    }
}

/// The collector thread: idle-wait → gather → execute, until drained.
fn collector(sh: Arc<LaneShared>) {
    // (plan version, pool): rebuilt whenever a hot reload changes the
    // version. Kept across batches — that's the whole point.
    let mut pool: Option<(u64, HyperPool)> = None;
    loop {
        // Idle: block for the first request of the next batch.
        let first = {
            let mut q = lock(&sh.queue);
            loop {
                if let Some(mut r) = q.pop_front() {
                    r.popped = Some(Instant::now());
                    sh.metrics.queue_depth.set(q.len() as u64);
                    sh.space.notify_one();
                    break r;
                }
                if sh.draining.load(Ordering::SeqCst) {
                    return; // drained: queue empty and no new admissions
                }
                q = sh.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Gather: coalesce until max_batch or max_delay after the first.
        let batch_deadline = Instant::now() + sh.cfg.max_delay;
        let mut batch = vec![first];
        loop {
            let mut q = lock(&sh.queue);
            while batch.len() < sh.cfg.max_batch {
                match q.pop_front() {
                    Some(mut r) => {
                        r.popped = Some(Instant::now());
                        sh.metrics.queue_depth.set(q.len() as u64);
                        sh.space.notify_one();
                        batch.push(r);
                    }
                    None => break,
                }
            }
            if batch.len() >= sh.cfg.max_batch || sh.draining.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            if now >= batch_deadline {
                break;
            }
            let (guard, _timeout) = sh
                .not_empty
                .wait_timeout(q, batch_deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            drop(guard);
        }
        execute_batch(&sh, &mut pool, batch);
    }
}

fn bounded_backoff(cfg: &ramiel_runtime::SupervisorConfig, retry: u32) -> Duration {
    let mult = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
    cfg.backoff_base
        .checked_mul(mult)
        .unwrap_or(cfg.backoff_max)
        .min(cfg.backoff_max)
}

fn fail_all(
    sh: &LaneShared,
    batch: Vec<Request>,
    err: &ServeError,
    exec_start: Instant,
    exec_end: Instant,
) {
    let n = batch.len();
    for r in batch {
        sh.stats.failed.fetch_add(1, Ordering::Relaxed);
        sh.observe_done(&r, "failed", n, exec_start, exec_end);
        let _ = r.resp.send(Err(err.clone()));
    }
}

/// Execute one gathered batch: deadline-filter, (re)build the pool if the
/// plan changed, run with supervised retries, degrade to per-request
/// sequential execution if the batch stays poisoned, scatter results.
fn execute_batch(sh: &LaneShared, pool_slot: &mut Option<(u64, HyperPool)>, batch: Vec<Request>) {
    let obs = &sh.cfg.obs;
    // Dead-on-arrival filter: reject expired work *before* spending any
    // execution on it.
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for r in batch {
        if r.deadline.is_some_and(|d| d < now) {
            sh.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            // Dead-on-arrival: the execution window is empty.
            sh.observe_done(&r, "shed_deadline", 0, now, now);
            let _ = r
                .resp
                .send(Err(ServeError::DeadlineExceeded { stage: "queued" }));
        } else {
            live.push(r);
        }
    }
    if live.is_empty() {
        return;
    }

    let plan = Arc::clone(&sh.plan.lock());
    let ids: Arc<Vec<u64>> = Arc::new(live.iter().map(|r| r.id).collect());
    let run_opts = RunOptions {
        injector: sh.cfg.injector.clone(),
        recv_timeout: sh.cfg.recv_timeout,
        obs: obs.clone(),
        init_values: Some(Arc::clone(&plan.init_values)),
        reuse: true,
        steal_chaos: None,
        request_ids: Some(Arc::clone(&ids)),
        backend: sh.cfg.backend,
    };
    let stealing = sh.cfg.executor == ServeExecutor::Stealing;
    // Hot reload boundary: a version change means new graph/weights, so
    // the standing workers are rebuilt (old ones join first). The stealing
    // executor has no per-model workers — its shared pool outlives plans,
    // and a reload simply compiles a fresh StealPlan.
    if !stealing && pool_slot.as_ref().map(|(v, _)| *v) != Some(plan.version) {
        *pool_slot = None;
        match HyperPool::with_options(&plan.graph, plan.num_clusters(), &plan.ctx, &run_opts) {
            Ok(p) => *pool_slot = Some((plan.version, p)),
            Err(e) => {
                let t = Instant::now();
                fail_all(sh, live, &ServeError::Runtime(e), t, t);
                return;
            }
        }
    }

    let n = live.len();
    sh.stats.record_batch(n);
    sh.metrics.batches.inc();
    sh.metrics.batch_size.record(n as u64);
    obs.instant(
        0,
        format!("serve:batch x{n}"),
        "serve",
        serde_json::json!({
            "model": plan.name, "batch": n, "version": plan.version,
            "requests": &ids[..],
        }),
    );
    obs.counter("serve:batch_size", n as f64);

    // Resolve the batch's schedule up front so setup errors fail the whole
    // batch before any execution: a hypercluster schedule for the pool, or
    // a dependency-resolved steal plan for the shared stealing pool.
    enum BatchExec {
        Hyper(Arc<ramiel_runtime::PlannedBatch>),
        Stealing(Arc<ramiel_runtime::StealPlan>),
    }
    let exec = if stealing {
        match plan.steal_plan_for(n) {
            Ok(p) => BatchExec::Stealing(p),
            Err(e) => {
                let t = Instant::now();
                fail_all(sh, live, &e, t, t);
                return;
            }
        }
    } else {
        match plan.schedule_for(n) {
            Ok(s) => BatchExec::Hyper(s),
            Err(e) => {
                let t = Instant::now();
                fail_all(sh, live, &e, t, t);
                return;
            }
        }
    };
    let inputs: Arc<Vec<Env>> = Arc::new(live.iter().map(|r| r.inputs.clone()).collect());

    // Supervised execution on the standing pool: retry transient-shaped
    // failures with bounded backoff (both pools survive failed jobs). The
    // execution window charged to each request spans the whole retry loop
    // (backoff sleeps included) — that is the latency callers actually saw.
    let sup = &sh.cfg.supervisor;
    let mut attempt = 0u32;
    let exec_start = Instant::now();
    let result: Result<Vec<Env>, RuntimeError> = loop {
        let attempt_result = match &exec {
            BatchExec::Hyper(sched) => {
                let (_, pool) = pool_slot.as_mut().expect("hyper pool built above");
                pool.run_batch(sched, &inputs)
            }
            BatchExec::Stealing(splan) => {
                StealPool::global().run_plan(splan, &inputs, &plan.ctx, &run_opts)
            }
        };
        match attempt_result {
            Ok(outs) => break Ok(outs),
            Err(e) => {
                if !e.is_retryable() || attempt >= sup.max_retries {
                    break Err(e);
                }
                sh.stats.retries.fetch_add(1, Ordering::Relaxed);
                obs.instant(
                    0,
                    format!("serve:retry (attempt {})", attempt + 2),
                    "serve",
                    serde_json::json!({ "model": plan.name, "error": e.code() }),
                );
                std::thread::sleep(bounded_backoff(sup, attempt));
                attempt += 1;
            }
        }
    };

    let exec_end = Instant::now();

    match result {
        Ok(outs) => {
            for (r, out) in live.into_iter().zip(outs) {
                sh.stats.completed.fetch_add(1, Ordering::Relaxed);
                sh.observe_done(&r, "completed", n, exec_start, exec_end);
                let _ = r.resp.send(Ok(out));
            }
        }
        Err(batch_err) if sup.fallback => {
            // Degrade, don't die: re-run each sample alone on the reference
            // sequential executor. A poisoned sample fails alone; its
            // batch-mates still get answers.
            sh.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            obs.instant(
                0,
                "serve:fallback to per-request sequential".to_string(),
                "serve",
                serde_json::json!({ "model": plan.name, "error": batch_err.code() }),
            );
            for r in live {
                let solo_start = Instant::now();
                let res = catch_unwind(AssertUnwindSafe(|| {
                    run_sequential_opts(&plan.graph, &r.inputs, &plan.ctx, &run_opts)
                }))
                .unwrap_or_else(|payload| {
                    Err(ramiel_runtime::fault::panic_to_error(None, payload))
                });
                let solo_end = Instant::now();
                match res {
                    Ok(out) => {
                        sh.stats.completed.fetch_add(1, Ordering::Relaxed);
                        sh.observe_done(&r, "completed", 1, solo_start, solo_end);
                        let _ = r.resp.send(Ok(out));
                    }
                    Err(e) => {
                        sh.stats.failed.fetch_add(1, Ordering::Relaxed);
                        sh.observe_done(&r, "failed", 1, solo_start, solo_end);
                        let _ = r.resp.send(Err(ServeError::Runtime(e)));
                    }
                }
            }
        }
        Err(e) => {
            fail_all(sh, live, &ServeError::Runtime(e), exec_start, exec_end);
        }
    }
}
