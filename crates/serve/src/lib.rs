//! # ramiel-serve
//!
//! Multi-model serving layer over the Ramiel runtime — the piece that turns
//! the paper's hyperclustering (batch > 1 filling cross-cluster
//! communication slack) into a *throughput* feature instead of a
//! compile-time constant.
//!
//! - [`plan`] — model registry + plan cache: [`Server::load`] compiles a
//!   model once (clustering, hypercluster schedules at several batch sizes,
//!   packed-weight cache, shared initializer table) into an
//!   `Arc<CompiledPlan>` shared by every request, LRU-bounded, versioned
//!   for hot reload.
//! - [`batcher`] — per-model dynamic micro-batcher: a bounded submission
//!   queue drained by a collector thread that coalesces up to `max_batch`
//!   requests (or a `max_delay` timeout, whichever first) into one
//!   hypercluster execution on a persistent
//!   [`ramiel_runtime::HyperPool`], then scatters per-sample outputs back
//!   to per-request one-shot channels.
//! - [`server`] — the in-process [`Server`] API: admission control
//!   (bounded queues, shed-vs-backpressure policy, per-request deadlines),
//!   supervised execution (retry → per-request sequential fallback, so a
//!   poisoned batch degrades instead of killing the server), and graceful
//!   drain-on-shutdown.
//! - [`tcp`] — newline-delimited JSON over `std::net` TCP, the transport
//!   behind `ramiel serve <model.json> --port N`.
//! - [`trace`] — bounded per-request trace ring; every answered request
//!   leaves a four-phase timeline (queue → batch → execute → respond)
//!   dumpable as a Chrome trace via the TCP `trace` verb. Metrics live in
//!   [`stats`] (process-wide) and the per-model registry handed in through
//!   [`ServeConfig::metrics`], rendered by the TCP `metrics` verb.

pub mod batcher;
pub mod plan;
pub mod registry;
pub mod server;
pub mod sha256;
pub mod stats;
pub mod tcp;
pub mod trace;

#[cfg(test)]
mod tests;

pub use plan::{CompiledPlan, PlanCache, PlanSpec};
pub use registry::{ManifestEntry, Pulled, Registry, RegistryError};
pub use server::{OverflowPolicy, ServeConfig, ServeError, ServeExecutor, Server, Ticket};
pub use stats::{BatchBucket, ServeStats, StatsSnapshot};
pub use tcp::{run_tcp, run_tcp_with_registry};
pub use trace::{RequestTrace, TraceRing};
