//! The in-process serving front end: admission control, per-model lanes,
//! and graceful shutdown. The TCP transport ([`crate::tcp`]) and the CLI's
//! `ramiel serve` are thin wrappers over [`Server`].

use crate::batcher::{Lane, Request};
use crate::plan::{CompiledPlan, PlanCache, PlanSpec};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::trace::TraceRing;
use crossbeam::channel::{unbounded, Receiver};
use ramiel_obs::{Metrics, Obs};
use ramiel_runtime::{Env, FaultInjector, RuntimeError, StealPool, SupervisorConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happens when a model's submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Reject immediately (load shedding): callers get
    /// [`ServeError::QueueFull`] and can back off themselves.
    Shed,
    /// Backpressure: block the submitter up to `max_wait` for space, then
    /// shed anyway (a bounded queue must stay bounded).
    Block { max_wait: Duration },
}

/// Which executor a lane uses for gathered batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeExecutor {
    /// Standing per-model [`ramiel_runtime::HyperPool`] (one worker per
    /// cluster, channel dataflow). The default.
    #[default]
    Hyper,
    /// Shared work-stealing pool ([`ramiel_runtime::StealPool::global`]):
    /// clusters become locality hints, workers are shared across models.
    Stealing,
}

/// Serving policy knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Most requests one hypercluster execution may coalesce.
    pub max_batch: usize,
    /// Longest the collector waits after a batch's first request before
    /// executing whatever it has.
    pub max_delay: Duration,
    /// Bound on each model's submission queue.
    pub queue_capacity: usize,
    pub policy: OverflowPolicy,
    /// LRU bound on concurrently loaded plans.
    pub plan_capacity: usize,
    /// Intra-op threads for each plan's [`ramiel_tensor::ExecCtx`]
    /// (1 = sequential kernels).
    pub intra_op: usize,
    /// Retry/backoff/fallback policy for batch execution.
    pub supervisor: SupervisorConfig,
    /// Worker recv timeout; `None` uses `RAMIEL_RECV_TIMEOUT_MS` or 30s.
    pub recv_timeout: Option<Duration>,
    /// Fault injection shared by every lane (chaos tests).
    pub injector: Option<Arc<FaultInjector>>,
    /// Observability sink: batch/retry/fallback instants plus queue-depth
    /// and batch-size counters (disabled handle = one branch per event).
    pub obs: Obs,
    /// Batch executor: per-model hyper pool (default) or the shared
    /// work-stealing pool.
    pub executor: ServeExecutor,
    /// Metric registry for per-model labeled series (latency/phase
    /// histograms, outcome counters, depth gauges), rendered by the TCP
    /// `metrics` verb. Enabled by default; a disabled registry reduces
    /// every per-model recording to one branch.
    pub metrics: Metrics,
    /// Bound on the in-memory per-request trace ring (`0` disables
    /// tracing; the TCP `trace` verb then returns an empty trace).
    pub trace_capacity: usize,
    /// Kernel backend every lane runs with (scalar f32, lane-unrolled SIMD
    /// f32, or quantized i8). `None` keeps the plan context's default.
    pub backend: Option<ramiel_runtime::KernelBackend>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            policy: OverflowPolicy::Block {
                max_wait: Duration::from_secs(1),
            },
            plan_capacity: 4,
            intra_op: 1,
            supervisor: SupervisorConfig::default(),
            recv_timeout: None,
            injector: None,
            obs: Obs::disabled(),
            executor: ServeExecutor::default(),
            metrics: Metrics::enabled(),
            trace_capacity: 4096,
            backend: None,
        }
    }
}

/// The per-lane slice of [`ServeConfig`] (everything the collector and
/// admission path need).
#[derive(Clone)]
pub(crate) struct LaneConfig {
    pub max_batch: usize,
    pub max_delay: Duration,
    pub queue_capacity: usize,
    pub policy: OverflowPolicy,
    pub supervisor: SupervisorConfig,
    pub recv_timeout: Option<Duration>,
    pub injector: Option<Arc<FaultInjector>>,
    pub obs: Obs,
    pub executor: ServeExecutor,
    pub metrics: Metrics,
    pub backend: Option<ramiel_runtime::KernelBackend>,
    /// Server-wide trace ring shared by every lane (`None` = disabled).
    pub trace: Option<Arc<TraceRing>>,
    /// Timebase for trace-ring nanosecond offsets.
    pub epoch: Instant,
}

impl ServeConfig {
    pub(crate) fn lane(&self, trace: Option<Arc<TraceRing>>, epoch: Instant) -> LaneConfig {
        LaneConfig {
            max_batch: self.max_batch.max(1),
            max_delay: self.max_delay,
            queue_capacity: self.queue_capacity.max(1),
            policy: self.policy,
            supervisor: self.supervisor.clone(),
            recv_timeout: self.recv_timeout,
            injector: self.injector.clone(),
            obs: self.obs.clone(),
            executor: self.executor,
            metrics: self.metrics.clone(),
            backend: self.backend,
            trace,
            epoch,
        }
    }
}

/// Structured serving error. `code()` mirrors the runtime's RT-codes with
/// SV-codes for admission-level rejections.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No plan loaded under this name.
    UnknownModel(String),
    /// Queue at capacity (after any backpressure wait) — load was shed.
    QueueFull { depth: usize },
    /// The request's deadline passed before it reached execution.
    DeadlineExceeded { stage: &'static str },
    /// The server is draining; new work is rejected.
    ShuttingDown,
    /// Execution failed (post-retry, post-fallback).
    Runtime(RuntimeError),
    /// Serving-layer invariant violation.
    Internal(String),
}

impl ServeError {
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownModel(_) => "SV-MODEL",
            ServeError::QueueFull { .. } => "SV-FULL",
            ServeError::DeadlineExceeded { .. } => "SV-DEADLINE",
            ServeError::ShuttingDown => "SV-SHUTDOWN",
            ServeError::Runtime(e) => e.code(),
            ServeError::Internal(_) => "SV-INTERNAL",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            ServeError::QueueFull { depth } => {
                write!(f, "queue full ({depth} requests); load shed")
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded ({stage})")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Runtime(e) => write!(f, "{e}"),
            ServeError::Internal(m) => write!(f, "serving error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Handle to one in-flight request's response.
pub struct Ticket {
    rx: Receiver<Result<Env, ServeError>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Block until the response arrives. The drain-on-shutdown guarantee
    /// makes this safe: every admitted request is answered.
    pub fn wait(self) -> Result<Env, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("response channel dropped".into())))
    }

    /// [`Ticket::wait`] with a caller-side bound.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Env, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(_) => Err(ServeError::DeadlineExceeded { stage: "wait" }),
        }
    }
}

/// Multi-model inference server. Thread-safe: share it behind an `Arc` and
/// call [`submit`](Self::submit)/[`infer`](Self::infer) from any number of
/// client threads.
pub struct Server {
    cfg: ServeConfig,
    cache: PlanCache,
    lanes: parking_lot::Mutex<HashMap<String, Lane>>,
    stats: Arc<ServeStats>,
    shutting_down: AtomicBool,
    /// Bounded per-request trace ring, shared by all lanes.
    trace: Option<Arc<TraceRing>>,
    /// Timebase for trace offsets and rate windows.
    epoch: Instant,
    /// RequestId mint: ids are unique per server, starting at 1.
    next_id: AtomicU64,
}

impl Server {
    pub fn new(cfg: ServeConfig) -> Server {
        let cache = PlanCache::new(cfg.plan_capacity);
        let trace = if cfg.trace_capacity > 0 {
            Some(Arc::new(TraceRing::new(cfg.trace_capacity)))
        } else {
            None
        };
        Server {
            cfg,
            cache,
            lanes: parking_lot::Mutex::new(HashMap::new()),
            stats: Arc::new(ServeStats::default()),
            shutting_down: AtomicBool::new(false),
            trace,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
        }
    }

    /// Compile `spec` under `name` and start (or hot-reload) its lane.
    /// Reloading an existing name swaps the plan at the next batch
    /// boundary; loading past the plan-cache capacity drains and removes
    /// the least-recently-used model's lane.
    pub fn load(&self, name: &str, spec: PlanSpec) -> Result<Arc<CompiledPlan>, ServeError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (plan, evicted) = self.cache.load(name, spec, self.cfg.intra_op)?;
        // Tear down evicted lanes *outside* the map lock (drain can block).
        let mut torn_down: Vec<Lane> = Vec::new();
        {
            let mut lanes = self.lanes.lock();
            for old in &evicted {
                if let Some(lane) = lanes.remove(&old.name) {
                    torn_down.push(lane);
                }
            }
            match lanes.get(name) {
                Some(lane) => lane.swap_plan(Arc::clone(&plan)),
                None => {
                    lanes.insert(
                        name.to_string(),
                        Lane::spawn(
                            Arc::clone(&plan),
                            self.cfg.lane(self.trace.clone(), self.epoch),
                            Arc::clone(&self.stats),
                        ),
                    );
                }
            }
        }
        for mut lane in torn_down {
            lane.shutdown();
        }
        Ok(plan)
    }

    /// The compiled plan for `name`, if loaded (marks it recently used).
    pub fn plan(&self, name: &str) -> Option<Arc<CompiledPlan>> {
        self.cache.get(name)
    }

    /// Loaded model names, most-recently-used first.
    pub fn models(&self) -> Vec<String> {
        self.cache.names()
    }

    /// Plan version per loaded model — bumped by every (re)load, so a
    /// client can verify a hot swap took effect via the `stats` verb.
    pub fn model_versions(&self) -> std::collections::BTreeMap<String, u64> {
        self.cache.versions().into_iter().collect()
    }

    /// Submit one inference without a deadline.
    pub fn submit(&self, model: &str, inputs: Env) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(model, inputs, None)
    }

    /// Submit one inference. `deadline` is absolute: work that would start
    /// after it is rejected (dead-on-arrival) instead of executed.
    pub fn submit_with_deadline(
        &self,
        model: &str,
        inputs: Env,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            self.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| d < now) {
            self.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded { stage: "admission" });
        }
        // Clone the lane's shared state out so admission (which may block
        // under the backpressure policy) never holds the lane map lock.
        let shared = {
            let lanes = self.lanes.lock();
            match lanes.get(model) {
                Some(lane) => Arc::clone(&lane.shared),
                None => return Err(ServeError::UnknownModel(model.to_string())),
            }
        };
        let (tx, rx) = unbounded();
        shared.enqueue(Request {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            inputs,
            deadline,
            enqueued: now,
            popped: None,
            resp: tx,
        })?;
        Ok(Ticket { rx })
    }

    /// Submit and wait: the blocking convenience used by client threads.
    pub fn infer(&self, model: &str, inputs: Env) -> Result<Env, ServeError> {
        self.submit(model, inputs)?.wait()
    }

    /// Point-in-time serving counters (leaves the current window running).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Serving counters with interval-delta semantics: per-window gauges
    /// (the queue-depth peak) are read and reset, so periodic pollers see
    /// each window's high-water mark instead of the lifetime high. Used by
    /// the TCP `stats` op.
    pub fn stats_and_reset_window(&self) -> StatsSnapshot {
        self.stats.snapshot_and_reset_window()
    }

    /// The per-model metric registry this server records into.
    pub fn metrics(&self) -> &Metrics {
        &self.cfg.metrics
    }

    /// Prometheus text exposition of everything this process knows:
    /// per-model serve series from the registry, the shared steal-pool
    /// telemetry, and server-level gauges. Resets per-window gauges
    /// (scrape-interval delta semantics).
    pub fn metrics_text(&self) -> String {
        let mut out = self.cfg.metrics.render_prometheus(true);
        out.push_str("# HELP ramiel_server_models loaded model count\n");
        out.push_str("# TYPE ramiel_server_models gauge\n");
        out.push_str(&format!("ramiel_server_models {}\n", self.models().len()));
        out.push_str("# HELP ramiel_server_uptime_seconds seconds since server start\n");
        out.push_str("# TYPE ramiel_server_uptime_seconds counter\n");
        out.push_str(&format!(
            "ramiel_server_uptime_seconds {:.3}\n",
            self.epoch.elapsed().as_secs_f64()
        ));
        StealPool::global()
            .stats_and_reset_window()
            .render_prometheus(&mut out);
        out
    }

    /// The bounded per-request trace ring, if tracing is enabled.
    pub fn trace_ring(&self) -> Option<&Arc<TraceRing>> {
        self.trace.as_ref()
    }

    /// Chrome trace JSON of the most recent requests (empty `traceEvents`
    /// when tracing is disabled or nothing has been served yet).
    pub fn trace_chrome(&self) -> serde_json::Value {
        match &self.trace {
            Some(ring) => ring.to_chrome_trace(),
            None => serde_json::json!({ "traceEvents": [] }),
        }
    }

    /// Graceful drain: reject new submissions, execute everything already
    /// admitted, stop every lane's workers. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let drained: Vec<Lane> = {
            let mut lanes = self.lanes.lock();
            lanes.drain().map(|(_, lane)| lane).collect()
        };
        for mut lane in drained {
            lane.shutdown();
        }
    }

    /// Whether [`shutdown`](Self::shutdown) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
