//! `ramiel` — command-line front end for the pipeline.
//!
//! ```text
//! ramiel models                          list built-in models
//! ramiel report                          Table-I-style parallelism metrics
//! ramiel compile <model> [flags]         run the pipeline, emit Python code
//! ramiel run <model> [flags]             execute seq/parallel and time it
//! ramiel profile <model> [flags]         profiled run on all four executors,
//!                                        emits a Chrome/Perfetto trace plus
//!                                        cost-model accuracy + reclustering
//! ramiel check <model|all> [flags]       statically verify the schedule
//! ramiel analyze <model|all> [flags]     tensor lifetimes, static peak
//!                                        memory, happens-before channel
//!                                        lints (`--json` for machine use)
//! ramiel export <model> <path>           save a model as .rmodel.json, or
//!                                        as ONNX with --onnx / a .onnx path
//! ramiel pull <url> [--sha256 H]         fetch a model into the content-
//!                                        addressed cache (file:// or http://)
//! ramiel fileserver <dir> [--port N]     loopback static file server (CI)
//! ramiel serve <model> [flags]           dynamic-batching inference server
//!                                        (newline-delimited JSON over TCP);
//!                                        <model> may be a .onnx path or a
//!                                        URL pulled through the registry
//!                                        (--sha256 pins the digest)
//! ramiel request [flags]                 send requests to a running server
//! ramiel top [flags]                     live metrics table for a running
//!                                        server (polls the `metrics` verb)
//! ```
//!
//! `<model>` is a built-in name (`squeezenet`, `googlenet`, `inception-v3`,
//! `inception-v4`, `yolo-v5`, `bert`, `retinanet`, `nasnet`) or a path to a
//! model file — `.rmodel.json`, `.rmodel` text, or binary `.onnx` (all
//! three route through the same loader).
//!
//! Flags: `--prune` (const-prop + DCE), `--clone` (task cloning),
//! `--batch N` + `--switched` (hyperclustering), `--intra-op N` (rayon
//! intra-op threads), `--iters N`, `--out DIR`, `--tiny` (reduced model),
//! `--deny-warnings` (`check`: warnings also fail the run).
//!
//! Serving flags (`serve`): `--port N` (default 7878, 0 = ephemeral),
//! `--max-batch N` (micro-batch bound, default 8), `--max-delay-ms N`
//! (batch window, default 2), `--queue-cap N` (default 128), `--shed`
//! (reject on full queue instead of blocking). Client flags (`request`):
//! `--port N`, `--op <ping|infer_synth|stats|metrics|trace|load|shutdown>`,
//! `--seed N`, `--count N`, `--deadline-ms N`; `--op load` hot-swaps a model
//! into the running server (`--source <ref>`, optional `--sha256` pin) and
//! prints the new plan version. The `metrics` op prints the
//! server's Prometheus exposition; `trace` prints (and validates) a Chrome
//! trace of recent requests. `ramiel top` takes `--port N`,
//! `--interval-ms N` (default 1000) and `--frames N` (0 = forever).
//!
//! Chaos flags (`run` only): `--chaos-seed N` derives a deterministic
//! fault plan and executes under the supervisor, `--chaos-faults N` sets
//! how many faults the plan holds (default 3), `--max-retries N` bounds
//! supervised retries (default 2), `--fallback` re-runs sequentially once
//! retries are exhausted.
//!
//! `--executor <channel|stealing>` (`run`, `analyze`) picks the parallel
//! executor: `channel` (default) is the paper's one-thread-per-cluster
//! channel dataflow; `stealing` runs the graph on the persistent
//! work-stealing pool with clusters demoted to locality hints. Chaos flags
//! compose with it. Under `analyze`, `--executor stealing` analyzes the
//! dynamic schedule's estimate-only view (sound first-ready memory bound,
//! no channel lints — the executor has no channels to lint).
//!
//! `--backend <scalar|simd|quant-i8>` (`run`, `serve`, `analyze`) picks the
//! kernel backend: `scalar` (default) plain f32 loops, `simd` lane-unrolled
//! f32x8 microkernels (bit-identical to scalar), `quant-i8` per-tensor
//! symmetric int8 with dequantized f32 outputs (within tolerance of f32,
//! not bit-identical). Under `analyze`, `--backend quant-i8` additionally
//! reports the resident bytes of the per-plan quantized weight cache.
//!
//! `ramiel check` runs the pipeline, then statically verifies the resulting
//! `(graph, schedule)` pair with `ramiel-verify`: partition coverage, cycle
//! analysis, in-order soundness, channel deadlock-freedom, shape honesty,
//! plus advisory lints. Exit code is non-zero on any error (and on warnings
//! under `--deny-warnings`); advice never fails the run. `check all` sweeps
//! every built-in model through batch-1, plain batch-4 and switched batch-4
//! pipelines.

use ramiel::diag::Gate;
use ramiel::{compile, CompiledModel, HyperMode, PipelineOptions, PreparedModel, Scheduler};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_parallel, run_parallel_opts, run_sequential, run_sequential_opts, synth_inputs,
};
use ramiel_tensor::{ExecCtx, KernelBackend};
use std::process::ExitCode;
use std::time::Instant;

fn parse_model(name: &str, cfg: &ModelConfig) -> Result<ramiel_ir::Graph, String> {
    let kind = match name.to_ascii_lowercase().as_str() {
        "squeezenet" => Some(ModelKind::Squeezenet),
        "googlenet" => Some(ModelKind::Googlenet),
        "inception-v3" | "inceptionv3" => Some(ModelKind::InceptionV3),
        "inception-v4" | "inceptionv4" => Some(ModelKind::InceptionV4),
        "yolo-v5" | "yolo" | "yolov5" => Some(ModelKind::YoloV5),
        "bert" => Some(ModelKind::Bert),
        "retinanet" => Some(ModelKind::Retinanet),
        "nasnet" => Some(ModelKind::NasNet),
        _ => None,
    };
    match kind {
        Some(k) => Ok(build(k, cfg)),
        // Unified loader: JSON / text `.rmodel` and binary `.onnx` all route
        // through `ramiel_onnx::load_model`, so every verb accepts any of
        // the three encodings.
        None => ramiel_onnx::load_model(name)
            .map_err(|e| format!("`{name}` is not a built-in model or loadable file: {e}")),
    }
}

struct Flags {
    prune: bool,
    clone: bool,
    batch: usize,
    switched: bool,
    intra_op: usize,
    iters: usize,
    out: Option<String>,
    tiny: bool,
    mode: String,
    scheduler: Scheduler,
    deny_warnings: bool,
    chaos_seed: Option<u64>,
    chaos_faults: usize,
    max_retries: u32,
    fallback: bool,
    port: u16,
    max_batch: usize,
    max_delay_ms: u64,
    queue_cap: usize,
    shed: bool,
    op: String,
    seed: u64,
    count: usize,
    deadline_ms: Option<u64>,
    json: bool,
    stealing: bool,
    interval_ms: u64,
    frames: usize,
    backend: Option<KernelBackend>,
    sha256: Option<String>,
    cache: Option<String>,
    onnx: bool,
    source: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        prune: false,
        clone: false,
        batch: 1,
        switched: false,
        intra_op: 1,
        iters: 3,
        out: None,
        tiny: false,
        mode: "both".into(),
        scheduler: Scheduler::LcMerge,
        deny_warnings: false,
        chaos_seed: None,
        chaos_faults: 3,
        max_retries: 2,
        fallback: false,
        port: 7878,
        max_batch: 8,
        max_delay_ms: 2,
        queue_cap: 128,
        shed: false,
        op: "infer_synth".into(),
        seed: 0,
        count: 1,
        deadline_ms: None,
        json: false,
        stealing: false,
        interval_ms: 1000,
        frames: 0,
        backend: None,
        sha256: None,
        cache: None,
        onnx: false,
        source: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--prune" => f.prune = true,
            "--onnx" => f.onnx = true,
            "--sha256" => f.sha256 = Some(value("--sha256")?),
            "--cache" => f.cache = Some(value("--cache")?),
            "--source" => f.source = Some(value("--source")?),
            "--deny-warnings" => f.deny_warnings = true,
            "--json" => f.json = true,
            "--clone" => f.clone = true,
            "--switched" => f.switched = true,
            "--tiny" => f.tiny = true,
            "--batch" => {
                f.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--intra-op" => {
                f.intra_op = value("--intra-op")?
                    .parse()
                    .map_err(|e| format!("--intra-op: {e}"))?
            }
            "--iters" => {
                f.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--fallback" => f.fallback = true,
            "--chaos-seed" => {
                f.chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                )
            }
            "--chaos-faults" => {
                f.chaos_faults = value("--chaos-faults")?
                    .parse()
                    .map_err(|e| format!("--chaos-faults: {e}"))?
            }
            "--max-retries" => {
                f.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--out" => f.out = Some(value("--out")?),
            "--mode" => f.mode = value("--mode")?,
            "--shed" => f.shed = true,
            "--port" => {
                f.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--max-batch" => {
                f.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-delay-ms" => {
                f.max_delay_ms = value("--max-delay-ms")?
                    .parse()
                    .map_err(|e| format!("--max-delay-ms: {e}"))?
            }
            "--queue-cap" => {
                f.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--op" => f.op = value("--op")?,
            "--interval-ms" => {
                f.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--frames" => {
                f.frames = value("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?
            }
            "--seed" => {
                f.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--count" => {
                f.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?
            }
            "--deadline-ms" => {
                f.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--executor" => {
                f.stealing = match value("--executor")?.as_str() {
                    "channel" | "parallel" => false,
                    "stealing" => true,
                    other => return Err(format!("unknown executor `{other}` (channel|stealing)")),
                }
            }
            "--backend" => {
                let v = value("--backend")?;
                f.backend = Some(
                    KernelBackend::parse(&v)
                        .ok_or_else(|| format!("unknown backend `{v}` (scalar|simd|quant-i8)"))?,
                )
            }
            "--scheduler" => {
                f.scheduler = match value("--scheduler")?.as_str() {
                    "lc" => Scheduler::LcMerge,
                    "dsc" => Scheduler::Dsc,
                    other => return Err(format!("unknown scheduler `{other}` (lc|dsc)")),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(f)
}

fn options(f: &Flags) -> PipelineOptions {
    PipelineOptions {
        prune: f.prune,
        cloning: f.clone.then(ramiel_passes::CloneConfig::default),
        batch: f.batch,
        hyper: if f.batch > 1 {
            if f.switched {
                HyperMode::Switched
            } else {
                HyperMode::Plain
            }
        } else {
            HyperMode::Off
        },
        scheduler: f.scheduler,
        ..Default::default()
    }
}

fn cmd_models(detail: bool) {
    for k in ModelKind::all() {
        let g = build(k, &ModelConfig::full());
        println!(
            "{:14} {:5} nodes {:5} edges {:8} params",
            k.name(),
            g.num_nodes(),
            g.num_edges(),
            g.num_parameters()
        );
        if detail {
            for (op, count) in ramiel_models::op_histogram(&g) {
                println!("    {op:<22} {count:4}");
            }
        }
    }
}

fn cmd_report() {
    println!(
        "{:<14} {:>7} {:>13} {:>8} {:>12}",
        "Model", "#Nodes", "Wt.NodeCost", "Wt.CP", "Parallelism"
    );
    for k in ModelKind::all() {
        let g = build(k, &ModelConfig::full());
        let r = ramiel_cluster::parallelism_report(&g, &ramiel_cluster::StaticCost);
        println!(
            "{:<14} {:>7} {:>13} {:>8} {:>11.2}x",
            r.model, r.num_nodes, r.total_node_cost, r.critical_path_cost, r.parallelism
        );
    }
}

fn summarize(c: &CompiledModel) {
    println!("model:                 {}", c.report.model);
    println!(
        "nodes:                 {} → prune {} → clone {}",
        c.report.nodes_before, c.report.nodes_after_prune, c.report.nodes_after_cloning
    );
    println!(
        "clusters:              {} → merged {}",
        c.report.clusters_before_merge, c.report.clusters_after_merge
    );
    println!("cross-cluster edges:   {}", c.report.cross_cluster_edges);
    println!(
        "potential parallelism: {:.2}x",
        c.report.parallelism.parallelism
    );
    println!("compile time:          {:.2?}", c.compile_time);
}

fn cmd_compile(model: &str, f: &Flags) -> Result<(), String> {
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let g = parse_model(model, &cfg)?;
    let c = compile(g, &options(f)).map_err(|e| e.to_string())?;
    summarize(&c);
    if let Some(dir) = &f.out {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let base = std::path::Path::new(dir);
        std::fs::write(base.join("parallel.py"), &c.parallel_code).map_err(|e| e.to_string())?;
        std::fs::write(base.join("sequential.py"), &c.sequential_code)
            .map_err(|e| e.to_string())?;
        if let Some(hyper_code) = &c.hyper_code {
            std::fs::write(base.join("hyper.py"), hyper_code).map_err(|e| e.to_string())?;
        }
        let assignment: std::collections::HashMap<usize, usize> = c.clustering.assignment();
        std::fs::write(
            base.join("clusters.dot"),
            ramiel_ir::dot::to_dot(&c.graph, Some(&assignment)),
        )
        .map_err(|e| e.to_string())?;
        std::fs::write(
            base.join("report.json"),
            serde_json::to_string_pretty(&c.report).map_err(|e| e.to_string())?,
        )
        .map_err(|e| e.to_string())?;
        println!("wrote parallel.py, sequential.py, clusters.dot, report.json to {dir}");
    }
    Ok(())
}

fn cmd_run(model: &str, f: &Flags) -> Result<(), String> {
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let g = parse_model(model, &cfg)?;
    // prepare() = compile + one shared initializer-table conversion; every
    // executor below reuses that table through RunOptions.
    let prepared = ramiel::prepare(g, &options(f)).map_err(|e| e.to_string())?;
    let c = &prepared.compiled;
    summarize(c);
    let inputs = synth_inputs(&c.graph, 42);
    let ctx = ExecCtx::with_intra_op(f.intra_op);

    if let Some(seed) = f.chaos_seed {
        return cmd_run_chaos(&prepared, &inputs, &ctx, seed, f);
    }
    let mut run_opts = prepared.run_options();
    if let Some(b) = f.backend {
        run_opts = run_opts.backend(b);
        println!("kernel backend: {b}");
    }

    let time_it = |label: &str, body: &dyn Fn() -> Result<(), String>| -> Result<(), String> {
        body()?; // warm-up
        let start = Instant::now();
        for _ in 0..f.iters {
            body()?;
        }
        println!(
            "{label}: {:.2} ms/iter over {} iters",
            start.elapsed().as_secs_f64() * 1e3 / f.iters as f64,
            f.iters
        );
        Ok(())
    };

    if f.mode == "seq" || f.mode == "both" {
        time_it("sequential", &|| {
            run_sequential_opts(&c.graph, &inputs, &ctx, &run_opts)
                .map(|_| ())
                .map_err(|e| e.to_string())
        })?;
    }
    if f.mode == "par" || f.mode == "both" {
        if f.stealing {
            // Plan once (it is reusable and what a serving deployment would
            // cache); time only the pool executions.
            let plan = std::sync::Arc::new(
                ramiel_runtime::StealPlan::new(&c.graph, &c.clustering, 1)
                    .map_err(|e| e.to_string())?,
            );
            let pool = ramiel_runtime::StealPool::global();
            let one = vec![inputs.clone()];
            time_it("stealing  ", &|| {
                pool.run_plan(&plan, &one, &ctx, &run_opts)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            })?;
            println!("{}", pool.stats().text_summary());
        } else {
            time_it("parallel  ", &|| {
                run_parallel_opts(&c.graph, &c.clustering, &inputs, &ctx, &run_opts)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            })?;
        }
    }
    Ok(())
}

/// `ramiel run --chaos-seed N`: execute one supervised parallel inference
/// under a deterministic fault plan and report what the supervisor did.
fn cmd_run_chaos(
    prepared: &PreparedModel,
    inputs: &ramiel_runtime::Env,
    ctx: &ExecCtx,
    seed: u64,
    f: &Flags,
) -> Result<(), String> {
    use ramiel_runtime::{
        run_stealing_supervised_opts, run_supervised_opts, FaultInjector, FaultPlan,
        SupervisorConfig,
    };
    let c = &prepared.compiled;
    let plan = FaultPlan::random(seed, c.graph.num_nodes(), 1, f.chaos_faults);
    println!("chaos plan (seed {seed}):");
    for fault in &plan.faults {
        println!(
            "    node {:4} exec {:2}: {}",
            fault.node, fault.exec_index, fault.kind
        );
    }
    let mut opts = prepared.run_options();
    opts.backend = f.backend;
    opts.injector = Some(FaultInjector::new(plan));
    let cfg = SupervisorConfig {
        max_retries: f.max_retries,
        fallback: f.fallback,
        ..Default::default()
    };
    let start = Instant::now();
    let (res, report) = if f.stealing {
        run_stealing_supervised_opts(&c.graph, &c.clustering, inputs, ctx, &opts, &cfg)
    } else {
        run_supervised_opts(&c.graph, &c.clustering, inputs, ctx, &opts, &cfg)
    };
    let elapsed = start.elapsed();
    println!("attempts:              {}", report.attempts);
    println!("fell back:             {}", report.fell_back);
    println!("faults fired:          {}", report.faults_fired.len());
    for e in &report.errors {
        println!("    [{}] {e}", e.code());
    }
    match res {
        Ok(out) => {
            // Baseline with the same backend (and no injector): QuantI8
            // output legitimately differs from scalar f32, so comparing
            // across backends would be a false divergence.
            let mut base_opts = prepared.run_options();
            base_opts.backend = f.backend;
            let baseline = run_sequential_opts(&c.graph, inputs, ctx, &base_opts)
                .map_err(|e| e.to_string())?;
            if baseline == out {
                println!("outcome:               ok in {elapsed:.2?} (matches sequential)");
                Ok(())
            } else {
                Err("supervised run diverged from the sequential baseline".into())
            }
        }
        Err(e) => Err(format!("[{}] {e}", e.code())),
    }
}

/// `ramiel profile <model>`: compile with stage tracing, run the model on
/// all four executors with profiling on, merge everything onto one
/// Chrome/Perfetto trace, and print a cost-model prediction-accuracy table
/// plus a profile-guided reclustering comparison.
fn cmd_profile(model: &str, f: &Flags) -> Result<(), String> {
    use ramiel::obs::{validate_chrome_trace, Obs};
    use ramiel_cluster::{distance_to_end, linear_clustering, merge_clusters_fixpoint};
    use ramiel_runtime::{
        predict_report, run_hyper_profiled_opts, run_parallel_profiled_opts,
        run_sequential_profiled, simulate_clustering, ClusterPool, SimConfig,
    };

    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let g = parse_model(model, &cfg)?;

    // One shared timeline; pids keep the stories apart in the trace UI.
    let obs = Obs::enabled();
    obs.with_pid(0).name_process("diagnostics");
    obs.with_pid(1).name_process("compile pipeline");
    obs.with_pid(2).name_process("sequential executor");
    obs.with_pid(3).name_process("parallel executor");
    obs.with_pid(4).name_process("hypercluster executor");
    obs.with_pid(5).name_process("cluster pool");

    // prepare_with_obs() converts the initializer table once; each profiled
    // executor run shares it through its RunOptions.
    let prepared =
        ramiel::prepare_with_obs(g, &options(f), &obs.with_pid(1)).map_err(|e| e.to_string())?;
    let c = &prepared.compiled;
    summarize(c);
    println!();

    let ctx = ExecCtx::with_intra_op(f.intra_op);
    let inputs = synth_inputs(&c.graph, 42);
    // All four executors profile under the same backend, so the divergence
    // checks compare like for like (i8 is deterministic across executors).
    let with_backend = |o: ramiel_runtime::RunOptions| match f.backend {
        Some(b) => o.backend(b),
        None => o,
    };

    let seq_opts = with_backend(prepared.run_options().obs(obs.with_pid(2)));
    let (seq_out, seq_db) = run_sequential_profiled(&c.graph, &inputs, &ctx, &seq_opts)
        .map_err(|e| format!("sequential: {e}"))?;
    seq_db.export_to_obs(&obs.with_pid(2), &c.graph);

    let par_opts = with_backend(prepared.run_options().obs(obs.with_pid(3)));
    let (par_out, par_db) =
        run_parallel_profiled_opts(&c.graph, &c.clustering, &inputs, &ctx, &par_opts)
            .map_err(|e| format!("parallel: {e}"))?;
    par_db.export_to_obs(&obs.with_pid(3), &c.graph);
    if par_out != seq_out {
        return Err("parallel output diverged from sequential".into());
    }

    let hc = match &c.hyper {
        Some(hc) => hc.clone(),
        None => ramiel_cluster::hypercluster(&c.clustering, 1),
    };
    let batch_inputs: Vec<_> = (0..hc.batch)
        .map(|b| synth_inputs(&c.graph, 42 + b as u64))
        .collect();
    let hyper_opts = with_backend(prepared.run_options().obs(obs.with_pid(4)));
    let (_, hyper_db) = run_hyper_profiled_opts(&c.graph, &hc, &batch_inputs, &ctx, &hyper_opts)
        .map_err(|e| format!("hyper: {e}"))?;
    hyper_db.export_to_obs(&obs.with_pid(4), &c.graph);

    let pool_opts = with_backend(prepared.run_options().obs(obs.with_pid(5)));
    let mut pool = ClusterPool::with_options(&c.graph, &c.clustering, &ctx, &pool_opts)
        .map_err(|e| format!("pool: {e}"))?;
    let (pool_out, pool_db) = pool
        .run_profiled(&inputs)
        .map_err(|e| format!("pool: {e}"))?;
    pool_db.export_to_obs(&obs.with_pid(5), &c.graph);
    if pool_out != seq_out {
        return Err("pool output diverged from sequential".into());
    }
    drop(pool);

    // Prediction accuracy: the cost model that drove clustering vs what the
    // parallel run actually measured.
    let cost = options(f).cost.model();
    print!(
        "{}",
        predict_report(&c.graph, cost.as_ref(), &par_db).render()
    );
    println!();

    // Profile-guided feedback: replay the measured per-node times into LC
    // and compare both clusterings under the measured cost model.
    let measured = par_db.measured_cost(&c.graph);
    let dist = distance_to_end(&c.graph, &measured);
    let reclustered = merge_clusters_fixpoint(&linear_clustering(&c.graph, &dist), &dist);
    let sim_cfg = SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    };
    let base = simulate_clustering(&c.graph, &c.clustering, &measured, &sim_cfg)
        .map_err(|e| e.to_string())?;
    let tuned = simulate_clustering(&c.graph, &reclustered, &measured, &sim_cfg)
        .map_err(|e| e.to_string())?;
    println!(
        "profile-guided reclustering ({} of {} nodes sampled, {} ns/unit, {} backend):",
        measured.sampled_nodes(),
        c.graph.num_nodes(),
        measured.ns_per_unit(),
        measured.backend().unwrap_or("unknown")
    );
    println!(
        "  original clustering:   {:3} clusters, makespan {:>8} measured units",
        c.clustering.num_clusters(),
        base.makespan
    );
    println!(
        "  measured reclustering: {:3} clusters, makespan {:>8} measured units",
        reclustered.num_clusters(),
        tuned.makespan
    );

    // Export, validating before we claim success (the CI smoke gate).
    let trace = obs.to_chrome_trace();
    let stats = validate_chrome_trace(&trace).map_err(|e| format!("malformed trace: {e}"))?;
    let path = match &f.out {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            format!("{dir}/{model}-trace.json")
        }
        None => format!("{model}-trace.json"),
    };
    std::fs::write(&path, &trace).map_err(|e| e.to_string())?;
    println!();
    print!("{}", obs.text_report());
    println!(
        "trace: {} events ({} spans, {} instants, {} counters) -> {path}",
        stats.total_events, stats.complete_spans, stats.instants, stats.counters
    );
    println!("open it at https://ui.perfetto.dev (Open trace file) or chrome://tracing");
    Ok(())
}

fn cmd_simulate(model: &str, f: &Flags) -> Result<(), String> {
    use ramiel_runtime::{simulate_clustering, simulate_hyper, simulate_sequential, SimConfig};
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let g = parse_model(model, &cfg)?;
    let c = compile(g, &options(f)).map_err(|e| e.to_string())?;
    summarize(&c);
    let sim_cfg = SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    };
    let cost = ramiel_cluster::StaticCost;
    let seq = simulate_sequential(&c.graph, &cost, f.batch.max(1));
    let sim = match &c.hyper {
        Some(hc) => simulate_hyper(&c.graph, hc, &cost, &sim_cfg),
        None => simulate_clustering(&c.graph, &c.clustering, &cost, &sim_cfg),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "simulated sequential:  {seq} units (batch {})",
        f.batch.max(1)
    );
    println!("simulated parallel:    {} units", sim.makespan);
    println!(
        "simulated speedup:     {:.2}x",
        seq as f64 / sim.makespan as f64
    );
    println!("per-worker busy:       {:?}", sim.busy);
    println!(
        "slack fraction:        {:.0}%",
        100.0 * sim.slack_fraction()
    );
    Ok(())
}

/// Differential fuzzing: random layered DAGs through the full pipeline,
/// comparing parallel execution of the optimized graph against plain
/// sequential execution of the original.
fn cmd_fuzz(f: &Flags) -> Result<(), String> {
    use ramiel_models::synthetic;
    let graphs = f.iters.max(1) * 10;
    let mut max_nodes = 0usize;
    for seed in 0..graphs as u64 {
        let layers = 2 + (seed % 7) as usize;
        let width = 1 + (seed % 5) as usize;
        let g = synthetic::layered_random(seed * 7919 + 17, layers, width, 2);
        max_nodes = max_nodes.max(g.num_nodes());
        let inputs = synth_inputs(&g, seed);
        let ctx = ExecCtx::sequential();
        let baseline = run_sequential(&g, &inputs, &ctx)
            .map_err(|e| format!("seed {seed}: sequential: {e}"))?;
        let c = compile(g, &PipelineOptions::all_optimizations())
            .map_err(|e| format!("seed {seed}: compile: {e}"))?;
        c.clustering
            .check_partition(&c.graph)
            .map_err(|e| format!("seed {seed}: partition: {e}"))?;
        let par = run_parallel(&c.graph, &c.clustering, &inputs, &ctx)
            .map_err(|e| format!("seed {seed}: parallel: {e}"))?;
        for (k, a) in &baseline {
            let b = par
                .get(k)
                .ok_or_else(|| format!("seed {seed}: output `{k}` missing"))?;
            if a != b {
                return Err(format!("seed {seed}: output `{k}` diverged"));
            }
        }
    }
    println!(
        "fuzzed {graphs} random graphs (largest {max_nodes} nodes): all differential checks passed"
    );
    Ok(())
}

/// Compile one pipeline and return its graph + schedule view.
fn compile_view(
    g: ramiel_ir::Graph,
    opts: &PipelineOptions,
) -> Result<(CompiledModel, ramiel::verify::ScheduleView), String> {
    let c = compile(g, opts).map_err(|e| e.to_string())?;
    let view = match &c.hyper {
        Some(hc) => ramiel_cluster::hyper_view(hc),
        None => ramiel_cluster::clustering_view(&c.clustering),
    };
    Ok((c, view))
}

/// Verify one compiled pipeline and print its verdict.
fn check_one(
    label: &str,
    g: ramiel_ir::Graph,
    opts: &PipelineOptions,
    deny: bool,
) -> Result<Gate, String> {
    let (c, view) = compile_view(g, opts)?;
    let report = ramiel::verify::verify(&c.graph, Some(&view));
    Ok(ramiel::diag::print_report("check", label, &report, deny))
}

/// The `check all` / `analyze all` pipeline sweep: default options at
/// batch 1 plus both hypercluster variants at batch 4.
fn sweep_configs() -> [(&'static str, PipelineOptions); 3] {
    [
        ("batch=1", PipelineOptions::default()),
        (
            "batch=4 hyper",
            PipelineOptions {
                batch: 4,
                hyper: HyperMode::Plain,
                ..Default::default()
            },
        ),
        (
            "batch=4 switched",
            PipelineOptions {
                batch: 4,
                hyper: HyperMode::Switched,
                ..Default::default()
            },
        ),
    ]
}

fn cmd_check(model: &str, f: &Flags) -> Result<Gate, String> {
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let mut gate = Gate::Clean;
    if model == "all" {
        for k in ModelKind::all() {
            for (tag, opts) in &sweep_configs() {
                let label = format!("{} [{tag}]", k.name());
                gate = gate.worst(check_one(&label, build(k, &cfg), opts, f.deny_warnings)?);
            }
        }
    } else {
        let g = parse_model(model, &cfg)?;
        let label = format!("{model} [batch={}]", f.batch);
        gate = check_one(&label, g, &options(f), f.deny_warnings)?;
    }
    if gate.failed() {
        eprintln!("check found problems (see diagnostics above)");
    }
    Ok(gate)
}

#[derive(serde::Serialize)]
struct DiagJson {
    code: String,
    severity: String,
    span: String,
    message: String,
}

#[derive(serde::Serialize)]
struct AnalyzeJson {
    model: String,
    memory: ramiel::analyze::MemoryEstimate,
    intervals: usize,
    alias_classes: usize,
    diagnostics: Vec<DiagJson>,
}

/// Analyze one compiled pipeline: per-cluster memory table plus lints.
fn analyze_one(
    label: &str,
    g: ramiel_ir::Graph,
    opts: &PipelineOptions,
    f: &Flags,
) -> Result<Gate, String> {
    let (c, view) = compile_view(g, opts)?;
    // The stealing executor has no static schedule: analyze its
    // estimate-only view (single first-ready worker — sound memory bound,
    // nothing for the channel lints to inspect) instead of pretending the
    // clustering's channel structure exists at runtime.
    let view = if f.stealing {
        ramiel_cluster::stealing_view(&c.graph, f.batch.max(1))
    } else {
        view
    };
    let a = ramiel::analyze::analyze(&c.graph, &view);
    if f.json {
        let json = AnalyzeJson {
            model: label.to_string(),
            memory: a.memory.clone(),
            intervals: a.lifetimes.intervals.len(),
            alias_classes: a.lifetimes.alias_classes,
            diagnostics: a
                .report
                .diagnostics
                .iter()
                .map(|d| DiagJson {
                    code: d.code.to_string(),
                    severity: d.severity.to_string(),
                    span: d.span.to_string(),
                    message: d.message.clone(),
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&json).map_err(|e| e.to_string())?
        );
        return Ok(Gate::of(&a.report, f.deny_warnings));
    }
    let gate = ramiel::diag::print_report("analyze", label, &a.report, f.deny_warnings);
    let m = &a.memory;
    println!(
        "    peak memory: {} bytes over {} workers ({}); {} intervals, {} alias classes",
        m.peak_bytes,
        m.per_worker.len(),
        if m.exact {
            "exact in-order replay"
        } else {
            "first-ready sum bound"
        },
        a.lifetimes.intervals.len(),
        a.lifetimes.alias_classes,
    );
    for wm in &m.per_worker {
        println!(
            "      worker {:>3}  peak {:>12} B  resident {:>12} B  {:>5} ops",
            wm.worker, wm.peak_bytes, wm.resident_bytes, wm.ops
        );
    }
    if let Some(b) = f.backend {
        println!("    kernel backend: {b}");
        if b == KernelBackend::QuantI8 {
            // The i8 backend caches a quantized copy of every constant
            // Gemm/MatMul/Conv weight per plan (1 byte per element),
            // resident on top of the f32 weights above.
            let mut bytes = 0usize;
            let mut count = 0usize;
            for node in &c.graph.nodes {
                if matches!(
                    node.op,
                    ramiel_ir::OpKind::Conv { .. }
                        | ramiel_ir::OpKind::Gemm { .. }
                        | ramiel_ir::OpKind::MatMul
                ) {
                    if let Some(t) = node.inputs.get(1).and_then(|w| c.graph.initializers.get(w)) {
                        bytes += t.numel();
                        count += 1;
                    }
                }
            }
            println!("    quant-i8 weight cache: {bytes} bytes across {count} constant weights");
        }
    }
    Ok(gate)
}

fn cmd_analyze(model: &str, f: &Flags) -> Result<Gate, String> {
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let mut gate = Gate::Clean;
    if model == "all" {
        for k in ModelKind::all() {
            let label = format!("{} [batch={}]", k.name(), f.batch);
            gate = gate.worst(analyze_one(&label, build(k, &cfg), &options(f), f)?);
        }
    } else {
        let g = parse_model(model, &cfg)?;
        let label = format!("{model} [batch={}]", f.batch);
        gate = analyze_one(&label, g, &options(f), f)?;
    }
    if gate.failed() && !f.json {
        eprintln!("analyze found problems (see diagnostics above)");
    }
    Ok(gate)
}

/// `ramiel serve <model> --port N`: compile once, then serve inference over
/// newline-delimited JSON TCP with dynamic micro-batching into hypercluster
/// executions. Runs until a client sends `{"op":"shutdown"}` (graceful
/// drain: queued requests finish first).
fn cmd_serve(model: &str, f: &Flags) -> Result<(), String> {
    use ramiel_serve::{run_tcp_with_registry, OverflowPolicy, PlanSpec, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::Duration;

    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let registry = Arc::new(registry_from_flags(f));
    // A URL model reference (or a checksum-pinned local one) goes through
    // the registry so the bytes are content-addressed and the pin verified;
    // anything else takes the plain built-in/file path.
    let g = if model.contains("://") || f.sha256.is_some() {
        let pulled = registry
            .pull(model, f.sha256.as_deref())
            .map_err(|e| format!("[{}] {e}", e.code()))?;
        println!("pulled {} (sha256 {})", pulled.source, pulled.sha256);
        ramiel_onnx::load_model(&pulled.path).map_err(|e| e.to_string())?
    } else {
        parse_model(model, &cfg)?
    };
    let prepared = ramiel::prepare(g, &options(f)).map_err(|e| e.to_string())?;
    summarize(&prepared.compiled);

    let serve_cfg = ServeConfig {
        max_batch: f.max_batch,
        max_delay: Duration::from_millis(f.max_delay_ms),
        queue_capacity: f.queue_cap,
        policy: if f.shed {
            OverflowPolicy::Shed
        } else {
            OverflowPolicy::Block {
                max_wait: Duration::from_secs(1),
            }
        },
        intra_op: f.intra_op,
        supervisor: ramiel_runtime::SupervisorConfig {
            max_retries: f.max_retries,
            fallback: true,
            ..Default::default()
        },
        executor: if f.stealing {
            ramiel_serve::ServeExecutor::Stealing
        } else {
            ramiel_serve::ServeExecutor::Hyper
        },
        backend: f.backend,
        ..Default::default()
    };
    // Hand the already-compiled clustering and initializer table to the
    // plan cache so `load` doesn't redo pipeline work.
    let spec = PlanSpec {
        clustering: Some(prepared.compiled.clustering.clone()),
        switched: f.switched,
        batch_sizes: vec![f.max_batch],
        init_values: Some(Arc::clone(&prepared.init_values)),
        ..PlanSpec::new(prepared.compiled.graph.clone())
    };
    let server = Arc::new(Server::new(serve_cfg));
    server.load(model, spec).map_err(|e| e.to_string())?;
    println!(
        "serving `{model}` (max batch {}, window {} ms, queue {}{}{})",
        f.max_batch,
        f.max_delay_ms,
        f.queue_cap,
        if f.shed { ", shedding" } else { "" },
        match f.backend {
            Some(b) => format!(", backend {b}"),
            None => String::new(),
        }
    );
    let listener = std::net::TcpListener::bind(("127.0.0.1", f.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", f.port))?;
    run_tcp_with_registry(&server, model, listener, Some(registry)).map_err(|e| e.to_string())?;
    let s = server.stats();
    println!(
        "served {} requests in {} batches (mean batch {:.2}, {} shed, {} failed)",
        s.completed,
        s.batches,
        s.mean_batch,
        s.shed_queue_full + s.shed_deadline,
        s.failed
    );
    Ok(())
}

/// One round-trip to a running `ramiel serve`: send `req` (no trailing
/// newline needed) and return the parsed response object.
fn serve_roundtrip(port: u16, req: &str) -> Result<serde_json::Value, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("connect 127.0.0.1:{port}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{req}\n").as_bytes())
        .and_then(|_| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut resp = String::new();
    reader.read_line(&mut resp).map_err(|e| e.to_string())?;
    if resp.is_empty() {
        return Err("server closed the connection".into());
    }
    serde_json::from_str(&resp).map_err(|e| e.to_string())
}

/// `ramiel request`: minimal client for a running `ramiel serve` — sends
/// `--count` ops and prints one response line each. The `metrics` and
/// `trace` ops additionally validate what came back (Prometheus samples
/// must parse; the Chrome trace must pass `validate_chrome_trace`) and
/// print the payload itself, so they double as CI well-formedness gates.
fn cmd_request(f: &Flags) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(("127.0.0.1", f.port))
        .map_err(|e| format!("connect 127.0.0.1:{}: {e}", f.port))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    for i in 0..f.count.max(1) {
        let req = match f.op.as_str() {
            "infer_synth" => {
                let deadline = f
                    .deadline_ms
                    .map(|ms| format!(",\"deadline_ms\":{ms}"))
                    .unwrap_or_default();
                format!(
                    "{{\"id\":{i},\"op\":\"infer_synth\",\"seed\":{}{deadline}}}",
                    f.seed + i as u64
                )
            }
            op @ ("ping" | "stats" | "shutdown" | "metrics" | "trace") => {
                format!("{{\"id\":{i},\"op\":\"{op}\"}}")
            }
            "load" => {
                let source = f
                    .source
                    .as_deref()
                    .ok_or("--op load needs --source <model reference>")?;
                let mut req = format!(
                    "{{\"id\":{i},\"op\":\"load\",\"source\":{}",
                    serde_json::to_string(source).map_err(|e| e.to_string())?
                );
                if let Some(pin) = &f.sha256 {
                    req.push_str(&format!(",\"sha256\":\"{pin}\""));
                }
                req.push('}');
                req
            }
            other => {
                return Err(format!(
                    "unknown op `{other}` (ping|infer_synth|stats|metrics|trace|load|shutdown)"
                ))
            }
        };
        writer
            .write_all(format!("{req}\n").as_bytes())
            .and_then(|_| writer.flush())
            .map_err(|e| e.to_string())?;
        let mut resp = String::new();
        reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        if resp.is_empty() {
            return Err("server closed the connection".into());
        }
        let v: serde_json::Value = serde_json::from_str(&resp).map_err(|e| e.to_string())?;
        match f.op.as_str() {
            "metrics" => {
                let text = v
                    .get("metrics")
                    .and_then(|m| m.as_str())
                    .ok_or("metrics response has no `metrics` field")?;
                let samples = ramiel::obs::parse_prometheus(text);
                if samples.is_empty() {
                    return Err("metrics exposition parsed to zero samples".into());
                }
                print!("{text}");
                eprintln!("# {} samples parsed", samples.len());
            }
            "trace" => {
                let trace = v
                    .get("trace")
                    .ok_or("trace response has no `trace` field")?;
                let stats = ramiel::obs::validate_chrome_trace(&trace.to_string())
                    .map_err(|e| format!("trace is not a valid Chrome trace: {e}"))?;
                println!("{trace}");
                eprintln!(
                    "# valid Chrome trace: {} events, {} spans",
                    stats.total_events, stats.complete_spans
                );
            }
            _ => print!("{resp}"),
        }
        if v.get("ok").and_then(|b| b.as_bool()) != Some(true) {
            return Err(format!("request {i} failed"));
        }
    }
    Ok(())
}

/// Per-model aggregates extracted from one Prometheus scrape (see
/// [`cmd_top`]).
#[derive(Default, Clone)]
struct TopRow {
    completed: f64,
    shed: f64,
    batches: f64,
    batched: f64,
    depth: f64,
    peak: f64,
    /// `(le, cumulative count)` latency buckets, ns.
    latency: Vec<(f64, f64)>,
}

/// `ramiel top`: poll a running server's `metrics` verb every
/// `--interval-ms` and render a live per-model table (rps, windowed
/// p50/p99, mean batch, queue depth, shed/s) plus steal-pool rates.
/// `--frames N` stops after N scrapes (0 = until the server goes away).
fn cmd_top(f: &Flags) -> Result<(), String> {
    use std::collections::BTreeMap;

    let parse_frame = |text: &str| -> (BTreeMap<String, TopRow>, f64, f64) {
        let samples = ramiel::obs::parse_prometheus(text);
        let mut rows: BTreeMap<String, TopRow> = BTreeMap::new();
        let (mut steals, mut tasks) = (0.0, 0.0);
        for s in &samples {
            if let Some(model) = s.label("model") {
                let row = rows.entry(model.to_string()).or_default();
                match s.name.as_str() {
                    "ramiel_requests_total" => match s.label("outcome") {
                        Some("completed") => row.completed += s.value,
                        Some(o) if o.starts_with("shed") => row.shed += s.value,
                        _ => {}
                    },
                    "ramiel_batches_total" => row.batches += s.value,
                    "ramiel_batch_size_sum" => row.batched += s.value,
                    "ramiel_queue_depth" => row.depth = s.value,
                    "ramiel_queue_peak_depth" => row.peak = row.peak.max(s.value),
                    "ramiel_request_latency_ns_bucket" => {
                        if let Some(le) = s.label("le").and_then(|l| l.parse::<f64>().ok()) {
                            row.latency.push((le, s.value));
                        }
                    }
                    _ => {}
                }
            } else {
                match s.name.as_str() {
                    "ramiel_steal_steals_total" => steals += s.value,
                    "ramiel_steal_tasks_total" => tasks += s.value,
                    _ => {}
                }
            }
        }
        for row in rows.values_mut() {
            row.latency
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }
        (rows, steals, tasks)
    };

    let interval = std::time::Duration::from_millis(f.interval_ms.max(50));
    let mut prev: Option<(BTreeMap<String, TopRow>, f64, f64)> = None;
    let mut frame = 0usize;
    loop {
        let resp = serve_roundtrip(f.port, "{\"id\":0,\"op\":\"metrics\"}")?;
        let text = resp
            .get("metrics")
            .and_then(|m| m.as_str())
            .ok_or("metrics response has no `metrics` field")?;
        let (rows, steals, tasks) = parse_frame(text);
        let dt = interval.as_secs_f64();

        // Live terminal mode clears between frames; single-frame mode
        // (CI, scripts) just prints the table once.
        if f.frames != 1 {
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "ramiel top — 127.0.0.1:{}  (frame {}, every {:.1}s)",
            f.port,
            frame + 1,
            dt
        );
        println!(
            "{:<14} {:>8} {:>9} {:>9} {:>10} {:>7} {:>7} {:>7}",
            "MODEL", "RPS", "P50(ms)", "P99(ms)", "MEANBATCH", "DEPTH", "PEAK", "SHED/S"
        );
        for (model, row) in &rows {
            let prev_row = prev.as_ref().and_then(|(r, _, _)| r.get(model));
            let rate = |cur: f64, prior: f64| ((cur - prior) / dt).max(0.0);
            let (rps, sheds) = match prev_row {
                Some(p) => (rate(row.completed, p.completed), rate(row.shed, p.shed)),
                None => (0.0, 0.0),
            };
            // Windowed percentiles: le-aligned saturating differencing
            // against the previous frame (robust to a concurrent `stats`
            // reset); first frame falls back to lifetime buckets.
            let window: Vec<(f64, f64)> = match prev_row {
                Some(p) => ramiel::obs::window_buckets(&row.latency, &p.latency),
                _ => row.latency.clone(),
            };
            let p50 = ramiel::obs::quantile_from_buckets(&window, 0.5) / 1e6;
            let p99 = ramiel::obs::quantile_from_buckets(&window, 0.99) / 1e6;
            let mean_batch = if row.batches > 0.0 {
                row.batched / row.batches
            } else {
                0.0
            };
            println!(
                "{:<14} {:>8.1} {:>9.2} {:>9.2} {:>10.2} {:>7.0} {:>7.0} {:>7.1}",
                model, rps, p50, p99, mean_batch, row.depth, row.peak, sheds
            );
        }
        let (steal_rate, task_rate) = match &prev {
            Some((_, ps, pt)) => (((steals - ps) / dt).max(0.0), ((tasks - pt) / dt).max(0.0)),
            None => (0.0, 0.0),
        };
        println!("steal pool: {task_rate:.0} tasks/s, {steal_rate:.0} steals/s");

        prev = Some((rows, steals, tasks));
        frame += 1;
        if f.frames != 0 && frame >= f.frames {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn cmd_export(model: &str, path: &str, f: &Flags) -> Result<(), String> {
    let cfg = if f.tiny {
        ModelConfig::tiny()
    } else {
        ModelConfig::full()
    };
    let g = parse_model(model, &cfg)?;
    if f.onnx || path.to_ascii_lowercase().ends_with(".onnx") {
        ramiel_onnx::save_onnx(&g, path).map_err(|e| e.to_string())?;
        println!("wrote {} ({} nodes, ONNX)", path, g.num_nodes());
    } else {
        ramiel_ir::model_file::save(&g, path).map_err(|e| e.to_string())?;
        println!("wrote {} ({} nodes)", path, g.num_nodes());
    }
    Ok(())
}

/// Build the registry the `pull` and `serve` verbs share: `--cache DIR`
/// overrides the default root ($RAMIEL_CACHE → ~/.cache/ramiel →
/// ./.ramiel-cache).
fn registry_from_flags(f: &Flags) -> ramiel_serve::Registry {
    match &f.cache {
        Some(dir) => ramiel_serve::Registry::new(std::path::PathBuf::from(dir)),
        None => ramiel_serve::Registry::new(ramiel_serve::Registry::default_root()),
    }
}

/// `ramiel pull <url> [--sha256 <hex>] [--cache DIR]`: fetch a model
/// reference into the content-addressed cache, verifying the digest pin if
/// one was given, and print where it landed.
fn cmd_pull(source: &str, f: &Flags) -> Result<(), String> {
    let registry = registry_from_flags(f);
    let pulled = registry
        .pull(source, f.sha256.as_deref())
        .map_err(|e| format!("[{}] {e}", e.code()))?;
    println!(
        "pulled {} ({} bytes{})",
        pulled.source,
        pulled.bytes,
        if pulled.cache_hit { ", cache hit" } else { "" }
    );
    println!("sha256 {}", pulled.sha256);
    println!("cached {}", pulled.path.display());
    Ok(())
}

/// `ramiel fileserver <dir> [--port N]`: loopback static file server used by
/// the registry round-trip CI gate to exercise `http://` pulls without a
/// network. Serves until killed; prints `fileserver on ADDR` at startup.
fn cmd_fileserver(dir: &str, f: &Flags) -> Result<(), String> {
    let root = std::path::PathBuf::from(dir);
    if !root.is_dir() {
        return Err(format!("`{dir}` is not a directory"));
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", f.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", f.port))?;
    ramiel_serve::registry::serve_dir(listener, root).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage =
        "usage: ramiel <models|report|compile|run|profile|simulate|check|analyze|fuzz|export|pull|fileserver|serve|request|top> [model] [flags]";
    // `check` and `analyze` gate the exit code on their findings
    // (0 clean / 1 warnings under --deny-warnings / 2 errors); every other
    // subcommand maps success to 0 and operational failure to 1.
    let result: Result<Gate, String> = match args.first().map(String::as_str) {
        Some("models") => {
            cmd_models(args.iter().any(|a| a == "--detail"));
            Ok(Gate::Clean)
        }
        Some("report") => {
            cmd_report();
            Ok(Gate::Clean)
        }
        Some("compile") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_compile(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("run") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_run(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("profile") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_profile(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("simulate") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_simulate(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("check") if args.len() >= 2 => {
            parse_flags(&args[2..]).and_then(|f| cmd_check(&args[1], &f))
        }
        Some("analyze") if args.len() >= 2 => {
            parse_flags(&args[2..]).and_then(|f| cmd_analyze(&args[1], &f))
        }
        Some("fuzz") => parse_flags(&args[1..])
            .and_then(|f| cmd_fuzz(&f))
            .map(|()| Gate::Clean),
        Some("serve") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_serve(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("request") => parse_flags(&args[1..])
            .and_then(|f| cmd_request(&f))
            .map(|()| Gate::Clean),
        Some("top") => parse_flags(&args[1..])
            .and_then(|f| cmd_top(&f))
            .map(|()| Gate::Clean),
        Some("export") if args.len() >= 3 => parse_flags(&args[3..])
            .and_then(|f| cmd_export(&args[1], &args[2], &f))
            .map(|()| Gate::Clean),
        Some("pull") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_pull(&args[1], &f))
            .map(|()| Gate::Clean),
        Some("fileserver") if args.len() >= 2 => parse_flags(&args[2..])
            .and_then(|f| cmd_fileserver(&args[1], &f))
            .map(|()| Gate::Clean),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(gate) => ExitCode::from(gate.exit_code()),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
