//! Shared diagnostic gating and rendering for the CLI front ends.
//!
//! `ramiel check` and `ramiel analyze` both produce a
//! [`ramiel_verify::Report`]; this module is the single place that turns a
//! report into a process exit code and a rendered listing, so the two
//! subcommands cannot drift apart:
//!
//! | exit | meaning                                      |
//! |------|----------------------------------------------|
//! | 0    | clean (advice never fails a run)             |
//! | 1    | warnings present under `--deny-warnings`     |
//! | 2    | errors present                               |

use ramiel_verify::{Report, Severity};

/// The gated outcome of one or more reports. Ordered so that
/// [`Gate::worst`] is just `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Gate {
    /// No errors, and no warnings while denying warnings.
    #[default]
    Clean,
    /// Warnings present and `--deny-warnings` was set.
    DeniedWarnings,
    /// Errors present.
    Errors,
}

impl Gate {
    /// Gate a single report.
    pub fn of(report: &Report, deny_warnings: bool) -> Gate {
        if report.has_errors() {
            Gate::Errors
        } else if deny_warnings && report.count(Severity::Warning) > 0 {
            Gate::DeniedWarnings
        } else {
            Gate::Clean
        }
    }

    /// Combine with another gate (sweeps over many models keep the worst).
    pub fn worst(self, other: Gate) -> Gate {
        self.max(other)
    }

    pub fn failed(self) -> bool {
        self != Gate::Clean
    }

    /// The process exit code this gate maps to.
    pub fn exit_code(self) -> u8 {
        match self {
            Gate::Clean => 0,
            Gate::DeniedWarnings => 1,
            Gate::Errors => 2,
        }
    }
}

/// Print the one-line verdict plus the indented diagnostic listing and
/// return the gate. `verb` is the subcommand name (`check` / `analyze`).
pub fn print_report(verb: &str, label: &str, report: &Report, deny_warnings: bool) -> Gate {
    let gate = Gate::of(report, deny_warnings);
    let (e, w, a) = (
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Advice),
    );
    println!(
        "{verb} {label:<40} {} ({e} errors, {w} warnings, {a} advice)",
        if gate.failed() { "FAIL" } else { "ok" }
    );
    if e + w + a > 0 {
        for line in report.render().lines() {
            println!("    {line}");
        }
    }
    gate
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_verify::{Diagnostic, Span};

    fn report(sev: Severity) -> Report {
        let d = match sev {
            Severity::Error => Diagnostic::error("RV0001", Span::Graph, "x"),
            Severity::Warning => Diagnostic::warning("RV0202", Span::Graph, "x"),
            Severity::Advice => Diagnostic::advice("RV0601", Span::Graph, "x"),
        };
        Report::new(vec![d])
    }

    #[test]
    fn gate_maps_severities_to_exit_codes() {
        assert_eq!(Gate::of(&Report::default(), true).exit_code(), 0);
        assert_eq!(Gate::of(&report(Severity::Advice), true).exit_code(), 0);
        assert_eq!(Gate::of(&report(Severity::Warning), false).exit_code(), 0);
        assert_eq!(Gate::of(&report(Severity::Warning), true).exit_code(), 1);
        assert_eq!(Gate::of(&report(Severity::Error), false).exit_code(), 2);
    }

    #[test]
    fn worst_keeps_the_most_severe_gate() {
        assert_eq!(
            Gate::Clean.worst(Gate::DeniedWarnings),
            Gate::DeniedWarnings
        );
        assert_eq!(Gate::Errors.worst(Gate::Clean), Gate::Errors);
    }
}
