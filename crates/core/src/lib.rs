//! # ramiel
//!
//! End-to-end facade for the **Ramiel** pipeline (Fig. 10 of the paper):
//!
//! ```text
//! model ─▶ [prune: const-prop + DCE] ─▶ [cloning] ─▶ distance pass
//!       ─▶ Linear Clustering ─▶ cluster merging ─▶ [hyperclustering]
//!       ─▶ parallel + sequential PyTorch/Python codegen
//! ```
//!
//! [`compile`] runs the pipeline and returns a [`CompiledModel`] holding the
//! optimized graph, the clustering, generated code, per-stage statistics and
//! the measured compile time (the paper's Table VIII `CT` column).
//!
//! # Quickstart
//!
//! ```
//! use ramiel::{compile, PipelineOptions};
//! use ramiel_models::{build, ModelKind, ModelConfig};
//!
//! let graph = build(ModelKind::Squeezenet, &ModelConfig::tiny());
//! let compiled = compile(graph, &PipelineOptions::default()).unwrap();
//! assert!(compiled.clustering.num_clusters() >= 1);
//! println!("{}", compiled.parallel_code);
//! ```

pub use ramiel_analyze as analyze;
pub use ramiel_cluster as cluster;
pub use ramiel_codegen as codegen;
pub use ramiel_ios as ios;
pub use ramiel_ir as ir;
pub use ramiel_models as models;
pub use ramiel_obs as obs;
pub use ramiel_passes as passes;
pub use ramiel_runtime as runtime;
pub use ramiel_tensor as tensor;
pub use ramiel_verify as verify;

pub mod diag;

use ramiel_cluster::cost::{CostModel, FlopCost, StaticCost};
use ramiel_cluster::hyper::HyperClustering;
use ramiel_cluster::{
    distance_to_end, hypercluster, linear_clustering, merge_clusters_fixpoint, parallelism_report,
    switched_hypercluster, Clustering, ParallelismReport,
};
use ramiel_codegen::CodegenOptions;
use ramiel_ir::Graph;
use ramiel_passes::CloneConfig;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Which cost model prices nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostKind {
    /// The paper's static per-operator weights.
    #[default]
    Static,
    /// Shape-aware FLOP-derived costs (ablation / simulator refinement).
    Flop,
}

impl CostKind {
    /// Materialize the cost model.
    pub fn model(self) -> Box<dyn CostModel> {
        match self {
            CostKind::Static => Box::new(StaticCost),
            CostKind::Flop => Box::new(FlopCost::default()),
        }
    }
}

/// Which clustering algorithm partitions the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The paper's recursive critical-path Linear Clustering + merging.
    #[default]
    LcMerge,
    /// Dominant Sequence Clustering (comparison algorithm from the same
    /// literature; see `ramiel_cluster::dsc`).
    Dsc,
}

/// Hyperclustering mode for batch > 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HyperMode {
    /// Batch-1 clustering only.
    #[default]
    Off,
    /// Plain hyperclustering (Fig. 8).
    Plain,
    /// Switched hyperclustering (Fig. 9).
    Switched,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Run constant propagation + DCE before clustering (Section III-C).
    pub prune: bool,
    /// Run task cloning before clustering (Section III-D).
    pub cloning: Option<CloneConfig>,
    pub cost: CostKind,
    /// Inference batch size (enables hyperclustering when > 1).
    pub batch: usize,
    pub hyper: HyperMode,
    /// Clustering algorithm (LC+merge by default).
    pub scheduler: Scheduler,
}

impl PipelineOptions {
    /// Everything on, as in the paper's `S_Overall` column.
    pub fn all_optimizations() -> Self {
        PipelineOptions {
            prune: true,
            cloning: Some(CloneConfig::default()),
            ..Default::default()
        }
    }
}

/// Per-stage statistics gathered while compiling.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    pub model: String,
    pub nodes_before: usize,
    pub nodes_after_prune: usize,
    pub nodes_after_cloning: usize,
    /// Table II "Before Merging".
    pub clusters_before_merge: usize,
    /// Table II "After Merging" (== Table III/IV cluster count).
    pub clusters_after_merge: usize,
    pub cross_cluster_edges: usize,
    pub parallelism: ParallelismReport,
}

/// Output of [`compile`].
pub struct CompiledModel {
    /// The (possibly pruned/cloned) graph the clusters refer to.
    pub graph: Graph,
    pub clustering: Clustering,
    /// Present when `batch > 1` and a hyper mode is selected.
    pub hyper: Option<HyperClustering>,
    /// Generated hypercluster Python (present alongside `hyper`).
    pub hyper_code: Option<String>,
    /// Distance-to-end table for `graph` (reusable by simulators).
    pub distances: Vec<u64>,
    pub parallel_code: String,
    pub sequential_code: String,
    pub report: PipelineReport,
    /// End-to-end pipeline time (the paper's compile-time metric).
    pub compile_time: Duration,
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum CompileError {
    Ir(ramiel_ir::IrError),
    Invalid(String),
    /// Initializer conversion failed while preparing a compiled model for
    /// execution (see [`prepare`]).
    Init(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "{e}"),
            CompileError::Invalid(m) => write!(f, "{m}"),
            CompileError::Init(m) => write!(f, "initializer conversion failed: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ramiel_ir::IrError> for CompileError {
    fn from(e: ramiel_ir::IrError) -> Self {
        CompileError::Ir(e)
    }
}

/// A [`CompiledModel`] paired with its runtime initializer table, built
/// exactly once. Every executor invocation on the same prepared model
/// shares the converted weights (a refcount bump per run instead of a deep
/// copy) — the shape `ramiel run`, `ramiel profile` and the serving layer's
/// plan cache all want.
pub struct PreparedModel {
    pub compiled: CompiledModel,
    /// Shared pre-converted weights (see
    /// [`ramiel_runtime::initializer_values`]).
    pub init_values: std::sync::Arc<std::collections::HashMap<String, ramiel_tensor::Value>>,
}

impl PreparedModel {
    /// [`ramiel_runtime::RunOptions`] pre-loaded with the shared table.
    pub fn run_options(&self) -> ramiel_runtime::RunOptions {
        ramiel_runtime::RunOptions::default().init_values(std::sync::Arc::clone(&self.init_values))
    }
}

/// [`compile`] followed by a one-time `initializer_values` conversion: the
/// single entry point for "compile this graph and get it ready to execute
/// repeatedly". Replaces the per-invocation table rebuilds the CLI used to
/// do on every `run`/`profile` path.
pub fn prepare(graph: Graph, opts: &PipelineOptions) -> Result<PreparedModel, CompileError> {
    prepare_with_obs(graph, opts, &ramiel_obs::Obs::disabled())
}

/// [`prepare`] with an observability sink (see [`compile_with_obs`]).
pub fn prepare_with_obs(
    graph: Graph,
    opts: &PipelineOptions,
    obs: &ramiel_obs::Obs,
) -> Result<PreparedModel, CompileError> {
    let compiled = compile_with_obs(graph, opts, obs)?;
    let init_values = ramiel_runtime::initializer_values(&compiled.graph)
        .map_err(|e| CompileError::Init(e.to_string()))?;
    Ok(PreparedModel {
        compiled,
        init_values,
    })
}

/// Run the full Ramiel pipeline on a graph.
pub fn compile(graph: Graph, opts: &PipelineOptions) -> Result<CompiledModel, CompileError> {
    compile_with_obs(graph, opts, &ramiel_obs::Obs::disabled())
}

/// [`compile`] with an observability sink: every pipeline stage (prune,
/// cloning, distances, clustering, merging, hyperclustering, codegen) is
/// wrapped in a trace span carrying graph-size/cluster-count deltas in its
/// args. A disabled [`ramiel_obs::Obs`] (the [`compile`] path) costs one
/// branch per stage.
pub fn compile_with_obs(
    mut graph: Graph,
    opts: &PipelineOptions,
    obs: &ramiel_obs::Obs,
) -> Result<CompiledModel, CompileError> {
    let start = Instant::now();
    obs.name_thread(0, "pipeline");
    let cost = opts.cost.model();
    let nodes_before = graph.num_nodes();

    if opts.prune {
        let mut span = obs.span(0, "prune (const-prop + DCE)", "compile");
        ramiel_passes::prune(&mut graph)?;
        span.set_args(serde_json::json!({
            "nodes_before": nodes_before,
            "nodes_after": graph.num_nodes(),
        }));
    }
    let nodes_after_prune = graph.num_nodes();

    if let Some(clone_cfg) = &opts.cloning {
        let mut span = obs.span(0, "task cloning", "compile");
        ramiel_passes::clone_nodes(&mut graph, cost.as_ref(), clone_cfg)?;
        span.set_args(serde_json::json!({
            "nodes_before": nodes_after_prune,
            "nodes_after": graph.num_nodes(),
        }));
    }
    let nodes_after_cloning = graph.num_nodes();

    let distances = {
        let _span = obs.span(0, "distance-to-end pass", "compile");
        distance_to_end(&graph, cost.as_ref())
    };
    let (clusters_before_merge, clustering) = match opts.scheduler {
        Scheduler::LcMerge => {
            let mut span = obs.span(0, "linear clustering", "compile");
            let lc = linear_clustering(&graph, &distances);
            let before = lc.num_clusters();
            span.set_args(serde_json::json!({ "clusters": before }));
            span.finish();
            let mut span = obs.span(0, "cluster merging", "compile");
            let merged = merge_clusters_fixpoint(&lc, &distances);
            span.set_args(serde_json::json!({
                "clusters_before": before,
                "clusters_after": merged.num_clusters(),
            }));
            (before, merged)
        }
        Scheduler::Dsc => {
            let mut span = obs.span(0, "DSC clustering", "compile");
            let c = ramiel_cluster::dsc_clustering(&graph, cost.as_ref());
            span.set_args(serde_json::json!({ "clusters": c.num_clusters() }));
            (c.num_clusters(), c)
        }
    };

    #[cfg(debug_assertions)]
    ramiel_verify::assert_schedule_invariants(
        &graph,
        &ramiel_cluster::clustering_view(&clustering),
        "after clustering",
    );

    let hyper = match (opts.hyper, opts.batch) {
        (HyperMode::Off, _) | (_, 0..=1) => None,
        (HyperMode::Plain, b) => {
            let _span = obs.span(0, "hyperclustering (plain)", "compile");
            Some(hypercluster(&clustering, b))
        }
        (HyperMode::Switched, b) => {
            let _span = obs.span(0, "hyperclustering (switched)", "compile");
            Some(switched_hypercluster(&clustering, b))
        }
    };
    #[cfg(debug_assertions)]
    if let Some(hc) = &hyper {
        ramiel_verify::assert_schedule_invariants(
            &graph,
            &ramiel_cluster::hyper_view(hc),
            "after hyperclustering",
        );
    }

    let cg = CodegenOptions::default();
    let (parallel_code, sequential_code, hyper_code) = {
        let mut span = obs.span(0, "codegen", "compile");
        let parallel_code = ramiel_codegen::generate_parallel(&graph, &clustering, &cg);
        let sequential_code = ramiel_codegen::generate_sequential(&graph, &cg);
        let hyper_code = hyper
            .as_ref()
            .map(|hc| ramiel_codegen::generate_hyper_parallel(&graph, hc, &cg));
        span.set_args(serde_json::json!({
            "parallel_bytes": parallel_code.len(),
            "sequential_bytes": sequential_code.len(),
        }));
        (parallel_code, sequential_code, hyper_code)
    };

    let report = PipelineReport {
        model: graph.name.clone(),
        nodes_before,
        nodes_after_prune,
        nodes_after_cloning,
        clusters_before_merge,
        clusters_after_merge: clustering.num_clusters(),
        cross_cluster_edges: clustering.cross_cluster_edges(&graph),
        parallelism: parallelism_report(&graph, cost.as_ref()),
    };

    Ok(CompiledModel {
        graph,
        clustering,
        hyper,
        hyper_code,
        distances,
        parallel_code,
        sequential_code,
        report,
        compile_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_models::{build, ModelConfig, ModelKind};

    #[test]
    fn compile_squeezenet_end_to_end() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let c = compile(g, &PipelineOptions::default()).unwrap();
        assert!(c.report.clusters_before_merge >= c.report.clusters_after_merge);
        assert!(c.parallel_code.contains("def cluster_0"));
        assert!(c.sequential_code.contains("def run_sequential"));
        c.clustering.check_partition(&c.graph).unwrap();
    }

    #[test]
    fn prune_shrinks_models_with_shape_chains() {
        let g = build(ModelKind::YoloV5, &ModelConfig::tiny());
        let no_prune = compile(g.clone(), &PipelineOptions::default()).unwrap();
        let pruned = compile(
            g,
            &PipelineOptions {
                prune: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pruned.report.nodes_after_prune < no_prune.report.nodes_after_prune);
    }

    #[test]
    fn hyper_modes_produce_hyperclusters() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let opts = PipelineOptions {
            batch: 4,
            hyper: HyperMode::Switched,
            ..Default::default()
        };
        let c = compile(g, &opts).unwrap();
        let hc = c.hyper.expect("hyperclustering requested");
        assert!(hc.switched);
        assert_eq!(hc.batch, 4);
        hc.check_coverage(c.graph.num_nodes()).unwrap();
    }

    #[test]
    fn compile_time_is_measured() {
        let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
        let c = compile(g, &PipelineOptions::all_optimizations()).unwrap();
        assert!(c.compile_time.as_nanos() > 0);
    }
}
