//! Protobuf wire-format primitives: varints, field keys, length-delimited
//! payloads, fixed 32/64-bit scalars, and packed repeated scalars.
//!
//! This is the whole protobuf dependency surface of the ONNX subsystem — a
//! reader and a writer over the four wire types the `.onnx` serialization
//! actually uses. No descriptors, no reflection, no codegen: message
//! decoding in [`crate::proto`] is a loop over `(field number, wire type)`
//! keys with a `match` per message.
//!
//! Every reader error carries the byte offset where decoding failed so a
//! truncated or bit-flipped model file produces an actionable `ONNX-WIRE`
//! diagnostic instead of a panic or a silently wrong graph.

use crate::OnnxError;

/// Protobuf wire types (the subset ONNX serialization uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Wire type 0: base-128 varints (ints, enums, bools).
    Varint,
    /// Wire type 1: little-endian fixed 64-bit (double, fixed64).
    Fixed64,
    /// Wire type 2: length-delimited (strings, bytes, sub-messages, packed
    /// repeated scalars).
    Len,
    /// Wire type 5: little-endian fixed 32-bit (float, fixed32).
    Fixed32,
}

impl WireType {
    fn from_bits(bits: u64, offset: usize) -> Result<WireType, OnnxError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::Len),
            5 => Ok(WireType::Fixed32),
            other => Err(OnnxError::Wire {
                offset,
                reason: format!("unsupported wire type {other}"),
            }),
        }
    }

    fn bits(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::Len => 2,
            WireType::Fixed32 => 5,
        }
    }
}

/// Cursor over a protobuf-encoded byte buffer.
///
/// `base` is the buffer's offset within the whole file, so errors from
/// nested sub-message readers still report absolute file positions.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader {
            buf,
            pos: 0,
            base: 0,
        }
    }

    /// A reader over `buf` that reports errors at `base + local offset`.
    pub fn with_base(buf: &'a [u8], base: usize) -> WireReader<'a> {
        WireReader { buf, pos: 0, base }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// True when the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn truncated(&self, what: &str) -> OnnxError {
        OnnxError::Wire {
            offset: self.offset(),
            reason: format!(
                "truncated {what} (buffer ends after {} bytes)",
                self.buf.len()
            ),
        }
    }

    /// Read one base-128 varint (at most 10 bytes for a u64).
    pub fn varint(&mut self) -> Result<u64, OnnxError> {
        let mut value: u64 = 0;
        for i in 0..10 {
            let Some(&byte) = self.buf.get(self.pos) else {
                return Err(self.truncated("varint"));
            };
            self.pos += 1;
            let payload = (byte & 0x7f) as u64;
            // The 10th byte of a u64 varint may only carry one bit.
            if i == 9 && payload > 1 {
                return Err(OnnxError::Wire {
                    offset: self.offset() - 1,
                    reason: "varint overflows 64 bits".into(),
                });
            }
            value |= payload << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(OnnxError::Wire {
            offset: self.offset(),
            reason: "varint longer than 10 bytes".into(),
        })
    }

    /// Varint reinterpreted as two's-complement i64 (protobuf `int64`).
    pub fn varint_i64(&mut self) -> Result<i64, OnnxError> {
        Ok(self.varint()? as i64)
    }

    /// Read one `(field number, wire type)` key.
    pub fn key(&mut self) -> Result<(u64, WireType), OnnxError> {
        let at = self.offset();
        let key = self.varint()?;
        let field = key >> 3;
        if field == 0 {
            return Err(OnnxError::Wire {
                offset: at,
                reason: "field number 0 is invalid".into(),
            });
        }
        Ok((field, WireType::from_bits(key & 0x7, at)?))
    }

    /// Read a length-delimited payload, returning the raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], OnnxError> {
        let at = self.offset();
        let len = self.varint()? as usize;
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(OnnxError::Wire {
                offset: at,
                reason: format!(
                    "length-delimited field claims {len} bytes but only {} remain",
                    self.buf.len() - self.pos
                ),
            });
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read a length-delimited payload as UTF-8.
    pub fn string(&mut self) -> Result<String, OnnxError> {
        let at = self.offset();
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| OnnxError::Wire {
            offset: at,
            reason: "string field is not valid UTF-8".into(),
        })
    }

    /// A sub-reader over a length-delimited payload (nested message),
    /// with error offsets still absolute.
    pub fn message(&mut self) -> Result<WireReader<'a>, OnnxError> {
        let before = self.offset();
        let raw = self.bytes()?;
        // `bytes` advanced past the length prefix; the payload starts at
        // the current offset minus its own length.
        let base = before + (self.offset() - before - raw.len());
        Ok(WireReader::with_base(raw, base))
    }

    /// Read a little-endian fixed 32-bit value.
    pub fn fixed32(&mut self) -> Result<u32, OnnxError> {
        let Some(raw) = self.buf.get(self.pos..self.pos + 4) else {
            return Err(self.truncated("fixed32"));
        };
        self.pos += 4;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian fixed 64-bit value.
    pub fn fixed64(&mut self) -> Result<u64, OnnxError> {
        let Some(raw) = self.buf.get(self.pos..self.pos + 8) else {
            return Err(self.truncated("fixed64"));
        };
        self.pos += 8;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    /// Read an IEEE-754 float (fixed32 bit pattern — exact, no rounding).
    pub fn float(&mut self) -> Result<f32, OnnxError> {
        Ok(f32::from_bits(self.fixed32()?))
    }

    /// Decode a repeated scalar field that may arrive packed (one
    /// length-delimited blob) or unpacked (one key per element): given the
    /// wire type seen for this key, append the element(s) to `out`.
    pub fn repeated_i64(&mut self, wt: WireType, out: &mut Vec<i64>) -> Result<(), OnnxError> {
        match wt {
            WireType::Varint => out.push(self.varint_i64()?),
            WireType::Len => {
                let mut sub = self.message()?;
                while !sub.is_empty() {
                    out.push(sub.varint_i64()?);
                }
            }
            other => {
                return Err(OnnxError::Wire {
                    offset: self.offset(),
                    reason: format!("repeated int64 field has wire type {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Packed-or-unpacked repeated float (see [`WireReader::repeated_i64`]).
    pub fn repeated_f32(&mut self, wt: WireType, out: &mut Vec<f32>) -> Result<(), OnnxError> {
        match wt {
            WireType::Fixed32 => out.push(self.float()?),
            WireType::Len => {
                let mut sub = self.message()?;
                while !sub.is_empty() {
                    out.push(sub.float()?);
                }
            }
            other => {
                return Err(OnnxError::Wire {
                    offset: self.offset(),
                    reason: format!("repeated float field has wire type {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Skip one field's payload of the given wire type.
    pub fn skip(&mut self, wt: WireType) -> Result<(), OnnxError> {
        match wt {
            WireType::Varint => {
                self.varint()?;
            }
            WireType::Fixed64 => {
                self.fixed64()?;
            }
            WireType::Len => {
                self.bytes()?;
            }
            WireType::Fixed32 => {
                self.fixed32()?;
            }
        }
        Ok(())
    }
}

/// Append-only protobuf encoder. Sub-messages are encoded into their own
/// `WireWriter` and attached with [`WireWriter::field_message`], which
/// prepends the length.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn key(&mut self, field: u64, wt: WireType) {
        self.varint(field << 3 | wt.bits());
    }

    /// `int64` field (also used for enums and bools).
    pub fn field_i64(&mut self, field: u64, v: i64) {
        self.key(field, WireType::Varint);
        self.varint(v as u64);
    }

    /// IEEE float field (fixed32 bit pattern — exact).
    pub fn field_f32(&mut self, field: u64, v: f32) {
        self.key(field, WireType::Fixed32);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// `string` field.
    pub fn field_string(&mut self, field: u64, v: &str) {
        self.field_bytes(field, v.as_bytes());
    }

    /// `bytes` field.
    pub fn field_bytes(&mut self, field: u64, v: &[u8]) {
        self.key(field, WireType::Len);
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Nested message field.
    pub fn field_message(&mut self, field: u64, msg: WireWriter) {
        self.field_bytes(field, &msg.buf);
    }

    /// Packed repeated `int64` field (skipped entirely when empty, matching
    /// proto3 presence semantics).
    pub fn field_packed_i64(&mut self, field: u64, vs: &[i64]) {
        if vs.is_empty() {
            return;
        }
        let mut sub = WireWriter::new();
        for &v in vs {
            sub.varint(v as u64);
        }
        self.field_bytes(field, &sub.buf);
    }

    /// Packed repeated `float` field.
    pub fn field_packed_f32(&mut self, field: u64, vs: &[f32]) {
        if vs.is_empty() {
            return;
        }
        let mut sub = WireWriter::new();
        for &v in vs {
            sub.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.field_bytes(field, &sub.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = WireWriter::new();
            w.varint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn negative_int64_takes_ten_bytes() {
        let mut w = WireWriter::new();
        w.field_i64(3, -1);
        let bytes = w.into_bytes();
        // key + 10-byte two's-complement varint
        assert_eq!(bytes.len(), 11);
        let mut r = WireReader::new(&bytes);
        let (field, wt) = r.key().unwrap();
        assert_eq!((field, wt), (3, WireType::Varint));
        assert_eq!(r.varint_i64().unwrap(), -1);
    }

    #[test]
    fn truncated_varint_reports_offset() {
        let bytes = [0x96, 0x80]; // continuation bit set, buffer ends
        let mut r = WireReader::new(&bytes);
        match r.varint() {
            Err(OnnxError::Wire { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn overlong_length_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.key(1, WireType::Len);
        w.varint(1_000_000); // claims a megabyte that is not there
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.key().unwrap();
        assert!(matches!(r.bytes(), Err(OnnxError::Wire { .. })));
    }

    #[test]
    fn float_bits_are_exact() {
        for v in [
            0.0f32,
            -0.0,
            1.5,
            f32::MIN_POSITIVE,
            f32::NAN,
            f32::INFINITY,
        ] {
            let mut w = WireWriter::new();
            w.field_f32(2, v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            r.key().unwrap();
            assert_eq!(r.float().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn packed_and_unpacked_repeated_int64_agree() {
        let vals = [0i64, -1, 7, 1 << 40];
        let mut packed = WireWriter::new();
        packed.field_packed_i64(8, &vals);
        let mut unpacked = WireWriter::new();
        for &v in &vals {
            unpacked.field_i64(8, v);
        }
        for bytes in [packed.into_bytes(), unpacked.into_bytes()] {
            let mut r = WireReader::new(&bytes);
            let mut got = Vec::new();
            while !r.is_empty() {
                let (field, wt) = r.key().unwrap();
                assert_eq!(field, 8);
                r.repeated_i64(wt, &mut got).unwrap();
            }
            assert_eq!(got, vals);
        }
    }

    #[test]
    fn nested_message_errors_keep_absolute_offsets() {
        let mut inner = WireWriter::new();
        inner.key(1, WireType::Varint);
        // no payload — inner message truncated
        let mut outer = WireWriter::new();
        outer.field_message(2, inner);
        let bytes = outer.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (_, WireType::Len) = r.key().unwrap() else {
            panic!("expected len field")
        };
        let mut sub = r.message().unwrap();
        sub.key().unwrap();
        match sub.varint() {
            Err(OnnxError::Wire { offset, .. }) => assert_eq!(offset, bytes.len()),
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    #[test]
    fn skip_covers_all_wire_types() {
        let mut w = WireWriter::new();
        w.field_i64(1, 42);
        w.field_f32(2, 1.0);
        w.field_bytes(3, b"abc");
        w.key(4, WireType::Fixed64);
        w.buf.extend_from_slice(&7u64.to_le_bytes());
        w.field_i64(5, 9);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut last = 0;
        while !r.is_empty() {
            let (field, wt) = r.key().unwrap();
            if field == 5 {
                last = r.varint().unwrap();
            } else {
                r.skip(wt).unwrap();
            }
        }
        assert_eq!(last, 9);
    }
}
