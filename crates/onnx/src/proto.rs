//! The decoded ONNX message subset: `ModelProto`, `GraphProto`,
//! `NodeProto`, `AttributeProto`, `TensorProto`, `ValueInfoProto`.
//!
//! Field numbers follow `onnx/onnx.proto` (the frozen protobuf schema the
//! whole ONNX ecosystem serializes against). Only the fields the importer
//! consumes are materialized; unknown fields are skipped by wire type, so
//! models carrying metadata, docstrings, training info or quantization
//! annotations still decode — the importer then decides what it supports.

use crate::wire::{WireReader, WireWriter};
use crate::OnnxError;

/// `TensorProto.DataType` values for the element types the IR supports.
pub mod data_type {
    pub const FLOAT: i64 = 1;
    pub const INT64: i64 = 7;
    pub const BOOL: i64 = 9;
}

/// `AttributeProto.AttributeType` values.
pub mod attr_type {
    pub const FLOAT: i64 = 1;
    pub const INT: i64 = 2;
    pub const STRING: i64 = 3;
    pub const TENSOR: i64 = 4;
    pub const FLOATS: i64 = 6;
    pub const INTS: i64 = 7;
}

/// Top-level `.onnx` message.
#[derive(Debug, Default, Clone)]
pub struct ModelProto {
    pub ir_version: i64,
    pub producer_name: String,
    pub producer_version: String,
    /// `(domain, version)` pairs; the default domain is the empty string.
    pub opset_import: Vec<(String, i64)>,
    pub graph: Option<GraphProto>,
}

#[derive(Debug, Default, Clone)]
pub struct GraphProto {
    pub name: String,
    pub node: Vec<NodeProto>,
    pub initializer: Vec<TensorProto>,
    pub input: Vec<ValueInfoProto>,
    pub output: Vec<ValueInfoProto>,
    pub value_info: Vec<ValueInfoProto>,
}

#[derive(Debug, Default, Clone)]
pub struct NodeProto {
    pub name: String,
    pub op_type: String,
    pub domain: String,
    pub input: Vec<String>,
    pub output: Vec<String>,
    pub attribute: Vec<AttributeProto>,
}

#[derive(Debug, Default, Clone)]
pub struct AttributeProto {
    pub name: String,
    /// `AttributeProto.AttributeType`; 0 when the writer omitted it (the
    /// populated payload field then determines the type).
    pub r#type: i64,
    pub f: f32,
    pub i: i64,
    pub s: Vec<u8>,
    pub t: Option<TensorProto>,
    pub floats: Vec<f32>,
    pub ints: Vec<i64>,
}

#[derive(Debug, Default, Clone)]
pub struct TensorProto {
    pub name: String,
    pub dims: Vec<i64>,
    /// `TensorProto.DataType` (see [`data_type`]).
    pub data_type: i64,
    /// Little-endian packed element bytes; the exporter always writes this
    /// form, the importer also accepts the typed `*_data` fields below.
    pub raw_data: Vec<u8>,
    pub float_data: Vec<f32>,
    pub int64_data: Vec<i64>,
    pub int32_data: Vec<i64>,
}

#[derive(Debug, Default, Clone)]
pub struct ValueInfoProto {
    pub name: String,
    /// `(elem_type, dims)` from `type.tensor_type`; `None` when absent.
    /// Symbolic dimensions (`dim_param`) decode as `Err` in the dim slot.
    pub tensor_type: Option<(i64, Vec<Dim>)>,
}

/// One dimension of a `TensorShapeProto`: a concrete extent or a named
/// symbolic parameter (which this IR's fully-static shapes reject, with
/// the parameter name in the diagnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dim {
    Value(i64),
    Param(String),
}

impl ModelProto {
    pub fn decode(bytes: &[u8]) -> Result<ModelProto, OnnxError> {
        let mut r = WireReader::new(bytes);
        let mut m = ModelProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => m.ir_version = r.varint_i64()?,
                2 => m.producer_name = r.string()?,
                3 => m.producer_version = r.string()?,
                7 => m.graph = Some(GraphProto::decode(r.message()?)?),
                8 => {
                    let mut sub = r.message()?;
                    let (mut domain, mut version) = (String::new(), 0i64);
                    while !sub.is_empty() {
                        let (f, w) = sub.key()?;
                        match f {
                            1 => domain = sub.string()?,
                            2 => version = sub.varint_i64()?,
                            _ => sub.skip(w)?,
                        }
                    }
                    m.opset_import.push((domain, version));
                }
                _ => r.skip(wt)?,
            }
        }
        Ok(m)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.field_i64(1, self.ir_version);
        if !self.producer_name.is_empty() {
            w.field_string(2, &self.producer_name);
        }
        if !self.producer_version.is_empty() {
            w.field_string(3, &self.producer_version);
        }
        for (domain, version) in &self.opset_import {
            let mut sub = WireWriter::new();
            if !domain.is_empty() {
                sub.field_string(1, domain);
            }
            sub.field_i64(2, *version);
            w.field_message(8, sub);
        }
        // The graph goes last (field order is free in protobuf): any strict
        // truncation of the file then clips the graph — either losing it
        // entirely (ONNX-MODEL) or cutting it mid-message (ONNX-WIRE) —
        // instead of silently dropping a trailing optional field.
        if let Some(g) = &self.graph {
            w.field_message(7, g.encode());
        }
        w.into_bytes()
    }
}

impl GraphProto {
    fn decode(mut r: WireReader) -> Result<GraphProto, OnnxError> {
        let mut g = GraphProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => g.node.push(NodeProto::decode(r.message()?)?),
                2 => g.name = r.string()?,
                5 => g.initializer.push(TensorProto::decode(r.message()?)?),
                11 => g.input.push(ValueInfoProto::decode(r.message()?)?),
                12 => g.output.push(ValueInfoProto::decode(r.message()?)?),
                13 => g.value_info.push(ValueInfoProto::decode(r.message()?)?),
                _ => r.skip(wt)?,
            }
        }
        Ok(g)
    }

    fn encode(&self) -> WireWriter {
        let mut w = WireWriter::new();
        for n in &self.node {
            w.field_message(1, n.encode());
        }
        if !self.name.is_empty() {
            w.field_string(2, &self.name);
        }
        for t in &self.initializer {
            w.field_message(5, t.encode());
        }
        for v in &self.input {
            w.field_message(11, v.encode());
        }
        for v in &self.output {
            w.field_message(12, v.encode());
        }
        for v in &self.value_info {
            w.field_message(13, v.encode());
        }
        w
    }
}

impl NodeProto {
    fn decode(mut r: WireReader) -> Result<NodeProto, OnnxError> {
        let mut n = NodeProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => n.input.push(r.string()?),
                2 => n.output.push(r.string()?),
                3 => n.name = r.string()?,
                4 => n.op_type = r.string()?,
                5 => n.attribute.push(AttributeProto::decode(r.message()?)?),
                7 => n.domain = r.string()?,
                _ => r.skip(wt)?,
            }
        }
        Ok(n)
    }

    fn encode(&self) -> WireWriter {
        let mut w = WireWriter::new();
        for i in &self.input {
            w.field_string(1, i);
        }
        for o in &self.output {
            w.field_string(2, o);
        }
        if !self.name.is_empty() {
            w.field_string(3, &self.name);
        }
        w.field_string(4, &self.op_type);
        for a in &self.attribute {
            w.field_message(5, a.encode());
        }
        if !self.domain.is_empty() {
            w.field_string(7, &self.domain);
        }
        w
    }
}

impl AttributeProto {
    fn decode(mut r: WireReader) -> Result<AttributeProto, OnnxError> {
        let mut a = AttributeProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => a.name = r.string()?,
                2 => a.f = r.float()?,
                3 => a.i = r.varint_i64()?,
                4 => a.s = r.bytes()?.to_vec(),
                5 => a.t = Some(TensorProto::decode(r.message()?)?),
                7 => r.repeated_f32(wt, &mut a.floats)?,
                8 => r.repeated_i64(wt, &mut a.ints)?,
                20 => a.r#type = r.varint_i64()?,
                _ => r.skip(wt)?,
            }
        }
        Ok(a)
    }

    fn encode(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.field_string(1, &self.name);
        match self.r#type {
            attr_type::FLOAT => w.field_f32(2, self.f),
            attr_type::INT => w.field_i64(3, self.i),
            attr_type::STRING => w.field_bytes(4, &self.s),
            attr_type::TENSOR => {
                if let Some(t) = &self.t {
                    w.field_message(5, t.encode());
                }
            }
            attr_type::FLOATS => w.field_packed_f32(7, &self.floats),
            attr_type::INTS => w.field_packed_i64(8, &self.ints),
            _ => {}
        }
        w.field_i64(20, self.r#type);
        w
    }

    /// Typed constructors used by the exporter.
    pub fn int(name: &str, v: i64) -> AttributeProto {
        AttributeProto {
            name: name.into(),
            r#type: attr_type::INT,
            i: v,
            ..Default::default()
        }
    }

    pub fn float(name: &str, v: f32) -> AttributeProto {
        AttributeProto {
            name: name.into(),
            r#type: attr_type::FLOAT,
            f: v,
            ..Default::default()
        }
    }

    pub fn string(name: &str, v: &str) -> AttributeProto {
        AttributeProto {
            name: name.into(),
            r#type: attr_type::STRING,
            s: v.as_bytes().to_vec(),
            ..Default::default()
        }
    }

    pub fn ints(name: &str, vs: Vec<i64>) -> AttributeProto {
        AttributeProto {
            name: name.into(),
            r#type: attr_type::INTS,
            ints: vs,
            ..Default::default()
        }
    }

    pub fn tensor(name: &str, t: TensorProto) -> AttributeProto {
        AttributeProto {
            name: name.into(),
            r#type: attr_type::TENSOR,
            t: Some(t),
            ..Default::default()
        }
    }
}

impl TensorProto {
    fn decode(mut r: WireReader) -> Result<TensorProto, OnnxError> {
        let mut t = TensorProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => r.repeated_i64(wt, &mut t.dims)?,
                2 => t.data_type = r.varint_i64()?,
                4 => r.repeated_f32(wt, &mut t.float_data)?,
                5 => r.repeated_i64(wt, &mut t.int32_data)?,
                7 => r.repeated_i64(wt, &mut t.int64_data)?,
                8 => t.name = r.string()?,
                9 => t.raw_data = r.bytes()?.to_vec(),
                _ => r.skip(wt)?,
            }
        }
        Ok(t)
    }

    pub(crate) fn encode(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.field_packed_i64(1, &self.dims);
        w.field_i64(2, self.data_type);
        if !self.name.is_empty() {
            w.field_string(8, &self.name);
        }
        if !self.raw_data.is_empty() {
            w.field_bytes(9, &self.raw_data);
        }
        w.field_packed_f32(4, &self.float_data);
        w.field_packed_i64(5, &self.int32_data);
        w.field_packed_i64(7, &self.int64_data);
        w
    }
}

impl ValueInfoProto {
    fn decode(mut r: WireReader) -> Result<ValueInfoProto, OnnxError> {
        let mut v = ValueInfoProto::default();
        while !r.is_empty() {
            let (field, wt) = r.key()?;
            match field {
                1 => v.name = r.string()?,
                2 => {
                    // TypeProto { tensor_type = 1 }
                    let mut ty = r.message()?;
                    while !ty.is_empty() {
                        let (f, w) = ty.key()?;
                        if f != 1 {
                            ty.skip(w)?;
                            continue;
                        }
                        // TypeProto.Tensor { elem_type = 1, shape = 2 }
                        let mut tt = ty.message()?;
                        let (mut elem, mut dims) = (0i64, Vec::new());
                        while !tt.is_empty() {
                            let (f2, w2) = tt.key()?;
                            match f2 {
                                1 => elem = tt.varint_i64()?,
                                2 => {
                                    // TensorShapeProto { dim = 1 }
                                    let mut sh = tt.message()?;
                                    while !sh.is_empty() {
                                        let (f3, w3) = sh.key()?;
                                        if f3 != 1 {
                                            sh.skip(w3)?;
                                            continue;
                                        }
                                        // Dimension { dim_value = 1, dim_param = 2 }
                                        let mut d = sh.message()?;
                                        let mut dim = Dim::Value(0);
                                        while !d.is_empty() {
                                            let (f4, w4) = d.key()?;
                                            match f4 {
                                                1 => dim = Dim::Value(d.varint_i64()?),
                                                2 => dim = Dim::Param(d.string()?),
                                                _ => d.skip(w4)?,
                                            }
                                        }
                                        dims.push(dim);
                                    }
                                }
                                _ => tt.skip(w2)?,
                            }
                        }
                        v.tensor_type = Some((elem, dims));
                    }
                }
                _ => r.skip(wt)?,
            }
        }
        Ok(v)
    }

    fn encode(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.field_string(1, &self.name);
        if let Some((elem, dims)) = &self.tensor_type {
            let mut shape = WireWriter::new();
            for d in dims {
                let mut dim = WireWriter::new();
                match d {
                    Dim::Value(v) => dim.field_i64(1, *v),
                    Dim::Param(p) => dim.field_string(2, p),
                }
                shape.field_message(1, dim);
            }
            let mut tt = WireWriter::new();
            tt.field_i64(1, *elem);
            tt.field_message(2, shape);
            let mut ty = WireWriter::new();
            ty.field_message(1, tt);
            w.field_message(2, ty);
        }
        w
    }

    /// A fixed-shape tensor value info (the exporter's only form).
    pub fn tensor(name: &str, elem: i64, dims: &[usize]) -> ValueInfoProto {
        ValueInfoProto {
            name: name.into(),
            tensor_type: Some((elem, dims.iter().map(|&d| Dim::Value(d as i64)).collect())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_round_trip_through_bytes() {
        let model = ModelProto {
            ir_version: 8,
            producer_name: "ramiel".into(),
            producer_version: "0.1".into(),
            opset_import: vec![(String::new(), 13)],
            graph: Some(GraphProto {
                name: "g".into(),
                node: vec![NodeProto {
                    name: "relu0".into(),
                    op_type: "Relu".into(),
                    input: vec!["x".into()],
                    output: vec!["y".into()],
                    attribute: vec![
                        AttributeProto::float("alpha", 0.5),
                        AttributeProto::ints("axes", vec![-1, 2]),
                        AttributeProto::string("mode", "nearest"),
                    ],
                    ..Default::default()
                }],
                initializer: vec![TensorProto {
                    name: "w".into(),
                    dims: vec![2, 2],
                    data_type: data_type::FLOAT,
                    raw_data: 1.5f32
                        .to_le_bytes()
                        .iter()
                        .chain(2.5f32.to_le_bytes().iter())
                        .chain(3.5f32.to_le_bytes().iter())
                        .chain((-4.5f32).to_le_bytes().iter())
                        .copied()
                        .collect(),
                    ..Default::default()
                }],
                input: vec![ValueInfoProto::tensor("x", data_type::FLOAT, &[1, 4])],
                output: vec![ValueInfoProto::tensor("y", data_type::FLOAT, &[1, 4])],
                ..Default::default()
            }),
        };
        let bytes = model.encode();
        let back = ModelProto::decode(&bytes).unwrap();
        assert_eq!(back.ir_version, 8);
        assert_eq!(back.opset_import, vec![(String::new(), 13)]);
        let g = back.graph.unwrap();
        assert_eq!(g.name, "g");
        assert_eq!(g.node.len(), 1);
        assert_eq!(g.node[0].op_type, "Relu");
        assert_eq!(g.node[0].attribute.len(), 3);
        assert_eq!(g.node[0].attribute[0].f, 0.5);
        assert_eq!(g.node[0].attribute[1].ints, vec![-1, 2]);
        assert_eq!(g.node[0].attribute[2].s, b"nearest".to_vec());
        assert_eq!(g.initializer[0].dims, vec![2, 2]);
        assert_eq!(g.initializer[0].raw_data.len(), 16);
        assert_eq!(
            g.input[0].tensor_type,
            Some((data_type::FLOAT, vec![Dim::Value(1), Dim::Value(4)]))
        );
    }

    #[test]
    fn symbolic_dims_decode_as_params() {
        let v = ValueInfoProto {
            name: "x".into(),
            tensor_type: Some((
                data_type::FLOAT,
                vec![Dim::Param("batch".into()), Dim::Value(768)],
            )),
        };
        let mut w = WireWriter::new();
        w.field_message(11, v.encode());
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.key().unwrap();
        let back = ValueInfoProto::decode(r.message().unwrap()).unwrap();
        assert_eq!(
            back.tensor_type,
            Some((
                data_type::FLOAT,
                vec![Dim::Param("batch".into()), Dim::Value(768)]
            ))
        );
    }

    #[test]
    fn unknown_fields_are_skipped() {
        // A NodeProto with an unknown field 99 (varint) interleaved.
        let mut w = WireWriter::new();
        w.field_string(4, "Relu");
        w.field_i64(99, 7);
        w.field_string(2, "out");
        let mut outer = WireWriter::new();
        outer.field_message(1, w);
        let bytes = outer.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.key().unwrap();
        let n = NodeProto::decode(r.message().unwrap()).unwrap();
        assert_eq!(n.op_type, "Relu");
        assert_eq!(n.output, vec!["out".to_string()]);
    }
}
