//! Serializing a `ramiel-ir` [`Graph`] as an ONNX `ModelProto`.
//!
//! The exporter emits the encoding generation the importer round-trips
//! exactly: attribute-form parameters (`Slice`/`Split`/`Squeeze`/… carry
//! their axes as attributes, opset ≤ 9 style), initializers as
//! little-endian `raw_data`, and float attributes as fixed32 bit patterns —
//! so `import(export(g)) == g` bit-for-bit for every supported graph. The
//! one exception to pure attribute form is `Resize`, which has no
//! attribute-form scales in any opset: it is exported in the two-input
//! `(X, scales)` shape with a synthesized constant operand that the
//! importer lifts back out.

use crate::proto::{
    data_type, AttributeProto, GraphProto, ModelProto, NodeProto, TensorProto, ValueInfoProto,
};
use ramiel_ir::tensor_data::Payload;
use ramiel_ir::{DType, Graph, OpKind, TensorData};
use std::path::Path;

/// The default-domain opset version stamped on exported models. The
/// attribute-form encodings used here are all legal at this version except
/// where noted in DESIGN §18 (the importer accepts both generations, so
/// the stamp is informational).
pub const EXPORT_OPSET: i64 = 13;

/// Serialize a graph to ONNX bytes. The graph is assumed validated (as
/// everything out of `GraphBuilder::finish` or the importer is); exporting
/// an ill-formed graph yields a file the importer will refuse with a
/// structured error rather than a panic here.
pub fn export_model(graph: &Graph) -> Vec<u8> {
    to_model_proto(graph).encode()
}

/// Write a graph to `path` as a binary `.onnx` file.
pub fn save_onnx(graph: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, export_model(graph))
}

fn elem_of(dtype: DType) -> i64 {
    match dtype {
        DType::F32 => data_type::FLOAT,
        DType::I64 => data_type::INT64,
        DType::Bool => data_type::BOOL,
    }
}

/// Encode a [`TensorData`] as a `TensorProto` with a little-endian
/// `raw_data` payload (exact bytes, no float formatting round trip).
fn tensor_proto(name: &str, data: &TensorData) -> TensorProto {
    let raw_data = match &data.payload {
        Payload::F32(v) => v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect(),
        Payload::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        Payload::Bool(v) => v.iter().map(|&b| b as u8).collect(),
    };
    TensorProto {
        name: name.to_string(),
        dims: data.shape.iter().map(|&d| d as i64).collect(),
        data_type: elem_of(data.dtype()),
        raw_data,
        ..Default::default()
    }
}

/// Build the decoded proto tree for `graph` (exposed for tests that want
/// to corrupt specific fields before encoding).
pub fn to_model_proto(graph: &Graph) -> ModelProto {
    let mut gp = GraphProto {
        name: graph.name.clone(),
        ..Default::default()
    };

    for inp in &graph.inputs {
        gp.input.push(ValueInfoProto::tensor(
            &inp.name,
            elem_of(inp.dtype),
            &inp.shape,
        ));
    }
    for out in &graph.outputs {
        gp.output.push(match graph.tensor_info(out) {
            Some(info) => ValueInfoProto::tensor(out, elem_of(info.dtype), &info.shape),
            None => ValueInfoProto {
                name: out.clone(),
                tensor_type: None,
            },
        });
    }

    // Constant-node payloads ride as `value` attributes, not initializer
    // entries — emitting both would make the names collide on reimport.
    let constant_outputs: std::collections::HashSet<&str> = graph
        .nodes
        .iter()
        .filter(|n| matches!(n.op, OpKind::Constant))
        .filter_map(|n| n.outputs.first().map(String::as_str))
        .collect();
    for (name, data) in &graph.initializers {
        if !constant_outputs.contains(name.as_str()) {
            gp.initializer.push(tensor_proto(name, data));
        }
    }

    for node in &graph.nodes {
        let mut np = NodeProto {
            name: node.name.clone(),
            op_type: node.op.name().to_string(),
            input: node.inputs.clone(),
            output: node.outputs.clone(),
            ..Default::default()
        };
        encode_attrs(graph, node, &mut np, &mut gp);
        gp.node.push(np);
    }

    ModelProto {
        ir_version: 8,
        producer_name: "ramiel".into(),
        producer_version: env!("CARGO_PKG_VERSION").into(),
        opset_import: vec![(String::new(), EXPORT_OPSET)],
        graph: Some(gp),
    }
}

fn encode_attrs(graph: &Graph, node: &ramiel_ir::Node, np: &mut NodeProto, gp: &mut GraphProto) {
    let a = &mut np.attribute;
    match &node.op {
        OpKind::Conv {
            kernel,
            stride,
            pads,
            groups,
        } => {
            a.push(AttributeProto::ints(
                "kernel_shape",
                vec![kernel.0 as i64, kernel.1 as i64],
            ));
            a.push(AttributeProto::ints(
                "strides",
                vec![stride.0 as i64, stride.1 as i64],
            ));
            a.push(AttributeProto::ints(
                "pads",
                vec![pads.0 as i64, pads.1 as i64, pads.0 as i64, pads.1 as i64],
            ));
            if *groups != 1 {
                a.push(AttributeProto::int("group", *groups as i64));
            }
        }
        OpKind::Gemm { trans_b } => a.push(AttributeProto::int("transB", *trans_b as i64)),
        OpKind::LeakyRelu { alpha } => a.push(AttributeProto::float("alpha", *alpha)),
        OpKind::Clip { min, max } => {
            a.push(AttributeProto::float("min", *min));
            a.push(AttributeProto::float("max", *max));
        }
        OpKind::Softmax { axis } => a.push(AttributeProto::int("axis", *axis as i64)),
        OpKind::BatchNorm { epsilon } | OpKind::LayerNorm { epsilon } => {
            a.push(AttributeProto::float("epsilon", *epsilon))
        }
        OpKind::ReduceMean { axes, keepdims } => {
            a.push(AttributeProto::ints(
                "axes",
                axes.iter().map(|&x| x as i64).collect(),
            ));
            a.push(AttributeProto::int("keepdims", *keepdims as i64));
        }
        OpKind::MaxPool(spec) | OpKind::AveragePool(spec) => {
            a.push(AttributeProto::ints(
                "kernel_shape",
                vec![spec.kernel.0 as i64, spec.kernel.1 as i64],
            ));
            a.push(AttributeProto::ints(
                "strides",
                vec![spec.stride.0 as i64, spec.stride.1 as i64],
            ));
            a.push(AttributeProto::ints(
                "pads",
                vec![
                    spec.pads.0 as i64,
                    spec.pads.1 as i64,
                    spec.pads.0 as i64,
                    spec.pads.1 as i64,
                ],
            ));
            if spec.ceil_mode {
                a.push(AttributeProto::int("ceil_mode", 1));
            }
        }
        OpKind::Concat { axis } | OpKind::Flatten { axis } | OpKind::Gather { axis } => {
            a.push(AttributeProto::int("axis", *axis as i64))
        }
        OpKind::Split { axis, parts } => {
            a.push(AttributeProto::int("axis", *axis as i64));
            a.push(AttributeProto::ints(
                "split",
                parts.iter().map(|&p| p as i64).collect(),
            ));
        }
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } => {
            a.push(AttributeProto::ints("starts", starts.clone()));
            a.push(AttributeProto::ints("ends", ends.clone()));
            a.push(AttributeProto::ints(
                "axes",
                axes.iter().map(|&x| x as i64).collect(),
            ));
            a.push(AttributeProto::ints("steps", steps.clone()));
        }
        OpKind::Transpose { perm } => a.push(AttributeProto::ints(
            "perm",
            perm.iter().map(|&p| p as i64).collect(),
        )),
        OpKind::Unsqueeze { axes } | OpKind::Squeeze { axes } => a.push(AttributeProto::ints(
            "axes",
            axes.iter().map(|&x| x as i64).collect(),
        )),
        OpKind::Resize { scale } => {
            // No attribute-form scales exists in any opset; emit the
            // two-input `(X, scales)` form with a synthesized constant
            // operand (node names are unique, so the derived name is too).
            a.push(AttributeProto::string("mode", "nearest"));
            let scales_name = format!("{}__scales", node.name);
            let scales = TensorData::f32(vec![4], vec![1.0, 1.0, scale.0 as f32, scale.1 as f32]);
            gp.initializer.push(tensor_proto(&scales_name, &scales));
            np.input.push(scales_name);
        }
        OpKind::Pad { pads } => a.push(AttributeProto::ints(
            "pads",
            vec![
                0,
                0,
                pads.0 as i64,
                pads.1 as i64,
                0,
                0,
                pads.2 as i64,
                pads.3 as i64,
            ],
        )),
        OpKind::Cast { to } => a.push(AttributeProto::int("to", elem_of(*to))),
        OpKind::Constant => {
            if let Some(data) = node.outputs.first().and_then(|o| graph.initializers.get(o)) {
                a.push(AttributeProto::tensor("value", tensor_proto("", data)));
            }
        }
        OpKind::ConstantOfShape { value } => {
            let data = TensorData::f32(vec![1], vec![*value]);
            a.push(AttributeProto::tensor("value", tensor_proto("", &data)));
        }
        // Attribute-free operators.
        OpKind::MatMul
        | OpKind::Relu
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Gelu
        | OpKind::Erf
        | OpKind::Sqrt
        | OpKind::Exp
        | OpKind::Neg
        | OpKind::Dropout
        | OpKind::Identity
        | OpKind::Add
        | OpKind::Sub
        | OpKind::Mul
        | OpKind::Div
        | OpKind::Pow
        | OpKind::Equal
        | OpKind::Where
        | OpKind::GlobalAveragePool
        | OpKind::Reshape
        | OpKind::Expand
        | OpKind::Shape => {}
    }
}
