//! The unified model loader: one entry point for every on-disk model
//! encoding the pipeline understands.
//!
//! Dispatch is by content, with the file extension as a tie-breaker:
//!
//! - `.onnx` extension → protobuf import, regardless of content;
//! - a leading `0x08` byte (the protobuf key of `ModelProto.ir_version`,
//!   always the first field serializers emit, and a control character no
//!   text encoding starts with) → protobuf import;
//! - content that is valid UTF-8 starting with `{` → the JSON graph format;
//! - other valid UTF-8 → the human-readable text format;
//! - binary content → protobuf import (an `.onnx` file under any name).
//!
//! This is what lets `ramiel run/check/analyze/profile/serve` take a real
//! `.onnx` path anywhere they previously took a native model file.

use crate::{import_model, OnnxError};
use ramiel_ir::{Graph, IrError};
use std::path::Path;

/// A failure from [`load_model`], tagged by which decoder ran.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io { path: String, reason: String },
    /// The content dispatched to the ONNX importer and failed there
    /// (carries the structured `ONNX-*` code).
    Onnx(OnnxError),
    /// The content dispatched to the native JSON / text decoder and
    /// failed there.
    Native(IrError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, reason } => write!(f, "cannot read `{path}`: {reason}"),
            LoadError::Onnx(e) => write!(f, "{e}"),
            LoadError::Native(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<OnnxError> for LoadError {
    fn from(e: OnnxError) -> Self {
        LoadError::Onnx(e)
    }
}

/// Load a model file of any supported encoding (see module docs for the
/// dispatch rules). ONNX imports come back validated, shape-inferred and
/// verifier-clean; JSON/text graphs are returned as stored, matching the
/// previous `model_file::load` contract (callers that distrust the source
/// run `ramiel check`).
pub fn load_model(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| LoadError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    })?;
    let is_onnx_ext = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("onnx"));
    // 0x08 is the `ir_version` field key — the ONNX magic in practice, and
    // a control byte no JSON/text model starts with.
    if is_onnx_ext || bytes.first() == Some(&0x08) {
        return Ok(import_model(&bytes)?);
    }
    match std::str::from_utf8(&bytes) {
        Ok(text) if text.trim_start().starts_with('{') => {
            ramiel_ir::model_file::from_json(text).map_err(LoadError::Native)
        }
        Ok(text) => ramiel_ir::text_format::from_text(text).map_err(LoadError::Native),
        // Binary under a non-.onnx name: protobuf is the only binary
        // encoding we have, so route it to the importer (whose ONNX-WIRE
        // errors identify junk files precisely).
        Err(_) => Ok(import_model(&bytes)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("x", DType::F32, vec![1, 4]);
        let y = b.op("act", ramiel_ir::OpKind::Relu, vec![x]);
        b.output(&y);
        b.finish().unwrap()
    }

    #[test]
    fn dispatches_all_three_encodings() {
        let g = tiny();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let json = dir.join(format!("ramiel_loader_{pid}.json"));
        let text = dir.join(format!("ramiel_loader_{pid}.rmodel"));
        let onnx = dir.join(format!("ramiel_loader_{pid}.onnx"));
        ramiel_ir::model_file::save(&g, &json).unwrap();
        ramiel_ir::model_file::save(&g, &text).unwrap();
        crate::save_onnx(&g, &onnx).unwrap();
        assert_eq!(load_model(&json).unwrap(), g);
        assert_eq!(load_model(&text).unwrap(), g);
        assert_eq!(load_model(&onnx).unwrap(), g);
        for p in [json, text, onnx] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn binary_without_extension_routes_to_onnx() {
        let g = tiny();
        let path = std::env::temp_dir().join(format!("ramiel_loader_noext_{}", std::process::id()));
        std::fs::write(&path, crate::export_model(&g)).unwrap();
        assert_eq!(load_model(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_model("/nonexistent/ramiel/model.onnx"),
            Err(LoadError::Io { .. })
        ));
    }
}
