//! # ramiel-onnx
//!
//! Real ONNX ingestion for the Ramiel pipeline, with zero heavyweight
//! dependencies: a handwritten protobuf wire-format reader/writer
//! ([`wire`]), the decoded ONNX message subset ([`proto`]), an importer
//! that lowers `ModelProto` onto the `ramiel-ir` [`Graph`]/`OpKind`
//! vocabulary ([`import`]), the matching exporter ([`export`]), and a
//! unified model loader ([`loader`]) that sniffs JSON / text-format /
//! binary `.onnx` files behind one entry point.
//!
//! Every import is routed through `ir::validate`, `ir::shape::infer_shapes`
//! and `ramiel-verify`, so untrusted `.onnx` files get the same RV-coded
//! diagnostics as natively built models. Anything the importer cannot
//! express fails with a structured `ONNX-*` error naming the operator and
//! node — never a panic, never a silently wrong graph.

pub mod export;
pub mod import;
pub mod loader;
pub mod proto;
pub mod wire;

pub use export::{export_model, save_onnx};
pub use import::import_model;
pub use loader::{load_model, LoadError};

use ramiel_ir::Graph;

/// Structured ONNX ingestion failure. Every variant maps to a stable
/// `ONNX-*` code (see [`OnnxError::code`]) so scripts and tests can match
/// on failure class without parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub enum OnnxError {
    /// Protobuf wire-format decode failure (truncation, bad varint, bogus
    /// length) at an absolute byte offset in the file.
    Wire { offset: usize, reason: String },
    /// The model decoded but is not something we can ingest at the model
    /// level (no graph, missing output names, duplicate tensor names, …).
    Model { reason: String },
    /// An operator outside the supported subset, named together with the
    /// node carrying it.
    UnsupportedOp { op: String, node: String },
    /// A supported operator with attributes (or constant-input forms) the
    /// importer cannot express in the IR.
    Attr {
        op: String,
        node: String,
        reason: String,
    },
    /// A tensor element type outside {float32, int64, bool}.
    Dtype { context: String, data_type: i64 },
    /// A malformed initializer / constant tensor (element count vs dims
    /// mismatch, negative dims, missing payload).
    Tensor { name: String, reason: String },
    /// A value-info shape the static IR cannot hold (symbolic dimensions,
    /// negative extents).
    Shape { name: String, reason: String },
    /// The imported graph failed `ir::validate` / shape inference.
    Validate { reason: String },
    /// The imported graph produced error-severity `ramiel-verify`
    /// diagnostics (the first is quoted; `count` is the total).
    Verify { count: usize, first: String },
}

impl OnnxError {
    /// Stable machine-readable failure class.
    pub fn code(&self) -> &'static str {
        match self {
            OnnxError::Wire { .. } => "ONNX-WIRE",
            OnnxError::Model { .. } => "ONNX-MODEL",
            OnnxError::UnsupportedOp { .. } => "ONNX-UNSUPPORTED-OP",
            OnnxError::Attr { .. } => "ONNX-ATTR",
            OnnxError::Dtype { .. } => "ONNX-DTYPE",
            OnnxError::Tensor { .. } => "ONNX-TENSOR",
            OnnxError::Shape { .. } => "ONNX-SHAPE",
            OnnxError::Validate { .. } => "ONNX-VALIDATE",
            OnnxError::Verify { .. } => "ONNX-VERIFY",
        }
    }
}

impl std::fmt::Display for OnnxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            OnnxError::Wire { offset, reason } => {
                write!(f, "protobuf decode failed at byte {offset}: {reason}")
            }
            OnnxError::Model { reason } => write!(f, "{reason}"),
            OnnxError::UnsupportedOp { op, node } => {
                write!(f, "unsupported operator `{op}` at node `{node}`")
            }
            OnnxError::Attr { op, node, reason } => {
                write!(f, "`{op}` node `{node}`: {reason}")
            }
            OnnxError::Dtype { context, data_type } => write!(
                f,
                "{context}: unsupported tensor element type {data_type} (supported: float32=1, int64=7, bool=9)"
            ),
            OnnxError::Tensor { name, reason } => {
                write!(f, "malformed tensor `{name}`: {reason}")
            }
            OnnxError::Shape { name, reason } => {
                write!(f, "tensor `{name}`: {reason}")
            }
            OnnxError::Validate { reason } => {
                write!(f, "imported graph failed IR validation: {reason}")
            }
            OnnxError::Verify { count, first } => {
                write!(f, "imported graph has {count} verifier error(s), first: {first}")
            }
        }
    }
}

impl std::error::Error for OnnxError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, OnnxError>;

/// Round-trip helper used by tests and CI: export `graph` to ONNX bytes and
/// import them back through the full validate/verify pipeline.
pub fn round_trip(graph: &Graph) -> Result<Graph> {
    import_model(&export_model(graph))
}
