//! Lowering a decoded ONNX `ModelProto` onto the `ramiel-ir` graph.
//!
//! The importer covers the operator subset the IR models (the ops exercised
//! by the paper's eight topologies plus the shape-computation scaffolding
//! ONNX exporters emit around them). It accepts both encoding generations
//! for operators whose parameters migrated from attributes to constant
//! inputs across opsets (`Clip`, `Slice`, `Split`, `Squeeze`, `Unsqueeze`,
//! `ReduceMean`, `Resize`, `Pad`): constant-input forms are *lifted* back
//! into IR attributes, the lifted operands are dropped from the node, and
//! initializers referenced only by lifted operands are pruned.
//!
//! Anything outside the subset fails with a structured [`OnnxError`] naming
//! the operator and node. Every successful import is pushed through
//! `ir::validate`, `ir::shape::infer_shapes` and `ramiel_verify::verify_graph`,
//! so an imported file meets exactly the invariants natively built graphs do.

use crate::proto::{attr_type, data_type, AttributeProto, Dim, ModelProto, NodeProto, TensorProto};
use crate::{OnnxError, Result};
use ramiel_ir::tensor_data::Payload;
use ramiel_ir::{DType, Graph, OpKind, PoolSpec, TensorData, TensorInfo};
use ramiel_verify::Severity;
use std::collections::{BTreeMap, HashSet};

/// Decode ONNX bytes and lower them to a validated, shape-inferred,
/// verifier-clean [`Graph`].
pub fn import_model(bytes: &[u8]) -> Result<Graph> {
    let model = ModelProto::decode(bytes)?;
    import_graph(&model)
}

/// Lower an already-decoded [`ModelProto`] (see [`import_model`]).
pub fn import_graph(model: &ModelProto) -> Result<Graph> {
    let gp = model.graph.as_ref().ok_or_else(|| OnnxError::Model {
        reason: "model has no graph".into(),
    })?;
    let opset = model
        .opset_import
        .iter()
        .find(|(domain, _)| domain.is_empty() || domain == "ai.onnx")
        .map(|&(_, v)| v)
        .unwrap_or(13);

    let mut graph = Graph::new(if gp.name.is_empty() {
        "onnx-model"
    } else {
        gp.name.as_str()
    });

    for t in &gp.initializer {
        let data = tensor_data(t)?;
        if graph.initializers.insert(t.name.clone(), data).is_some() {
            return Err(OnnxError::Model {
                reason: format!("duplicate initializer `{}`", t.name),
            });
        }
    }

    // ONNX graph inputs include initializers (pre-IR-v4 style); runtime
    // inputs are the ones without a constant payload.
    for vi in &gp.input {
        if graph.initializers.contains_key(&vi.name) {
            continue;
        }
        let (elem, dims) = vi.tensor_type.as_ref().ok_or_else(|| OnnxError::Shape {
            name: vi.name.clone(),
            reason: "graph input has no tensor type".into(),
        })?;
        let dtype = dtype_of(*elem, &format!("graph input `{}`", vi.name))?;
        let mut shape = Vec::with_capacity(dims.len());
        for d in dims {
            match d {
                Dim::Value(v) if *v > 0 => shape.push(*v as usize),
                Dim::Value(v) => {
                    return Err(OnnxError::Shape {
                        name: vi.name.clone(),
                        reason: format!("non-positive dimension {v} (shapes must be fully static)"),
                    })
                }
                Dim::Param(p) => {
                    return Err(OnnxError::Shape {
                        name: vi.name.clone(),
                        reason: format!(
                            "symbolic dimension `{p}` — this IR requires fully static shapes; \
                             freeze the batch size before importing"
                        ),
                    })
                }
            }
        }
        graph.inputs.push(TensorInfo::new(&vi.name, dtype, shape));
    }

    let mut used_names: HashSet<String> = gp
        .node
        .iter()
        .filter(|n| !n.name.is_empty())
        .map(|n| n.name.clone())
        .collect();
    for (i, n) in gp.node.iter().enumerate() {
        let name = node_name(n, i, &mut used_names);
        let lowered = lower_node(n, &name, opset, &graph.initializers)?;
        let outputs: Vec<String> = n.output.iter().filter(|o| !o.is_empty()).cloned().collect();
        let expected = lowered.op.num_outputs();
        if outputs.len() != expected {
            return Err(OnnxError::Attr {
                op: n.op_type.clone(),
                node: name,
                reason: format!(
                    "{} output(s) where the IR form takes {expected} \
                     (training/mask outputs are not supported)",
                    outputs.len()
                ),
            });
        }
        if let Some(value) = lowered.constant_payload {
            let out = outputs[0].clone();
            if graph.initializers.insert(out.clone(), value).is_some() {
                return Err(OnnxError::Model {
                    reason: format!("Constant node `{name}` redefines initializer `{out}`"),
                });
            }
        }
        graph.push_node(name, lowered.op, lowered.inputs, outputs);
    }

    if gp.output.is_empty() {
        return Err(OnnxError::Model {
            reason: "graph declares no outputs".into(),
        });
    }
    graph.outputs = gp.output.iter().map(|o| o.name.clone()).collect();

    // Initializers that only fed lifted constant-input operands are no
    // longer referenced; drop them. (Serialized value_info is deliberately
    // ignored — shapes are re-derived below, so stale or hostile shape
    // annotations in the file cannot skew the pipeline.)
    graph.prune_dangling_metadata();

    ramiel_ir::validate::validate(&graph).map_err(|e| OnnxError::Validate {
        reason: e.to_string(),
    })?;
    ramiel_ir::shape::infer_shapes(&mut graph).map_err(|e| OnnxError::Validate {
        reason: e.to_string(),
    })?;
    let errors: Vec<_> = ramiel_verify::verify_graph(&graph)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if let Some(first) = errors.first() {
        return Err(OnnxError::Verify {
            count: errors.len(),
            first: first.to_string(),
        });
    }
    Ok(graph)
}

fn node_name(n: &NodeProto, index: usize, used: &mut HashSet<String>) -> String {
    if !n.name.is_empty() {
        // Duplicates among explicit names are a model error; leave them for
        // `ir::validate` to report with a proper diagnostic.
        return n.name.clone();
    }
    let mut candidate = format!("{}_{}", n.op_type, index);
    while used.contains(&candidate) {
        candidate.push('_');
    }
    used.insert(candidate.clone());
    candidate
}

/// Map an ONNX `TensorProto.DataType` onto the IR element types.
fn dtype_of(elem: i64, context: &str) -> Result<DType> {
    match elem {
        data_type::FLOAT => Ok(DType::F32),
        data_type::INT64 => Ok(DType::I64),
        data_type::BOOL => Ok(DType::Bool),
        other => Err(OnnxError::Dtype {
            context: context.to_string(),
            data_type: other,
        }),
    }
}

/// Decode a `TensorProto` into a checked [`TensorData`] (no panicking
/// constructors — every mismatch is a structured `ONNX-TENSOR` error).
pub(crate) fn tensor_data(t: &TensorProto) -> Result<TensorData> {
    let err = |reason: String| OnnxError::Tensor {
        name: if t.name.is_empty() {
            "<anonymous>".into()
        } else {
            t.name.clone()
        },
        reason,
    };
    let mut shape = Vec::with_capacity(t.dims.len());
    for &d in &t.dims {
        if d < 0 {
            return Err(err(format!("negative dimension {d}")));
        }
        shape.push(d as usize);
    }
    let numel: usize = shape.iter().product();
    let dtype = dtype_of(t.data_type, "initializer")?;
    let payload = match dtype {
        DType::F32 => {
            let data: Vec<f32> = if !t.raw_data.is_empty() {
                if t.raw_data.len() != numel * 4 {
                    return Err(err(format!(
                        "raw_data holds {} bytes, shape {:?} needs {}",
                        t.raw_data.len(),
                        shape,
                        numel * 4
                    )));
                }
                t.raw_data
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect()
            } else {
                t.float_data.clone()
            };
            if data.len() != numel {
                return Err(err(format!(
                    "{} float element(s) for shape {:?} ({} expected)",
                    data.len(),
                    shape,
                    numel
                )));
            }
            Payload::F32(data)
        }
        DType::I64 => {
            let data: Vec<i64> = if !t.raw_data.is_empty() {
                if t.raw_data.len() != numel * 8 {
                    return Err(err(format!(
                        "raw_data holds {} bytes, shape {:?} needs {}",
                        t.raw_data.len(),
                        shape,
                        numel * 8
                    )));
                }
                t.raw_data
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect()
            } else {
                t.int64_data.clone()
            };
            if data.len() != numel {
                return Err(err(format!(
                    "{} int64 element(s) for shape {:?} ({} expected)",
                    data.len(),
                    shape,
                    numel
                )));
            }
            Payload::I64(data)
        }
        DType::Bool => {
            // Bools arrive as raw bytes or (per the proto comments) packed
            // into int32_data.
            let data: Vec<bool> = if !t.raw_data.is_empty() {
                t.raw_data.iter().map(|&b| b != 0).collect()
            } else {
                t.int32_data.iter().map(|&b| b != 0).collect()
            };
            if data.len() != numel {
                return Err(err(format!(
                    "{} bool element(s) for shape {:?} ({} expected)",
                    data.len(),
                    shape,
                    numel
                )));
            }
            Payload::Bool(data)
        }
    };
    Ok(TensorData { shape, payload })
}

/// The result of lowering one ONNX node: the IR operator, the surviving
/// runtime inputs (constant-form operands lifted into attributes are
/// removed), and — for `Constant` — the payload to install in the
/// initializer table under the node's output name.
struct Lowered {
    op: OpKind,
    inputs: Vec<String>,
    constant_payload: Option<TensorData>,
}

impl Lowered {
    fn new(op: OpKind, inputs: Vec<String>) -> Lowered {
        Lowered {
            op,
            inputs,
            constant_payload: None,
        }
    }
}

/// Attribute accessor bound to one node, producing `ONNX-ATTR` errors that
/// name the operator and node.
struct Attrs<'a> {
    op: &'a str,
    node: &'a str,
    list: &'a [AttributeProto],
}

impl<'a> Attrs<'a> {
    fn err(&self, reason: impl Into<String>) -> OnnxError {
        OnnxError::Attr {
            op: self.op.to_string(),
            node: self.node.to_string(),
            reason: reason.into(),
        }
    }

    fn get(&self, name: &str) -> Option<&'a AttributeProto> {
        self.list.iter().find(|a| a.name == name)
    }

    fn check_type(&self, a: &AttributeProto, want: i64, what: &str) -> Result<()> {
        // Old writers may omit the type tag; only a conflicting tag fails.
        if a.r#type != 0 && a.r#type != want {
            return Err(self.err(format!(
                "attribute `{}` has type {} where {what} was expected",
                a.name, a.r#type
            )));
        }
        Ok(())
    }

    fn i(&self, name: &str, default: i64) -> Result<i64> {
        match self.get(name) {
            None => Ok(default),
            Some(a) => {
                self.check_type(a, attr_type::INT, "an int")?;
                Ok(a.i)
            }
        }
    }

    fn f(&self, name: &str, default: f32) -> Result<f32> {
        match self.get(name) {
            None => Ok(default),
            Some(a) => {
                self.check_type(a, attr_type::FLOAT, "a float")?;
                Ok(a.f)
            }
        }
    }

    fn s(&self, name: &str, default: &str) -> Result<String> {
        match self.get(name) {
            None => Ok(default.to_string()),
            Some(a) => {
                self.check_type(a, attr_type::STRING, "a string")?;
                String::from_utf8(a.s.clone())
                    .map_err(|_| self.err(format!("attribute `{name}` is not UTF-8")))
            }
        }
    }

    fn ints(&self, name: &str) -> Result<Option<Vec<i64>>> {
        match self.get(name) {
            None => Ok(None),
            Some(a) => {
                self.check_type(a, attr_type::INTS, "an int list")?;
                Ok(Some(a.ints.clone()))
            }
        }
    }

    fn require_ints(&self, name: &str) -> Result<Vec<i64>> {
        self.ints(name)?
            .ok_or_else(|| self.err(format!("missing required attribute `{name}`")))
    }

    fn tensor(&self, name: &str) -> Result<Option<&'a TensorProto>> {
        match self.get(name) {
            None => Ok(None),
            Some(a) => {
                self.check_type(a, attr_type::TENSOR, "a tensor")?;
                a.t.as_ref()
                    .map(Some)
                    .ok_or_else(|| self.err(format!("attribute `{name}` has no tensor payload")))
            }
        }
    }

    /// Reject any attribute not in `handled` ∪ `ignorable` — an unknown
    /// attribute may change semantics, and a silently wrong graph is worse
    /// than a refused import.
    fn reject_unknown(&self, handled: &[&str], ignorable: &[&str]) -> Result<()> {
        for a in self.list {
            if !handled.contains(&a.name.as_str()) && !ignorable.contains(&a.name.as_str()) {
                return Err(self.err(format!("unhandled attribute `{}`", a.name)));
            }
        }
        Ok(())
    }
}

/// Optional input at `idx`: `None` when absent or the empty-string
/// "omitted operand" placeholder.
fn opt_input(n: &NodeProto, idx: usize) -> Option<&str> {
    n.input
        .get(idx)
        .map(String::as_str)
        .filter(|s| !s.is_empty())
}

/// Resolve the optional input at `idx` to its constant payload, for
/// operators whose parameters travel as constant-input operands in newer
/// opsets. A non-constant operand in such a position is a structured error.
fn const_input<'g>(
    n: &NodeProto,
    idx: usize,
    what: &str,
    inits: &'g BTreeMap<String, TensorData>,
    attrs: &Attrs,
) -> Result<Option<&'g TensorData>> {
    match opt_input(n, idx) {
        None => Ok(None),
        Some(name) => inits.get(name).map(Some).ok_or_else(|| {
            attrs.err(format!(
                "{what} operand `{name}` must be a constant initializer \
                 (runtime-computed {what} is not supported)"
            ))
        }),
    }
}

fn const_i64s(
    n: &NodeProto,
    idx: usize,
    what: &str,
    inits: &BTreeMap<String, TensorData>,
    attrs: &Attrs,
) -> Result<Option<Vec<i64>>> {
    match const_input(n, idx, what, inits, attrs)? {
        None => Ok(None),
        Some(t) => t
            .as_i64()
            .map(|v| Some(v.to_vec()))
            .ok_or_else(|| attrs.err(format!("{what} operand must be an int64 tensor"))),
    }
}

fn const_scalar_f32(
    n: &NodeProto,
    idx: usize,
    what: &str,
    inits: &BTreeMap<String, TensorData>,
    attrs: &Attrs,
) -> Result<Option<f32>> {
    match const_input(n, idx, what, inits, attrs)? {
        None => Ok(None),
        Some(t) => match t.as_f32() {
            Some([v]) => Ok(Some(*v)),
            _ => Err(attrs.err(format!("{what} operand must be a scalar float"))),
        },
    }
}

/// `(kernel, stride, pads, ceil_mode)` shared by Conv and the pooling ops.
type Spatial2d = ((usize, usize), (usize, usize), (usize, usize), bool);

/// ONNX 2-D `pads` are `[begin_h, begin_w, end_h, end_w]`; the IR holds
/// symmetric pads, so asymmetric padding is refused.
fn spatial_2d(attrs: &Attrs) -> Result<Spatial2d> {
    let kernel = attrs.require_ints("kernel_shape")?;
    let [kh, kw] = kernel[..] else {
        return Err(attrs.err(format!(
            "kernel_shape has {} dims; only 2-D spatial operators are supported",
            kernel.len()
        )));
    };
    let strides = attrs.ints("strides")?.unwrap_or_else(|| vec![1, 1]);
    let [sh, sw] = strides[..] else {
        return Err(attrs.err("strides must have 2 entries"));
    };
    let pads = attrs.ints("pads")?.unwrap_or_else(|| vec![0, 0, 0, 0]);
    let [pt, pl, pb, pr] = pads[..] else {
        return Err(attrs.err("pads must have 4 entries for a 2-D operator"));
    };
    if pt != pb || pl != pr {
        return Err(attrs.err(format!(
            "asymmetric pads [{pt}, {pl}, {pb}, {pr}] are not supported"
        )));
    }
    if let Some(d) = attrs.ints("dilations")? {
        if d.iter().any(|&x| x != 1) {
            return Err(attrs.err(format!("dilations {d:?} are not supported")));
        }
    }
    let auto_pad = attrs.s("auto_pad", "NOTSET")?;
    if auto_pad != "NOTSET" {
        return Err(attrs.err(format!(
            "auto_pad `{auto_pad}` is not supported; use explicit pads"
        )));
    }
    let non_negative = |v: i64, what: &str| -> Result<usize> {
        usize::try_from(v).map_err(|_| attrs.err(format!("negative {what} {v}")))
    };
    let ceil_mode = attrs.i("ceil_mode", 0)? != 0;
    Ok((
        (non_negative(kh, "kernel")?, non_negative(kw, "kernel")?),
        (non_negative(sh, "stride")?, non_negative(sw, "stride")?),
        (non_negative(pt, "pad")?, non_negative(pl, "pad")?),
        ceil_mode,
    ))
}

fn lower_node(
    n: &NodeProto,
    name: &str,
    opset: i64,
    inits: &BTreeMap<String, TensorData>,
) -> Result<Lowered> {
    if !n.domain.is_empty() && n.domain != "ai.onnx" {
        return Err(OnnxError::UnsupportedOp {
            op: format!("{}::{}", n.domain, n.op_type),
            node: name.to_string(),
        });
    }
    let attrs = Attrs {
        op: &n.op_type,
        node: name,
        list: &n.attribute,
    };
    let all_inputs = || n.input.clone();
    let first_input = || n.input.first().cloned().into_iter().collect::<Vec<_>>();

    let lowered = match n.op_type.as_str() {
        // ---- convolution / linear algebra ----------------------------------
        "Conv" => {
            let (kernel, stride, pads, ceil) = spatial_2d(&attrs)?;
            if ceil {
                return Err(attrs.err("ceil_mode is not a Conv attribute"));
            }
            let groups = usize::try_from(attrs.i("group", 1)?)
                .map_err(|_| attrs.err("negative group count"))?;
            attrs.reject_unknown(
                &[
                    "kernel_shape",
                    "strides",
                    "pads",
                    "dilations",
                    "auto_pad",
                    "group",
                ],
                &[],
            )?;
            Lowered::new(
                OpKind::Conv {
                    kernel,
                    stride,
                    pads,
                    groups,
                },
                all_inputs(),
            )
        }
        "MatMul" => {
            attrs.reject_unknown(&[], &[])?;
            Lowered::new(OpKind::MatMul, all_inputs())
        }
        "Gemm" => {
            if attrs.f("alpha", 1.0)? != 1.0 || attrs.f("beta", 1.0)? != 1.0 {
                return Err(attrs.err("alpha/beta scaling is not supported (must be 1.0)"));
            }
            if attrs.i("transA", 0)? != 0 {
                return Err(attrs.err("transA is not supported"));
            }
            let trans_b = attrs.i("transB", 0)? != 0;
            attrs.reject_unknown(&["alpha", "beta", "transA", "transB"], &[])?;
            Lowered::new(OpKind::Gemm { trans_b }, all_inputs())
        }

        // ---- activations / unary elementwise -------------------------------
        "Relu" | "Sigmoid" | "Tanh" | "Erf" | "Sqrt" | "Exp" | "Neg" | "Identity" => {
            attrs.reject_unknown(&[], &[])?;
            let op = match n.op_type.as_str() {
                "Relu" => OpKind::Relu,
                "Sigmoid" => OpKind::Sigmoid,
                "Tanh" => OpKind::Tanh,
                "Erf" => OpKind::Erf,
                "Sqrt" => OpKind::Sqrt,
                "Exp" => OpKind::Exp,
                "Neg" => OpKind::Neg,
                _ => OpKind::Identity,
            };
            Lowered::new(op, all_inputs())
        }
        "LeakyRelu" => {
            let alpha = attrs.f("alpha", 0.01)?;
            attrs.reject_unknown(&["alpha"], &[])?;
            Lowered::new(OpKind::LeakyRelu { alpha }, all_inputs())
        }
        "Gelu" => {
            let approx = attrs.s("approximate", "none")?;
            if approx != "none" {
                return Err(attrs.err(format!(
                    "approximate=`{approx}` is not supported (erf formulation only)"
                )));
            }
            attrs.reject_unknown(&["approximate"], &[])?;
            Lowered::new(OpKind::Gelu, all_inputs())
        }
        "Clip" => {
            // Opset ≤ 6 carries min/max as attributes; opset ≥ 11 as
            // optional constant inputs. Accept either, lift to attributes.
            let min = match const_scalar_f32(n, 1, "min", inits, &attrs)? {
                Some(v) => v,
                None => attrs.f("min", f32::NEG_INFINITY)?,
            };
            let max = match const_scalar_f32(n, 2, "max", inits, &attrs)? {
                Some(v) => v,
                None => attrs.f("max", f32::INFINITY)?,
            };
            attrs.reject_unknown(&["min", "max"], &[])?;
            Lowered::new(OpKind::Clip { min, max }, first_input())
        }
        "Dropout" => {
            // Inference-mode identity; ratio/seed and the constant
            // ratio/training_mode inputs don't affect the result.
            if let Some(tm) = const_input(n, 2, "training_mode", inits, &attrs)? {
                let training = match &tm.payload {
                    Payload::Bool(v) => v.first().copied().unwrap_or(false),
                    Payload::I64(v) => v.first().is_some_and(|&x| x != 0),
                    Payload::F32(v) => v.first().is_some_and(|&x| x != 0.0),
                };
                if training {
                    return Err(attrs.err("training-mode Dropout is not supported"));
                }
            }
            attrs.reject_unknown(&[], &["ratio", "seed"])?;
            Lowered::new(OpKind::Dropout, first_input())
        }

        // ---- binary / ternary elementwise ----------------------------------
        "Add" | "Sub" | "Mul" | "Div" | "Pow" | "Equal" | "Where" => {
            attrs.reject_unknown(&[], &[])?;
            let op = match n.op_type.as_str() {
                "Add" => OpKind::Add,
                "Sub" => OpKind::Sub,
                "Mul" => OpKind::Mul,
                "Div" => OpKind::Div,
                "Pow" => OpKind::Pow,
                "Equal" => OpKind::Equal,
                _ => OpKind::Where,
            };
            Lowered::new(op, all_inputs())
        }

        // ---- reductions / normalization ------------------------------------
        "Softmax" => {
            // The pre-13 default axis is 1 with flatten-to-2D semantics; the
            // explicit-axis form is identical across opsets.
            let default_axis = if opset >= 13 { -1 } else { 1 };
            let axis = attrs.i("axis", default_axis)? as isize;
            attrs.reject_unknown(&["axis"], &[])?;
            Lowered::new(OpKind::Softmax { axis }, all_inputs())
        }
        "BatchNormalization" => {
            if attrs.i("training_mode", 0)? != 0 {
                return Err(attrs.err("training-mode BatchNormalization is not supported"));
            }
            if attrs.i("spatial", 1)? != 1 {
                return Err(attrs.err("non-spatial BatchNormalization is not supported"));
            }
            let epsilon = attrs.f("epsilon", 1e-5)?;
            attrs.reject_unknown(&["epsilon", "training_mode", "spatial"], &["momentum"])?;
            Lowered::new(OpKind::BatchNorm { epsilon }, all_inputs())
        }
        "LayerNormalization" => {
            let axis = attrs.i("axis", -1)?;
            if axis != -1 {
                return Err(attrs.err(format!(
                    "axis {axis} is not supported (trailing-axis LayerNormalization only)"
                )));
            }
            let epsilon = attrs.f("epsilon", 1e-5)?;
            attrs.reject_unknown(&["axis", "epsilon"], &["stash_type"])?;
            Lowered::new(OpKind::LayerNorm { epsilon }, all_inputs())
        }
        "ReduceMean" => {
            if attrs.i("noop_with_empty_axes", 0)? != 0 {
                return Err(attrs.err("noop_with_empty_axes is not supported"));
            }
            let axes = match attrs.ints("axes")? {
                Some(v) => v,
                None => const_i64s(n, 1, "axes", inits, &attrs)?.ok_or_else(|| {
                    attrs.err("missing axes (neither attribute nor constant input)")
                })?,
            };
            let keepdims = attrs.i("keepdims", 1)? != 0;
            attrs.reject_unknown(&["axes", "keepdims", "noop_with_empty_axes"], &[])?;
            Lowered::new(
                OpKind::ReduceMean {
                    axes: axes.iter().map(|&a| a as isize).collect(),
                    keepdims,
                },
                first_input(),
            )
        }

        // ---- pooling -------------------------------------------------------
        "MaxPool" | "AveragePool" => {
            let (kernel, stride, pads, ceil_mode) = spatial_2d(&attrs)?;
            if attrs.i("storage_order", 0)? != 0 {
                return Err(attrs.err("column-major storage_order is not supported"));
            }
            if attrs.i("count_include_pad", 0)? != 0 {
                return Err(attrs.err("count_include_pad is not supported"));
            }
            attrs.reject_unknown(
                &[
                    "kernel_shape",
                    "strides",
                    "pads",
                    "dilations",
                    "auto_pad",
                    "ceil_mode",
                    "storage_order",
                    "count_include_pad",
                ],
                &[],
            )?;
            let spec = PoolSpec {
                kernel,
                stride,
                pads,
                ceil_mode,
            };
            let op = if n.op_type == "MaxPool" {
                OpKind::MaxPool(spec)
            } else {
                OpKind::AveragePool(spec)
            };
            Lowered::new(op, all_inputs())
        }
        "GlobalAveragePool" => {
            attrs.reject_unknown(&[], &[])?;
            Lowered::new(OpKind::GlobalAveragePool, all_inputs())
        }

        // ---- data movement -------------------------------------------------
        "Concat" => {
            let axis = attrs
                .get("axis")
                .ok_or_else(|| attrs.err("missing required attribute `axis`"))
                .and_then(|a| {
                    attrs.check_type(a, attr_type::INT, "an int")?;
                    Ok(a.i)
                })? as isize;
            attrs.reject_unknown(&["axis"], &[])?;
            Lowered::new(OpKind::Concat { axis }, all_inputs())
        }
        "Split" => {
            let axis = attrs.i("axis", 0)? as isize;
            let parts = match attrs.ints("split")? {
                Some(v) => v,
                None => const_i64s(n, 1, "split", inits, &attrs)?.ok_or_else(|| {
                    attrs.err(
                        "missing split sizes (implicit equal split is not supported; \
                         provide the `split` attribute or a constant input)",
                    )
                })?,
            };
            let parts: Vec<usize> = parts
                .iter()
                .map(|&p| {
                    usize::try_from(p).map_err(|_| attrs.err(format!("negative split size {p}")))
                })
                .collect::<Result<_>>()?;
            attrs.reject_unknown(&["axis", "split"], &["num_outputs"])?;
            Lowered::new(OpKind::Split { axis, parts }, first_input())
        }
        "Slice" => {
            // Opset ≤ 9: attributes. Opset ≥ 10: `[data, starts, ends,
            // axes?, steps?]` constant inputs.
            let (starts, ends, axes, steps) = if n.input.len() > 1 {
                let starts = const_i64s(n, 1, "starts", inits, &attrs)?
                    .ok_or_else(|| attrs.err("missing starts input"))?;
                let ends = const_i64s(n, 2, "ends", inits, &attrs)?
                    .ok_or_else(|| attrs.err("missing ends input"))?;
                let axes = const_i64s(n, 3, "axes", inits, &attrs)?
                    .unwrap_or_else(|| (0..starts.len() as i64).collect());
                let steps = const_i64s(n, 4, "steps", inits, &attrs)?
                    .unwrap_or_else(|| vec![1; starts.len()]);
                (starts, ends, axes, steps)
            } else {
                let starts = attrs.require_ints("starts")?;
                let ends = attrs.require_ints("ends")?;
                let axes = attrs
                    .ints("axes")?
                    .unwrap_or_else(|| (0..starts.len() as i64).collect());
                let steps = attrs
                    .ints("steps")?
                    .unwrap_or_else(|| vec![1; starts.len()]);
                (starts, ends, axes, steps)
            };
            attrs.reject_unknown(&["starts", "ends", "axes", "steps"], &[])?;
            Lowered::new(
                OpKind::Slice {
                    axes: axes.iter().map(|&a| a as isize).collect(),
                    starts,
                    ends,
                    steps,
                },
                first_input(),
            )
        }
        "Gather" => {
            let axis = attrs.i("axis", 0)? as isize;
            attrs.reject_unknown(&["axis"], &[])?;
            Lowered::new(OpKind::Gather { axis }, all_inputs())
        }
        "Reshape" => {
            if attrs.i("allowzero", 0)? != 0 {
                return Err(attrs.err("allowzero is not supported"));
            }
            attrs.reject_unknown(&["allowzero"], &[])?;
            Lowered::new(OpKind::Reshape, all_inputs())
        }
        "Transpose" => {
            let perm = attrs.require_ints("perm")?;
            let perm: Vec<usize> = perm
                .iter()
                .map(|&p| {
                    usize::try_from(p).map_err(|_| attrs.err(format!("negative perm entry {p}")))
                })
                .collect::<Result<_>>()?;
            attrs.reject_unknown(&["perm"], &[])?;
            Lowered::new(OpKind::Transpose { perm }, all_inputs())
        }
        "Flatten" => {
            let axis = attrs.i("axis", 1)? as isize;
            attrs.reject_unknown(&["axis"], &[])?;
            Lowered::new(OpKind::Flatten { axis }, all_inputs())
        }
        "Unsqueeze" | "Squeeze" => {
            let axes = match attrs.ints("axes")? {
                Some(v) => v,
                None => const_i64s(n, 1, "axes", inits, &attrs)?.ok_or_else(|| {
                    attrs.err("missing axes (neither attribute nor constant input)")
                })?,
            };
            attrs.reject_unknown(&["axes"], &[])?;
            let axes: Vec<isize> = axes.iter().map(|&a| a as isize).collect();
            let op = if n.op_type == "Unsqueeze" {
                OpKind::Unsqueeze { axes }
            } else {
                OpKind::Squeeze { axes }
            };
            Lowered::new(op, first_input())
        }
        "Expand" => {
            attrs.reject_unknown(&[], &[])?;
            Lowered::new(OpKind::Expand, all_inputs())
        }
        "Resize" | "Upsample" => {
            let mode = attrs.s("mode", "nearest")?;
            if mode != "nearest" {
                return Err(attrs.err(format!(
                    "mode `{mode}` is not supported (nearest-neighbour only)"
                )));
            }
            // Opset 10 / Upsample: `[x, scales]`. Opset ≥ 11:
            // `[x, roi?, scales?, sizes?]`. Integer-factor nearest
            // upsampling is invariant to the coordinate-transformation
            // mode, so those attributes are ignorable.
            let scales_data = if n.input.len() == 2 {
                const_input(n, 1, "scales", inits, &attrs)?
            } else {
                if opt_input(n, 3).is_some() {
                    return Err(attrs.err("sizes-driven Resize is not supported; use scales"));
                }
                const_input(n, 2, "scales", inits, &attrs)?
            };
            let scales = scales_data
                .and_then(|t| t.as_f32())
                .ok_or_else(|| attrs.err("missing constant float scales operand"))?;
            let [sn, sc, sh, sw] = scales[..] else {
                return Err(attrs.err(format!(
                    "scales must have 4 entries (NCHW), got {}",
                    scales.len()
                )));
            };
            if sn != 1.0 || sc != 1.0 {
                return Err(attrs.err("batch/channel scaling is not supported"));
            }
            let int_scale = |v: f32| -> Result<usize> {
                if v >= 1.0 && v.fract() == 0.0 {
                    Ok(v as usize)
                } else {
                    Err(attrs.err(format!("non-integer spatial scale {v} is not supported")))
                }
            };
            attrs.reject_unknown(
                &["mode"],
                &[
                    "coordinate_transformation_mode",
                    "nearest_mode",
                    "cubic_coeff_a",
                    "exclude_outside",
                    "extrapolation_value",
                    "antialias",
                ],
            )?;
            Lowered::new(
                OpKind::Resize {
                    scale: (int_scale(sh)?, int_scale(sw)?),
                },
                first_input(),
            )
        }
        "Pad" => {
            let mode = attrs.s("mode", "constant")?;
            if mode != "constant" {
                return Err(attrs.err(format!("mode `{mode}` is not supported")));
            }
            let pads = match attrs.ints("pads")? {
                Some(v) => v,
                None => const_i64s(n, 1, "pads", inits, &attrs)?.ok_or_else(|| {
                    attrs.err("missing pads (neither attribute nor constant input)")
                })?,
            };
            if let Some(v) = const_scalar_f32(n, 2, "constant_value", inits, &attrs)? {
                if v != 0.0 {
                    return Err(attrs.err("non-zero pad value is not supported"));
                }
            }
            if attrs.f("value", 0.0)? != 0.0 {
                return Err(attrs.err("non-zero pad value is not supported"));
            }
            if opt_input(n, 3).is_some() {
                return Err(attrs.err("the axes operand of Pad is not supported"));
            }
            // Rank-4 NCHW only: [n_b, c_b, h_b, w_b, n_e, c_e, h_e, w_e]
            // with zero batch/channel padding.
            let [nb, cb, t, l, ne, ce, b, r] = pads[..] else {
                return Err(attrs.err(format!(
                    "pads must have 8 entries (rank-4 NCHW), got {}",
                    pads.len()
                )));
            };
            if nb != 0 || cb != 0 || ne != 0 || ce != 0 {
                return Err(attrs.err("batch/channel padding is not supported"));
            }
            let u = |v: i64| -> Result<usize> {
                usize::try_from(v).map_err(|_| attrs.err(format!("negative pad {v}")))
            };
            attrs.reject_unknown(&["mode", "pads", "value"], &[])?;
            Lowered::new(
                OpKind::Pad {
                    pads: (u(t)?, u(l)?, u(b)?, u(r)?),
                },
                first_input(),
            )
        }
        "Cast" => {
            let to = attrs
                .get("to")
                .ok_or_else(|| attrs.err("missing required attribute `to`"))
                .and_then(|a| {
                    attrs.check_type(a, attr_type::INT, "an int")?;
                    Ok(a.i)
                })?;
            let to = dtype_of(to, &format!("Cast node `{name}`"))?;
            attrs.reject_unknown(&["to"], &["saturate"])?;
            Lowered::new(OpKind::Cast { to }, all_inputs())
        }

        // ---- constants / shape computation ---------------------------------
        "Constant" => {
            let payload = if let Some(t) = attrs.tensor("value")? {
                tensor_data(t)?
            } else if let Some(a) = attrs.get("value_float") {
                attrs.check_type(a, attr_type::FLOAT, "a float")?;
                TensorData::scalar_f32(a.f)
            } else if let Some(a) = attrs.get("value_int") {
                attrs.check_type(a, attr_type::INT, "an int")?;
                TensorData::i64(vec![], vec![a.i])
            } else if let Some(a) = attrs.get("value_floats") {
                attrs.check_type(a, attr_type::FLOATS, "a float list")?;
                TensorData::f32(vec![a.floats.len()], a.floats.clone())
            } else if let Some(a) = attrs.get("value_ints") {
                attrs.check_type(a, attr_type::INTS, "an int list")?;
                TensorData::vec_i64(a.ints.clone())
            } else {
                return Err(attrs.err(
                    "missing payload (supported: value, value_float, value_int, \
                     value_floats, value_ints)",
                ));
            };
            attrs.reject_unknown(
                &[
                    "value",
                    "value_float",
                    "value_int",
                    "value_floats",
                    "value_ints",
                ],
                &[],
            )?;
            Lowered {
                op: OpKind::Constant,
                inputs: Vec::new(),
                constant_payload: Some(payload),
            }
        }
        "Shape" => {
            if attrs.get("start").is_some() || attrs.get("end").is_some() {
                return Err(attrs.err("Shape slicing (start/end) is not supported"));
            }
            attrs.reject_unknown(&[], &[])?;
            Lowered::new(OpKind::Shape, all_inputs())
        }
        "ConstantOfShape" => {
            let value = match attrs.tensor("value")? {
                None => 0.0,
                Some(t) => {
                    let data = tensor_data(t)?;
                    match data.as_f32() {
                        Some([v]) => *v,
                        _ => {
                            return Err(attrs.err(
                                "value must be a one-element float tensor \
                                 (integer fills are not supported)",
                            ))
                        }
                    }
                }
            };
            attrs.reject_unknown(&["value"], &[])?;
            Lowered::new(OpKind::ConstantOfShape { value }, all_inputs())
        }

        other => {
            return Err(OnnxError::UnsupportedOp {
                op: other.to_string(),
                node: name.to_string(),
            })
        }
    };
    Ok(lowered)
}
