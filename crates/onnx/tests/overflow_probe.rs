use ramiel_onnx::proto::{data_type, GraphProto, ModelProto, NodeProto, TensorProto, ValueInfoProto};

#[test]
fn hostile_dims_product_overflow() {
    // dims whose product overflows u64/usize: (1<<33) * (1<<33) = 1<<66
    let t = TensorProto {
        name: "w".into(),
        dims: vec![1i64 << 33, 1i64 << 33],
        data_type: data_type::FLOAT,
        raw_data: vec![],
        ..Default::default()
    };
    let gp = GraphProto {
        name: "g".into(),
        initializer: vec![t],
        input: vec![ValueInfoProto::tensor("x", data_type::FLOAT, &[1, 4])],
        output: vec![ValueInfoProto::tensor("y", data_type::FLOAT, &[1, 4])],
        node: vec![NodeProto {
            name: "relu".into(),
            op_type: "Relu".into(),
            input: vec!["x".into()],
            output: vec!["y".into()],
            ..Default::default()
        }],
        ..Default::default()
    };
    let m = ModelProto {
        ir_version: 8,
        opset_import: vec![(String::new(), 13)],
        graph: Some(gp),
        ..Default::default()
    };
    let bytes = m.encode();
    let res = ramiel_onnx::import_model(&bytes);
    eprintln!("import result: {:?}", res.as_ref().map(|_| "OK"));
    assert!(res.is_err(), "hostile dims were accepted");
}
