//! Property-based tests for the protobuf wire layer and the ONNX decoder's
//! crash-safety contract: whatever bytes arrive — well-formed, truncated,
//! or bit-flipped — decoding returns `Ok` or a structured error, never
//! panics, and everything the writer emits reads back exactly.

use proptest::prelude::*;
use ramiel_onnx::proto::ModelProto;
use ramiel_onnx::wire::{WireReader, WireWriter};

/// One encodable field for the mixed-message property: (field number, payload).
#[derive(Debug, Clone)]
enum Field {
    I64(i64),
    F32(u32),
    Bytes(Vec<u8>),
    Str(String),
    PackedI64(Vec<i64>),
    PackedF32(Vec<u32>),
}

fn field_strategy() -> impl Strategy<Value = (u64, Field)> {
    let payload = prop_oneof![
        any::<i64>().prop_map(Field::I64),
        any::<u32>().prop_map(Field::F32),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
        prop::collection::vec(any::<u8>(), 0..25)
            .prop_map(|bs| Field::Str(bs.into_iter().map(|b| (32 + b % 95) as char).collect())),
        prop::collection::vec(any::<i64>(), 0..16).prop_map(Field::PackedI64),
        prop::collection::vec(any::<u32>(), 0..16).prop_map(Field::PackedF32),
    ];
    (1u64..536_870_912, payload) // max protobuf field number 2^29 - 1
}

fn encode(fields: &[(u64, Field)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    for (num, f) in fields {
        match f {
            Field::I64(v) => w.field_i64(*num, *v),
            Field::F32(bits) => w.field_f32(*num, f32::from_bits(*bits)),
            Field::Bytes(b) => w.field_bytes(*num, b),
            Field::Str(s) => w.field_string(*num, s),
            Field::PackedI64(vs) => w.field_packed_i64(*num, vs),
            Field::PackedF32(vs) => {
                let floats: Vec<f32> = vs.iter().map(|b| f32::from_bits(*b)).collect();
                w.field_packed_f32(*num, &floats);
            }
        }
    }
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every i64 the writer emits as a varint reads back as itself.
    #[test]
    fn varint_i64_round_trips(v in any::<i64>(), field in 1u64..1000) {
        let mut w = WireWriter::new();
        w.field_i64(field, v);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (num, wt) = r.key().unwrap();
        prop_assert_eq!(num, field);
        let mut out = Vec::new();
        r.repeated_i64(wt, &mut out).unwrap();
        prop_assert_eq!(out, vec![v]);
        prop_assert!(r.is_empty());
    }

    /// Floats round-trip bit-exactly, including NaN payloads and infinities
    /// (arbitrary u32 bit patterns cover them all).
    #[test]
    fn f32_bits_round_trip(bits in any::<u32>()) {
        let mut w = WireWriter::new();
        w.field_f32(7, f32::from_bits(bits));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (_, wt) = r.key().unwrap();
        let mut out = Vec::new();
        r.repeated_f32(wt, &mut out).unwrap();
        prop_assert_eq!(out[0].to_bits(), bits);
    }

    /// Packed repeated scalars read back element-exact.
    #[test]
    fn packed_i64_round_trips(vs in prop::collection::vec(any::<i64>(), 0..64)) {
        let mut w = WireWriter::new();
        w.field_packed_i64(5, &vs);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut out = Vec::new();
        while !r.is_empty() {
            let (num, wt) = r.key().unwrap();
            prop_assert_eq!(num, 5);
            r.repeated_i64(wt, &mut out).unwrap();
        }
        prop_assert_eq!(out, vs); // empty input → no field at all → empty out
    }

    /// A message of arbitrary mixed fields decodes cleanly with a
    /// key/skip loop that consumes the buffer exactly — the unknown-field
    /// path every proto decoder in the crate relies on.
    #[test]
    fn skip_loop_consumes_any_valid_message(fields in prop::collection::vec(field_strategy(), 0..24)) {
        let bytes = encode(&fields);
        let mut r = WireReader::new(&bytes);
        let mut seen = 0usize;
        while !r.is_empty() {
            let (_, wt) = r.key().unwrap();
            r.skip(wt).unwrap();
            seen += 1;
        }
        // Packed fields with no elements are skipped by the writer.
        let nonempty = fields.iter().filter(|(_, f)| !matches!(
            f,
            Field::PackedI64(v) if v.is_empty()
        ) && !matches!(
            f,
            Field::PackedF32(v) if v.is_empty()
        )).count();
        prop_assert_eq!(seen, nonempty);
        prop_assert_eq!(r.offset(), bytes.len());
    }

    /// Truncating a valid message at any point yields an error or a clean
    /// early stop — never a panic, never reading past the end.
    #[test]
    fn truncation_never_panics(fields in prop::collection::vec(field_strategy(), 1..16), cut in any::<usize>()) {
        let bytes = encode(&fields);
        let cut = cut % bytes.len().max(1);
        let short = &bytes[..cut];
        let mut r = WireReader::new(short);
        while !r.is_empty() {
            let Ok((_, wt)) = r.key() else { break };
            if r.skip(wt).is_err() {
                break;
            }
        }
        prop_assert!(r.offset() <= short.len());
    }

    /// `ModelProto::decode` is total over arbitrary bytes: it returns
    /// `Ok` or `Err`, never panics (the fuzz contract for untrusted files).
    #[test]
    fn model_decode_is_total_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ModelProto::decode(&bytes);
    }

    /// Decoding a real exported model with a truncated tail is also total,
    /// and a cut strictly inside the payload is detected as an error
    /// whenever the initializer blob (the bulk of the file) is clipped.
    #[test]
    fn exported_model_truncation_is_total(cut in any::<usize>()) {
        let g = ramiel_models::build(ramiel_models::ModelKind::Squeezenet, &ramiel_models::ModelConfig::tiny());
        let bytes = ramiel_onnx::export_model(&g);
        let cut = cut % bytes.len();
        let _ = ramiel_onnx::import_model(&bytes[..cut]);
    }
}
