//! Abstract shape/dtype interpretation (RV0501, RV0502).
//!
//! Walks the graph in topological order re-running `ir::shape::infer_node`
//! on a scratch clone, so inference failures surface as diagnostics instead
//! of panics or hard errors. Tensors whose shape could not be derived are
//! *poisoned*: every downstream failure caused only by a poisoned input is
//! suppressed, leaving just the root cause in the report.
//!
//! Where inference succeeds, the inferred `TensorInfo` is compared against
//! what the graph already records in `value_info`; a mismatch means some
//! pass rewrote the graph without keeping the metadata honest (RV0502).

use crate::diag::{codes, Diagnostic, Span};
use ramiel_ir::{shape, topo, Graph};
use std::collections::HashSet;

pub fn check_shapes(graph: &Graph) -> Vec<Diagnostic> {
    let Ok(order) = topo::topo_sort(graph) else {
        return Vec::new(); // cyclic graph: RV0001 already covers it
    };
    let mut scratch = graph.clone();
    let mut poisoned: HashSet<String> = HashSet::new();
    let mut diags = Vec::new();

    for id in order {
        let node = graph.nodes[id].clone();
        match shape::infer_node(&scratch, &node) {
            Ok(infos) => {
                // infer_node leaves names empty; pair infos with outputs
                for (out, mut info) in node.outputs.iter().zip(infos) {
                    info.name = out.clone();
                    if let Some(recorded) = graph.value_info.get(out) {
                        if recorded.dtype != info.dtype || recorded.shape != info.shape {
                            diags.push(Diagnostic::error(
                                codes::SHAPE_CONFLICT,
                                Span::Tensor {
                                    name: info.name.clone(),
                                },
                                format!(
                                    "recorded as {:?}{:?} but `{}` ({}) infers {:?}{:?}",
                                    recorded.dtype,
                                    recorded.shape,
                                    node.name,
                                    node.op.name(),
                                    info.dtype,
                                    info.shape
                                ),
                            ));
                        }
                    }
                    scratch.value_info.insert(out.clone(), info);
                }
            }
            Err(e) => {
                let caused_by_poison = node.inputs.iter().any(|t| poisoned.contains(t));
                if !caused_by_poison {
                    diags.push(
                        Diagnostic::warning(
                            codes::SHAPE_UNKNOWN,
                            Span::Node {
                                id,
                                name: node.name.clone(),
                            },
                            format!("shape inference failed: {e}"),
                        )
                        .with_suggestion("downstream shapes derived from this node are unchecked"),
                    );
                }
                poisoned.extend(node.outputs.iter().cloned());
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, Graph, GraphBuilder, OpKind, TensorInfo};

    fn add_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", DType::F32, vec![2, 3]);
        let y = b.input("y", DType::F32, vec![2, 3]);
        let s = b.op("s", OpKind::Add, vec![x, y]);
        let r = b.op("r", OpKind::Relu, vec![s]);
        b.output(&r);
        b.finish().unwrap()
    }

    #[test]
    fn well_shaped_graph_is_clean() {
        assert!(check_shapes(&add_graph()).is_empty());
    }

    #[test]
    fn stale_value_info_is_a_conflict() {
        let mut g = add_graph();
        let out = g.nodes[0].outputs[0].clone();
        g.value_info
            .insert(out.clone(), TensorInfo::new(out, DType::F32, vec![9, 9]));
        let diags = check_shapes(&g);
        assert!(diags.iter().any(|d| d.code == codes::SHAPE_CONFLICT));
    }

    #[test]
    fn failure_reports_root_cause_only() {
        // incompatible Add operands: inference fails at `s`; the downstream
        // Relu failure is suppressed as a cascade. Built by hand because
        // GraphBuilder::finish would reject it outright.
        let mut g = Graph::new("g");
        g.inputs.push(TensorInfo::new("x", DType::F32, vec![2, 3]));
        g.inputs.push(TensorInfo::new("y", DType::F32, vec![5, 7]));
        g.push_node(
            "s",
            OpKind::Add,
            vec!["x".into(), "y".into()],
            vec!["ts".into()],
        );
        g.push_node("r", OpKind::Relu, vec!["ts".into()], vec!["tr".into()]);
        g.outputs.push("tr".into());
        let diags = check_shapes(&g);
        let unknown: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::SHAPE_UNKNOWN)
            .collect();
        assert_eq!(unknown.len(), 1, "{diags:?}");
        assert!(matches!(&unknown[0].span, Span::Node { name, .. } if name == "s"));
    }
}
