//! The verifier's neutral view of a parallel schedule.
//!
//! `ramiel-verify` deliberately depends only on `ramiel-ir`, so it cannot
//! name the clustering types from `ramiel-cluster`. Instead the verifier
//! checks a [`ScheduleView`] — an ordered op list per worker plus the
//! execution policy the runtime will use to replay it. `ramiel-cluster`
//! provides the conversions from `Clustering` / `HyperClustering`.

use ramiel_ir::NodeId;

/// One schedule entry: run `node` for batch element `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    pub batch: usize,
    pub node: NodeId,
}

/// How a worker walks its op list at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Strict program order: the worker blocks on the next op's inputs
    /// before looking at anything later (generated sequential code, plain
    /// cluster replay). Ordering mistakes deadlock.
    InOrder,
    /// The worker runs any op in its list whose inputs have arrived
    /// (the runtime's message-driven hypercluster loop). Ordering mistakes
    /// cost performance, not progress.
    FirstReady,
}

/// A complete parallel schedule: `workers[w]` is worker `w`'s ordered op
/// list over `(batch, node)` instances, replayed under `policy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleView {
    /// Number of batch elements the schedule covers (≥ 1).
    pub batch: usize,
    pub workers: Vec<Vec<Op>>,
    pub policy: ExecPolicy,
}

impl ScheduleView {
    /// Batch-1 view from plain per-worker node lists.
    pub fn single_batch(workers: Vec<Vec<NodeId>>, policy: ExecPolicy) -> Self {
        ScheduleView {
            batch: 1,
            workers: workers
                .into_iter()
                .map(|ns| ns.into_iter().map(|node| Op { batch: 0, node }).collect())
                .collect(),
            policy,
        }
    }

    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn num_ops(&self) -> usize {
        self.workers.iter().map(Vec::len).sum()
    }

    /// worker index of every scheduled instance, or `None` where the lookup
    /// table cannot be built (out-of-range entries — coverage reports those).
    pub(crate) fn worker_of(&self, num_nodes: usize) -> Vec<Option<usize>> {
        let mut table = vec![None; num_nodes * self.batch];
        for (w, ops) in self.workers.iter().enumerate() {
            for op in ops {
                if op.node < num_nodes && op.batch < self.batch {
                    table[op.batch * num_nodes + op.node] = Some(w);
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_batch_builds_batch0_ops() {
        let v = ScheduleView::single_batch(vec![vec![0, 2], vec![1]], ExecPolicy::InOrder);
        assert_eq!(v.batch, 1);
        assert_eq!(v.num_workers(), 2);
        assert_eq!(v.num_ops(), 3);
        assert_eq!(v.workers[0][1], Op { batch: 0, node: 2 });
    }

    #[test]
    fn worker_lookup_table() {
        let v = ScheduleView::single_batch(vec![vec![0, 2], vec![1]], ExecPolicy::FirstReady);
        let t = v.worker_of(3);
        assert_eq!(t, vec![Some(0), Some(1), Some(0)]);
    }
}
