//! Abstract channel execution (RV0401).
//!
//! Replays the schedule against the runtime's channel semantics — sends are
//! asynchronous (unbounded queues, never block), receives block until the
//! producing instance has run — and proves the whole schedule drains. Under
//! [`ExecPolicy::InOrder`] each worker only ever waits on its *next* op;
//! under [`ExecPolicy::FirstReady`] a worker runs any remaining op whose
//! inputs have arrived (the runtime's message-driven loop).
//!
//! On a stall the verifier reports, per blocked worker, the exact blocked
//! receive: which op is waiting, which tensor is missing, and where the
//! producing instance sits (worker + position) — the send/recv pair that
//! can never meet.
//!
//! Only run this after [`crate::coverage`] comes back clean: the simulation
//! assumes every dependence resolves to a scheduled instance.

use crate::diag::{codes, Diagnostic, Span};
use crate::schedule::{ExecPolicy, ScheduleView};
use ramiel_ir::Graph;

pub fn check_execution(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let n = graph.num_nodes();
    let adj = graph.adjacency();
    let total: usize = view.num_ops();
    let mut executed = vec![false; n * view.batch];
    // next-op cursor per worker (InOrder) / remaining flags (FirstReady)
    let mut cursor = vec![0usize; view.num_workers()];
    let mut remaining: Vec<Vec<bool>> = view.workers.iter().map(|o| vec![true; o.len()]).collect();
    let mut done = 0usize;

    let ready = |op: &crate::schedule::Op, executed: &[bool]| {
        adj.preds[op.node]
            .iter()
            .all(|&p| executed[op.batch * n + p])
    };

    loop {
        let mut progress = false;
        for (w, ops) in view.workers.iter().enumerate() {
            match view.policy {
                ExecPolicy::InOrder => {
                    while cursor[w] < ops.len() && ready(&ops[cursor[w]], &executed) {
                        executed[ops[cursor[w]].batch * n + ops[cursor[w]].node] = true;
                        cursor[w] += 1;
                        done += 1;
                        progress = true;
                    }
                }
                ExecPolicy::FirstReady => {
                    for i in 0..ops.len() {
                        if remaining[w][i] && ready(&ops[i], &executed) {
                            remaining[w][i] = false;
                            executed[ops[i].batch * n + ops[i].node] = true;
                            done += 1;
                            progress = true;
                        }
                    }
                }
            }
        }
        if done == total {
            return Vec::new();
        }
        if !progress {
            break;
        }
    }

    // Stalled: report the blocked receive on every stuck worker.
    let worker_of = view.worker_of(n);
    let mut diags = Vec::new();
    for (w, ops) in view.workers.iter().enumerate() {
        let blocked_idx = match view.policy {
            ExecPolicy::InOrder => {
                if cursor[w] >= ops.len() {
                    continue;
                }
                cursor[w]
            }
            ExecPolicy::FirstReady => match (0..ops.len()).find(|&i| remaining[w][i]) {
                Some(i) => i,
                None => continue,
            },
        };
        let op = &ops[blocked_idx];
        let node = &graph.nodes[op.node];
        // the first unsatisfied dependence = the blocked recv
        let missing = adj.preds[op.node]
            .iter()
            .find(|&&p| !executed[op.batch * n + p]);
        let detail = match missing {
            Some(&p) => {
                let tensor = node
                    .inputs
                    .iter()
                    .find(|t| graph.nodes[p].outputs.contains(t))
                    .cloned()
                    .unwrap_or_default();
                let where_ = match worker_of[op.batch * n + p] {
                    Some(pw) => {
                        let ppos = view.workers[pw]
                            .iter()
                            .position(|o| o.batch == op.batch && o.node == p);
                        match ppos {
                            Some(i) => format!("worker {pw} position {i}"),
                            None => format!("worker {pw}"),
                        }
                    }
                    None => "nowhere (unscheduled)".to_string(),
                };
                format!(
                    "blocked receiving tensor `{tensor}` from `{}` (#{p}, batch {}) \
                     scheduled on {where_}",
                    graph.nodes[p].name, op.batch
                )
            }
            None => "blocked with all inputs ready (internal stall)".to_string(),
        };
        diags.push(
            Diagnostic::error(
                codes::CHANNEL_DEADLOCK,
                Span::Op {
                    worker: w,
                    batch: op.batch,
                    node: op.node,
                    name: node.name.clone(),
                },
                format!(
                    "{detail}; {} of {} scheduled ops executed before the stall",
                    done, total
                ),
            )
            .with_suggestion(
                "run `ramiel check` cycle analysis output (RV0201/RV0301) for the root cause",
            ),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Op;
    use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Relu, vec![a.clone()]);
        let q = b.op("q", OpKind::Relu, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        b.finish().unwrap()
    }

    #[test]
    fn valid_two_worker_schedule_drains() {
        let g = diamond();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 3], vec![2]], ExecPolicy::InOrder);
        assert!(check_execution(&g, &v).is_empty());
    }

    #[test]
    fn inverted_in_order_schedule_deadlocks_with_exact_pair() {
        let g = diamond();
        // worker 0 wants j before p: blocks receiving p's output forever.
        let v = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::InOrder);
        let diags = check_execution(&g, &v);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::CHANNEL_DEADLOCK);
        assert!(diags[0].message.contains("`p_1`"), "{}", diags[0].message);
        assert!(diags[0].message.contains("worker 0 position 2"));
    }

    #[test]
    fn first_ready_tolerates_the_same_inversion() {
        let g = diamond();
        let v = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::FirstReady);
        assert!(check_execution(&g, &v).is_empty());
    }

    #[test]
    fn cross_worker_mutual_wait_reports_both_workers() {
        // two independent chains crossed between workers in opposite order
        let mut b = GraphBuilder::new("x");
        let x = b.input("x", DType::F32, vec![2]);
        let a1 = b.op("a1", OpKind::Relu, vec![x.clone()]);
        let a2 = b.op("a2", OpKind::Relu, vec![a1]);
        let b1 = b.op("b1", OpKind::Relu, vec![x]);
        let b2 = b.op("b2", OpKind::Relu, vec![b1]);
        let j = b.op("j", OpKind::Add, vec![a2, b2]);
        b.output(&j);
        let g = b.finish().unwrap();
        // worker 0: a2 then b1 — worker 1: b2 then a1. 0 waits on a1 (w1,
        // behind b2), 1 waits on b1 (w0, behind a2): classic crossed wait.
        let v = ScheduleView {
            batch: 1,
            workers: vec![
                vec![
                    Op { batch: 0, node: 1 },
                    Op { batch: 0, node: 2 },
                    Op { batch: 0, node: 4 },
                ],
                vec![Op { batch: 0, node: 3 }, Op { batch: 0, node: 0 }],
            ],
            policy: ExecPolicy::InOrder,
        };
        let diags = check_execution(&g, &v);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == codes::CHANNEL_DEADLOCK));
    }

    #[test]
    fn interleaved_batches_drain_first_ready() {
        let g = diamond();
        let mut w0 = Vec::new();
        let mut w1 = Vec::new();
        for batch in 0..3 {
            w0.push(Op { batch, node: 0 });
            w0.push(Op { batch, node: 1 });
            w1.push(Op { batch, node: 2 });
            w0.push(Op { batch, node: 3 });
        }
        let v = ScheduleView {
            batch: 3,
            workers: vec![w0, w1],
            policy: ExecPolicy::FirstReady,
        };
        assert!(check_execution(&g, &v).is_empty());
    }
}
