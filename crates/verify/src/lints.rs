//! Advisory lints (RV0601–RV0603): the graph/schedule is sound, but a
//! pipeline stage the paper describes was skipped or left money on the
//! table. Advice never fails `ramiel check`, even under `--deny-warnings`.

use crate::diag::{codes, Diagnostic, Span};
use crate::schedule::ScheduleView;
use ramiel_ir::{Graph, OpKind};
use std::collections::HashSet;

/// RV0601: nodes whose every operand is a compile-time constant — the
/// prune pipeline (`passes::prune`) would fold them away. Aggregated into a
/// single finding with a count and one example.
pub fn lint_foldable_consts(graph: &Graph) -> Vec<Diagnostic> {
    let mut static_tensors: HashSet<&str> = graph.initializers.keys().map(String::as_str).collect();
    let mut foldable: Vec<&str> = Vec::new();
    let Ok(order) = ramiel_ir::topo::topo_sort(graph) else {
        return Vec::new();
    };
    for id in order {
        let node = &graph.nodes[id];
        // `Shape` of any statically-described tensor also folds, matching
        // constfold's "horizontal branch reduction".
        let shape_of_known = matches!(node.op, OpKind::Shape)
            && node.inputs.iter().all(|t| graph.tensor_info(t).is_some());
        let all_static = !node.inputs.is_empty()
            && node
                .inputs
                .iter()
                .all(|t| static_tensors.contains(t.as_str()));
        if (all_static || shape_of_known) && node.op.is_pure() {
            if !matches!(node.op, OpKind::Constant) {
                foldable.push(&node.name);
            }
            static_tensors.extend(node.outputs.iter().map(String::as_str));
        } else if matches!(node.op, OpKind::Constant) {
            // payload lives in the initializer table: output is static
            static_tensors.extend(node.outputs.iter().map(String::as_str));
        }
    }
    if foldable.is_empty() {
        return Vec::new();
    }
    vec![Diagnostic::advice(
        codes::LINT_FOLDABLE_CONST,
        Span::Graph,
        format!(
            "{} node(s) compute compile-time constants (e.g. `{}`)",
            foldable.len(),
            foldable[0]
        ),
    )
    .with_suggestion("run the prune pipeline (constant folding + DCE) before clustering")]
}

/// RV0602: a `BatchNormalization` applied directly to a `Conv` output —
/// `passes::fold_batch_norms` would fuse it into the conv weights.
pub fn lint_unfused_bn(graph: &Graph) -> Vec<Diagnostic> {
    let adj = graph.adjacency();
    let mut diags = Vec::new();
    for node in &graph.nodes {
        if !matches!(node.op, OpKind::BatchNorm { .. }) {
            continue;
        }
        let Some(data) = node.inputs.first() else {
            continue;
        };
        if let Some(&p) = adj.producer_of.get(data) {
            if matches!(graph.nodes[p].op, OpKind::Conv { .. }) {
                diags.push(
                    Diagnostic::advice(
                        codes::LINT_UNFUSED_BN,
                        Span::Node {
                            id: node.id,
                            name: node.name.clone(),
                        },
                        format!(
                            "BatchNormalization follows `{}` (Conv) unfused",
                            graph.nodes[p].name
                        ),
                    )
                    .with_suggestion("run fold_batch_norms to fold it into the conv weights"),
                );
            }
        }
    }
    diags
}

/// RV0603: cheap fan-out nodes (elementwise / shape ops) whose output
/// crosses to other workers — task cloning (`passes::clone_nodes`) would
/// duplicate them and delete the cross-worker messages. Aggregated.
pub fn lint_clone_candidates(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let n = graph.num_nodes();
    let adj = graph.adjacency();
    let worker_of = view.worker_of(n);
    let mut candidates: Vec<&str> = Vec::new();
    for node in &graph.nodes {
        if !(node.op.is_elementwise() || node.op.is_shape_op()) {
            continue;
        }
        if adj.succs[node.id].len() < 2 {
            continue;
        }
        // batch-0 placement is representative for the lint
        let Some(home) = worker_of.get(node.id).copied().flatten() else {
            continue;
        };
        let crosses = adj.succs[node.id].iter().any(|&c| {
            worker_of
                .get(c)
                .copied()
                .flatten()
                .is_some_and(|w| w != home)
        });
        if crosses {
            candidates.push(&node.name);
        }
    }
    if candidates.is_empty() {
        return Vec::new();
    }
    vec![Diagnostic::advice(
        codes::LINT_CLONE_CANDIDATE,
        Span::Graph,
        format!(
            "{} cheap fan-out node(s) feed other workers (e.g. `{}`)",
            candidates.len(),
            candidates[0]
        ),
    )
    .with_suggestion("task cloning would duplicate them per consumer and drop the messages")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ExecPolicy;
    use ramiel_ir::{DType, GraphBuilder, TensorData};

    #[test]
    fn foldable_const_chain_detected_once() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", DType::F32, vec![2]);
        let w = b.init("w", TensorData::f32(vec![2], vec![1.0, 2.0]));
        let c = b.op("c", OpKind::Relu, vec![w]); // foldable
        let c2 = b.op("c2", OpKind::Relu, vec![c]); // foldable (cascade)
        let s = b.op("s", OpKind::Add, vec![x, c2]);
        b.output(&s);
        let g = b.finish().unwrap();
        let diags = lint_foldable_consts(&g);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("2 node(s)"));
        assert!(diags[0].message.contains("`c_0`"));
    }

    #[test]
    fn runtime_only_graph_has_no_foldables() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", DType::F32, vec![2]);
        let r = b.op("r", OpKind::Relu, vec![x]);
        b.output(&r);
        let g = b.finish().unwrap();
        assert!(lint_foldable_consts(&g).is_empty());
    }

    #[test]
    fn conv_bn_pair_detected() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = b.conv(&x, 3, 4, (3, 3), (1, 1), (1, 1), 1);
        let bn = b.batch_norm(&y, 4);
        b.output(&bn);
        let g = b.finish().unwrap();
        let diags = lint_unfused_bn(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::LINT_UNFUSED_BN);
    }

    #[test]
    fn clone_candidate_needs_cross_worker_fanout() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Sigmoid, vec![a.clone()]);
        let q = b.op("q", OpKind::Tanh, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        let g = b.finish().unwrap();
        // fan-out node `a` (id 0) feeds q on the other worker → candidate
        let split = ScheduleView::single_batch(vec![vec![0, 1, 3], vec![2]], ExecPolicy::InOrder);
        let diags = lint_clone_candidates(&g, &split);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`a_0`"));
        // everything on one worker → no candidate
        let mono = ScheduleView::single_batch(vec![vec![0, 1, 2, 3]], ExecPolicy::InOrder);
        assert!(lint_clone_candidates(&g, &mono).is_empty());
    }
}
