//! Partition / coverage checks (RV0101–RV0104): every `(batch, node)`
//! instance must be scheduled exactly once, on exactly one worker.

use crate::diag::{codes, Diagnostic, Span};
use crate::schedule::ScheduleView;
use ramiel_ir::Graph;

pub fn check_coverage(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let n = graph.num_nodes();
    let mut diags = Vec::new();
    // first owner of each in-range instance, for duplicate reporting
    let mut owner: Vec<Option<usize>> = vec![None; n * view.batch];

    for (w, ops) in view.workers.iter().enumerate() {
        if ops.is_empty() {
            diags.push(Diagnostic::warning(
                codes::WORKER_EMPTY,
                Span::Worker { worker: w },
                "worker has no scheduled ops",
            ));
            continue;
        }
        for op in ops {
            if op.node >= n || op.batch >= view.batch {
                diags.push(Diagnostic::error(
                    codes::OP_UNKNOWN,
                    Span::Worker { worker: w },
                    format!(
                        "schedule entry (batch {}, node {}) is out of range: graph has {} nodes, schedule covers batch {}",
                        op.batch, op.node, n, view.batch
                    ),
                ));
                continue;
            }
            let key = op.batch * n + op.node;
            let name = &graph.nodes[op.node].name;
            match owner[key] {
                Some(prev) => diags.push(Diagnostic::error(
                    codes::OP_DUPLICATE,
                    Span::Op {
                        worker: w,
                        batch: op.batch,
                        node: op.node,
                        name: name.clone(),
                    },
                    format!("instance already scheduled on worker {prev}"),
                )),
                None => owner[key] = Some(w),
            }
        }
    }

    for (key, o) in owner.iter().enumerate() {
        if o.is_none() {
            let (batch, node) = (key / n, key % n);
            diags.push(Diagnostic::error(
                codes::OP_MISSING,
                Span::Node {
                    id: node,
                    name: graph.nodes[node].name.clone(),
                },
                format!("instance for batch {batch} is missing from every worker"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ExecPolicy, Op};
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn chain3() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", DType::F32, vec![2]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Relu, vec![a.clone()]);
        let d = b.op("d", OpKind::Relu, vec![c]);
        b.output(&d);
        b.finish().unwrap()
    }

    #[test]
    fn complete_schedule_is_clean() {
        let g = chain3();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::InOrder);
        assert!(check_coverage(&g, &v).is_empty());
    }

    #[test]
    fn missing_duplicate_unknown_and_empty() {
        let g = chain3();
        let v = ScheduleView {
            batch: 1,
            workers: vec![
                vec![Op { batch: 0, node: 0 }, Op { batch: 0, node: 0 }],
                vec![Op { batch: 0, node: 9 }, Op { batch: 2, node: 1 }],
                vec![],
            ],
            policy: ExecPolicy::InOrder,
        };
        let diags = check_coverage(&g, &v);
        let codes_seen: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::OP_DUPLICATE));
        assert!(codes_seen.contains(&codes::OP_UNKNOWN));
        assert!(codes_seen.contains(&codes::WORKER_EMPTY));
        // nodes 1 and 2 (batch 0) never scheduled in-range
        assert_eq!(
            diags.iter().filter(|d| d.code == codes::OP_MISSING).count(),
            2
        );
    }

    #[test]
    fn multi_batch_missing_instance() {
        let g = chain3();
        let mut workers = vec![Vec::new()];
        for node in 0..3 {
            for batch in 0..2 {
                workers[0].push(Op { batch, node });
            }
        }
        workers[0].pop(); // drop (batch 1, node 2)
        let v = ScheduleView {
            batch: 2,
            workers,
            policy: ExecPolicy::FirstReady,
        };
        let diags = check_coverage(&g, &v);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OP_MISSING);
        assert!(diags[0].message.contains("batch 1"));
    }
}
