//! Cycle analysis (RV0201, RV0202).
//!
//! Two graphs matter:
//!
//! - The **schedule graph**: one vertex per scheduled `(batch, node)`
//!   instance, with same-batch dependence edges plus, under
//!   [`ExecPolicy::InOrder`], program-order edges between consecutive ops on
//!   the same worker. A cycle here means the in-order replay provably
//!   deadlocks (RV0201, error).
//! - The **quotient graph**: one vertex per worker, an edge `u → v` for
//!   every cross-worker dependence. A quotient cycle with an *acyclic*
//!   schedule graph still executes — messages just ping-pong between the
//!   workers involved — so it is only a warning (RV0202). This is the
//!   deliberate divergence from "quotient cycle ⇒ deadlock": linear
//!   clustering routinely emits benign quotient cycles.

use crate::diag::{codes, Diagnostic, Span};
use crate::schedule::{ExecPolicy, ScheduleView};
use ramiel_ir::Graph;

pub fn check_cycles(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let n = graph.num_nodes();
    let adj = graph.adjacency();
    let mut diags = Vec::new();

    // ---- schedule graph -------------------------------------------------
    // vertex = batch * n + node (only scheduled instances participate).
    let nv = n * view.batch;
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nv];
    let mut indeg = vec![0usize; nv];
    let mut present = vec![false; nv];
    for ops in &view.workers {
        for op in ops {
            present[op.batch * n + op.node] = true;
        }
    }
    let add_edge = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, u: usize, v: usize| {
        succs[u].push(v);
        indeg[v] += 1;
    };
    for (u, su) in adj.succs.iter().enumerate() {
        for &v in su {
            for b in 0..view.batch {
                let (iu, iv) = (b * n + u, b * n + v);
                if present[iu] && present[iv] {
                    add_edge(&mut succs, &mut indeg, iu, iv);
                }
            }
        }
    }
    if view.policy == ExecPolicy::InOrder {
        for ops in &view.workers {
            for pair in ops.windows(2) {
                let (iu, iv) = (
                    pair[0].batch * n + pair[0].node,
                    pair[1].batch * n + pair[1].node,
                );
                if present[iu] && present[iv] && iu != iv {
                    add_edge(&mut succs, &mut indeg, iu, iv);
                }
            }
        }
    }

    // Kahn's algorithm; leftovers with present[v] form the cyclic core.
    let mut queue: Vec<usize> = (0..nv).filter(|&v| present[v] && indeg[v] == 0).collect();
    let mut done = 0usize;
    let total = present.iter().filter(|&&p| p).count();
    while let Some(u) = queue.pop() {
        done += 1;
        for &v in &succs[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    let schedule_cyclic = done < total;
    if schedule_cyclic {
        let core: Vec<usize> = (0..nv).filter(|&v| present[v] && indeg[v] > 0).collect();
        let sample = sample_cycle(&core, &succs, &indeg);
        let path = sample
            .iter()
            .map(|&v| format!("`{}`(b{})", graph.nodes[v % n].name, v / n))
            .collect::<Vec<_>>()
            .join(" → ");
        diags.push(
            Diagnostic::error(
                codes::SCHEDULE_CYCLE,
                Span::Graph,
                format!(
                    "schedule graph (dependences + per-worker program order) has a cycle \
                     through {} op instance(s), e.g. {path}; in-order replay will deadlock",
                    core.len()
                ),
            )
            .with_suggestion(
                "reorder the ops inside each cluster into a topological order, \
                 or split the clusters involved",
            ),
        );
    }

    // ---- quotient graph -------------------------------------------------
    let worker_of = view.worker_of(n);
    let k = view.num_workers();
    let mut qsucc: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut qindeg = vec![0usize; k];
    for (u, su) in adj.succs.iter().enumerate() {
        for &v in su {
            for b in 0..view.batch {
                let (wu, wv) = (worker_of[b * n + u], worker_of[b * n + v]);
                if let (Some(wu), Some(wv)) = (wu, wv) {
                    if wu != wv && !qsucc[wu].contains(&wv) {
                        qsucc[wu].push(wv);
                        qindeg[wv] += 1;
                    }
                }
            }
        }
    }
    let mut qq: Vec<usize> = (0..k).filter(|&w| qindeg[w] == 0).collect();
    let mut qdone = 0;
    while let Some(u) = qq.pop() {
        qdone += 1;
        for &v in &qsucc[u] {
            qindeg[v] -= 1;
            if qindeg[v] == 0 {
                qq.push(v);
            }
        }
    }
    if qdone < k && !schedule_cyclic {
        let cyclic_workers: Vec<usize> = (0..k).filter(|&w| qindeg[w] > 0).collect();
        diags.push(
            Diagnostic::warning(
                codes::QUOTIENT_CYCLE,
                Span::Graph,
                format!(
                    "cluster-quotient graph has a cycle among workers {cyclic_workers:?}; \
                     execution still progresses, but messages ping-pong between these workers"
                ),
            )
            .with_suggestion("merging the workers involved would remove the round-trips"),
        );
    }

    diags
}

/// Walk successors inside the cyclic core until a vertex repeats, then
/// return the loop portion (short, for the error message).
fn sample_cycle(core: &[usize], succs: &[Vec<usize>], indeg: &[usize]) -> Vec<usize> {
    let Some(&start) = core.first() else {
        return Vec::new();
    };
    let mut path = vec![start];
    let mut seen_at = std::collections::HashMap::new();
    seen_at.insert(start, 0usize);
    let mut cur = start;
    loop {
        // any successor still in the cyclic core
        let Some(&next) = succs[cur].iter().find(|&&v| indeg[v] > 0) else {
            return path;
        };
        if let Some(&i) = seen_at.get(&next) {
            path.push(next);
            return path[i..].to_vec();
        }
        seen_at.insert(next, path.len());
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ExecPolicy;
    use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

    /// in → a → {p, q} → j
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Relu, vec![a.clone()]);
        let q = b.op("q", OpKind::Relu, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        b.finish().unwrap()
    }

    #[test]
    fn clean_two_worker_split_has_no_schedule_cycle() {
        let g = diamond();
        // worker 0: a, p, j — worker 1: q. Quotient: 0→1 (a→q), 1→0 (q→j):
        // a quotient cycle, but the schedule graph is acyclic.
        let v = ScheduleView::single_batch(vec![vec![0, 1, 3], vec![2]], ExecPolicy::InOrder);
        let diags = check_cycles(&g, &v);
        assert!(diags.iter().all(|d| d.code != codes::SCHEDULE_CYCLE));
        assert!(diags.iter().any(|d| d.code == codes::QUOTIENT_CYCLE));
    }

    #[test]
    fn cross_worker_order_inversion_is_a_schedule_cycle() {
        let g = diamond();
        // worker 0: j before p — j needs p (same worker, later) ⇒ cycle
        // through the program-order edge j→p and dependence edge p→j.
        let v = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::InOrder);
        let diags = check_cycles(&g, &v);
        let cyc: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::SCHEDULE_CYCLE)
            .collect();
        assert_eq!(cyc.len(), 1);
        assert!(cyc[0].message.contains("deadlock"));
    }

    #[test]
    fn first_ready_ignores_program_order() {
        let g = diamond();
        // Same inverted list, but first-ready replay skips past j until p is
        // done — no schedule cycle.
        let v = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::FirstReady);
        let diags = check_cycles(&g, &v);
        assert!(diags.iter().all(|d| d.code != codes::SCHEDULE_CYCLE));
    }

    #[test]
    fn single_worker_has_no_quotient_edges() {
        let g = diamond();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 2, 3]], ExecPolicy::InOrder);
        assert!(check_cycles(&g, &v).is_empty());
    }
}
