//! Intra-worker ordering check (RV0301).
//!
//! Under [`ExecPolicy::InOrder`] a worker replays its op list strictly in
//! sequence, so a consumer placed before its same-worker, same-batch
//! producer can never run. (Under `FirstReady` the runtime reorders around
//! it, so the check is skipped there — the cycle analysis still flags the
//! truly unsound cases.)

use crate::diag::{codes, Diagnostic, Span};
use crate::schedule::{ExecPolicy, ScheduleView};
use ramiel_ir::Graph;
use std::collections::HashMap;

pub fn check_order(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    if view.policy != ExecPolicy::InOrder {
        return Vec::new();
    }
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let mut diags = Vec::new();
    for (w, ops) in view.workers.iter().enumerate() {
        let pos: HashMap<(usize, usize), usize> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| ((op.batch, op.node), i))
            .collect();
        for op in ops {
            if op.node >= n {
                continue; // coverage reports RV0103
            }
            for &p in &adj.preds[op.node] {
                if let (Some(&pc), Some(&pp)) =
                    (pos.get(&(op.batch, op.node)), pos.get(&(op.batch, p)))
                {
                    if pp > pc {
                        diags.push(
                            Diagnostic::error(
                                codes::ORDER_VIOLATION,
                                Span::Op {
                                    worker: w,
                                    batch: op.batch,
                                    node: op.node,
                                    name: graph.nodes[op.node].name.clone(),
                                },
                                format!(
                                    "scheduled at position {pc} but its producer `{}` (#{p}) \
                                     sits later at position {pp} on the same worker",
                                    graph.nodes[p].name
                                ),
                            )
                            .with_suggestion(
                                "sort the worker's ops by a topological order of the graph",
                            ),
                        );
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

    fn chain3() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", DType::F32, vec![2]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Relu, vec![a]);
        let d = b.op("d", OpKind::Relu, vec![c]);
        b.output(&d);
        b.finish().unwrap()
    }

    #[test]
    fn correct_order_is_clean() {
        let g = chain3();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::InOrder);
        assert!(check_order(&g, &v).is_empty());
    }

    #[test]
    fn swapped_pair_reported_with_positions() {
        let g = chain3();
        let v = ScheduleView::single_batch(vec![vec![0, 2, 1]], ExecPolicy::InOrder);
        let diags = check_order(&g, &v);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::ORDER_VIOLATION);
        assert!(diags[0].message.contains("producer `c_1`"));
    }

    #[test]
    fn first_ready_skips_the_check() {
        let g = chain3();
        let v = ScheduleView::single_batch(vec![vec![0, 2, 1]], ExecPolicy::FirstReady);
        assert!(check_order(&g, &v).is_empty());
    }

    #[test]
    fn cross_worker_split_is_fine() {
        let g = chain3();
        let v = ScheduleView::single_batch(vec![vec![0, 2], vec![1]], ExecPolicy::InOrder);
        assert!(check_order(&g, &v).is_empty());
    }
}
