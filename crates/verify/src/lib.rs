//! # ramiel-verify
//!
//! Static verifier for `(graph, schedule)` pairs: proves — before anything
//! runs — that a clustering is a sound partition, that its replay cannot
//! deadlock on the runtime's channels, and that the IR's shape metadata is
//! honest; plus an advisory lint layer for pipeline stages left unapplied.
//!
//! The crate deliberately depends only on `ramiel-ir`. Schedules arrive as
//! a neutral [`ScheduleView`]; `ramiel-cluster` supplies the conversions
//! from its `Clustering` / `HyperClustering` types, which lets the
//! clustering and pass crates call back into the verifier as a
//! debug-assertion harness without a dependency cycle.
//!
//! Entry points:
//! - [`verify_graph`] — graph-only checks: `ir::validate` (RV0001, with
//!   degenerate operator attributes split out as RV0002), abstract shape
//!   interpretation (RV05xx), graph lints (RV0601/RV0602).
//! - [`verify_schedule`] — schedule checks against a graph: coverage
//!   (RV01xx), cycle analysis (RV02xx), in-order soundness (RV0301),
//!   abstract channel execution (RV0401), schedule lints (RV0603).
//! - [`verify`] — both, aggregated into a [`Report`].
//! - [`assert_graph_invariants`] / [`assert_schedule_invariants`] — the
//!   debug-assertion harness: panic with a rendered report on any error.

pub mod diag;
pub mod schedule;

mod coverage;
mod cycles;
mod exec;
mod lints;
mod order;
mod shapes;

pub use diag::{codes, Diagnostic, Report, Severity, Span};
pub use schedule::{ExecPolicy, Op, ScheduleView};

use ramiel_ir::Graph;

/// Graph-only verification: structural validity, shape/dtype abstract
/// interpretation, and graph-level lints.
pub fn verify_graph(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Err(e) = ramiel_ir::validate::validate(graph) {
        diags.push(match &e {
            // Attribute findings get their own code and a node span so
            // `ramiel check` points at the offending operator.
            ramiel_ir::IrError::Attr { node, reason } => {
                let span = graph
                    .nodes
                    .iter()
                    .find(|n| &n.name == node)
                    .map(|n| Span::Node {
                        id: n.id,
                        name: n.name.clone(),
                    })
                    .unwrap_or(Span::Graph);
                Diagnostic::error(codes::ATTR_INVALID, span, reason.clone())
            }
            _ => Diagnostic::error(
                codes::GRAPH_INVALID,
                Span::Graph,
                format!("ir::validate failed: {e}"),
            ),
        });
        // Structurally broken graphs make the remaining analyses
        // meaningless; report the root cause alone.
        return diags;
    }
    diags.extend(shapes::check_shapes(graph));
    diags.extend(lints::lint_foldable_consts(graph));
    diags.extend(lints::lint_unfused_bn(graph));
    diags
}

/// Schedule verification against `graph`. Assumes nothing about the
/// schedule: coverage errors gate the deeper analyses (cycles, ordering,
/// abstract execution) because those assume every dependence resolves to a
/// scheduled instance.
pub fn verify_schedule(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let mut diags = coverage::check_coverage(graph, view);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return diags;
    }
    diags.extend(cycles::check_cycles(graph, view));
    diags.extend(order::check_order(graph, view));
    diags.extend(exec::check_execution(graph, view));
    diags.extend(lints::lint_clone_candidates(graph, view));
    diags
}

/// Full verification of a graph and (optionally) a schedule for it.
pub fn verify(graph: &Graph, view: Option<&ScheduleView>) -> Report {
    let mut diags = verify_graph(graph);
    if let Some(v) = view {
        // Schedule checks only make sense against a structurally valid graph.
        if !diags.iter().any(|d| d.code == codes::GRAPH_INVALID) {
            diags.extend(verify_schedule(graph, v));
        }
    }
    Report::new(diags)
}

/// Debug-assertion harness: panic with the rendered report if the graph has
/// any error-severity finding. `stage` names the pipeline point for the
/// panic message (e.g. `"after constant_fold"`).
pub fn assert_graph_invariants(graph: &Graph, stage: &str) {
    let report = Report::new(verify_graph(graph));
    if report.has_errors() {
        panic!(
            "graph invariants violated {stage} (graph `{}`):\n{}",
            graph.name,
            report.render()
        );
    }
}

/// Debug-assertion harness for schedules: panic with the rendered report if
/// the `(graph, schedule)` pair has any error-severity finding.
pub fn assert_schedule_invariants(graph: &Graph, view: &ScheduleView, stage: &str) {
    let report = verify(graph, Some(view));
    if report.has_errors() {
        panic!(
            "schedule invariants violated {stage} (graph `{}`):\n{}",
            graph.name,
            report.render()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Relu, vec![a.clone()]);
        let q = b.op("q", OpKind::Relu, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        b.finish().unwrap()
    }

    #[test]
    fn valid_pair_verifies_error_free() {
        let g = diamond();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 3], vec![2]], ExecPolicy::InOrder);
        let report = verify(&g, Some(&v));
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn invalid_graph_short_circuits() {
        let mut g = diamond();
        g.nodes[1].inputs[0] = "ghost".into();
        let report = verify(&g, None);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, codes::GRAPH_INVALID);
    }

    #[test]
    fn zero_stride_attr_reports_rv0002_with_node_span() {
        let mut b = GraphBuilder::new("bad-attrs");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let w = b.input("w", DType::F32, vec![4, 3, 3, 3]);
        let c = b.op(
            "conv0",
            OpKind::Conv {
                kernel: (3, 3),
                stride: (0, 1),
                pads: (1, 1),
                groups: 1,
            },
            vec![x, w],
        );
        b.output(&c);
        // finish() itself validates, so take the graph without it
        let g = b.graph_mut().clone();
        let report = verify(&g, None);
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::ATTR_INVALID);
        assert!(matches!(&d.span, Span::Node { name, .. } if name.starts_with("conv0")));
        assert!(d.message.contains("stride"), "{}", d.message);
    }

    #[test]
    fn coverage_errors_gate_deeper_checks() {
        let g = diamond();
        // missing node 2 → only RV0101 family, no RV02xx/RV04xx noise
        let v = ScheduleView::single_batch(vec![vec![0, 1, 3]], ExecPolicy::InOrder);
        let diags = verify_schedule(&g, &v);
        assert!(diags.iter().all(|d| d.code == codes::OP_MISSING));
    }

    #[test]
    fn harness_panics_on_corrupt_schedule() {
        let g = diamond();
        let bad = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::InOrder);
        let err = std::panic::catch_unwind(|| {
            assert_schedule_invariants(&g, &bad, "in test");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("RV0401"), "{msg}");
    }

    #[test]
    fn harness_accepts_valid_pair() {
        let g = diamond();
        let v = ScheduleView::single_batch(vec![vec![0, 1, 2, 3]], ExecPolicy::InOrder);
        assert_graph_invariants(&g, "in test");
        assert_schedule_invariants(&g, &v, "in test");
    }
}
