//! The diagnostic framework: structured findings with stable codes,
//! severities, spans, and an aggregating [`Report`].
//!
//! Code ranges (stable, referenced by tests and docs):
//!
//! | range  | area                                        |
//! |--------|---------------------------------------------|
//! | RV00xx | graph structural validity (wraps `ir::validate`) |
//! | RV01xx | schedule coverage / partition invariants    |
//! | RV02xx | cycle analysis (schedule graph, quotient)   |
//! | RV03xx | intra-worker ordering                       |
//! | RV04xx | channel deadlock (abstract execution)       |
//! | RV05xx | shape/dtype abstract interpretation         |
//! | RV06xx | advisory lints (missed optimizations)       |

use ramiel_ir::NodeId;
use std::fmt;

/// Stable diagnostic codes. Tests match on these; never renumber.
pub mod codes {
    /// `ir::validate` rejected the graph.
    pub const GRAPH_INVALID: &str = "RV0001";
    /// An operator carries a degenerate static attribute (zero stride,
    /// zero kernel extent, zero groups) — `IrError::Attr` surfaced with a
    /// node span instead of the generic RV0001.
    pub const ATTR_INVALID: &str = "RV0002";
    /// A (batch, node) instance is missing from every worker.
    pub const OP_MISSING: &str = "RV0101";
    /// A (batch, node) instance appears on more than one worker (or twice).
    pub const OP_DUPLICATE: &str = "RV0102";
    /// A schedule entry references an unknown node id or out-of-range batch.
    pub const OP_UNKNOWN: &str = "RV0103";
    /// A worker has an empty op list (harmless but wasteful).
    pub const WORKER_EMPTY: &str = "RV0104";
    /// The schedule graph (dependence ∪ program order) has a cycle: the
    /// in-order replay is guaranteed to deadlock.
    pub const SCHEDULE_CYCLE: &str = "RV0201";
    /// The cluster-quotient graph has a cycle even though the schedule
    /// graph is acyclic. Execution still makes progress, but messages
    /// ping-pong between the workers involved.
    pub const QUOTIENT_CYCLE: &str = "RV0202";
    /// A worker's op list orders a consumer before its same-worker producer.
    pub const ORDER_VIOLATION: &str = "RV0301";
    /// Abstract channel execution stalled: a worker blocks forever on a recv.
    pub const CHANNEL_DEADLOCK: &str = "RV0401";
    /// Shape inference failed at a node (root cause only; downstream
    /// failures caused by the same unknown tensor are suppressed).
    pub const SHAPE_UNKNOWN: &str = "RV0501";
    /// Inferred shape/dtype contradicts the shape/dtype recorded in
    /// `value_info`.
    pub const SHAPE_CONFLICT: &str = "RV0502";
    /// Constant subgraphs left unfolded (run the prune pipeline).
    pub const LINT_FOLDABLE_CONST: &str = "RV0601";
    /// Conv → BatchNormalization pair left unfused.
    pub const LINT_UNFUSED_BN: &str = "RV0602";
    /// Cheap fan-out node feeding other workers (task cloning would remove
    /// the cross-worker messages).
    pub const LINT_CLONE_CANDIDATE: &str = "RV0603";
}

/// How bad a finding is. Ordering: `Advice < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Missed-optimization hint; never fails a check.
    Advice,
    /// Suspicious but not unsound; fails `ramiel check --deny-warnings`.
    Warning,
    /// Unsound graph or schedule; always fails `ramiel check`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Advice => write!(f, "advice"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the (graph, schedule) pair a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The graph as a whole.
    Graph,
    /// One graph node.
    Node { id: NodeId, name: String },
    /// One named tensor.
    Tensor { name: String },
    /// One worker's entire op list.
    Worker { worker: usize },
    /// One scheduled op instance on one worker.
    Op {
        worker: usize,
        batch: usize,
        node: NodeId,
        name: String,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Graph => write!(f, "graph"),
            Span::Node { id, name } => write!(f, "node `{name}` (#{id})"),
            Span::Tensor { name } => write!(f, "tensor `{name}`"),
            Span::Worker { worker } => write!(f, "worker {worker}"),
            Span::Op {
                worker,
                batch,
                node,
                name,
            } => write!(f, "worker {worker}, op `{name}` (#{node}, batch {batch})"),
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    /// Actionable fix, if one exists (`run `ramiel run --prune` …`).
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    pub fn advice(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Advice,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}

/// The aggregated outcome of a verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        // Errors first, then warnings, then advice; stable within a class.
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        Report { diagnostics }
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True if this report should fail `ramiel check`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// All diagnostics carrying `code`.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human-readable multi-line rendering (one finding per paragraph, plus
    /// a summary line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} advice",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Advice)
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Advice);
    }

    #[test]
    fn report_sorts_and_counts() {
        let r = Report::new(vec![
            Diagnostic::advice(codes::LINT_FOLDABLE_CONST, Span::Graph, "fold me"),
            Diagnostic::error(codes::SCHEDULE_CYCLE, Span::Graph, "cycle"),
            Diagnostic::warning(codes::QUOTIENT_CYCLE, Span::Graph, "quotient"),
        ]);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[2].severity, Severity::Advice);
        assert!(r.has_errors());
        assert!(r.fails(false));
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn deny_warnings_gates_failure() {
        let warn_only = Report::new(vec![Diagnostic::warning(
            codes::SHAPE_UNKNOWN,
            Span::Graph,
            "?",
        )]);
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
        let advice_only = Report::new(vec![Diagnostic::advice(
            codes::LINT_UNFUSED_BN,
            Span::Graph,
            "?",
        )]);
        assert!(!advice_only.fails(true));
    }

    #[test]
    fn render_mentions_code_and_suggestion() {
        let r = Report::new(vec![Diagnostic::error(
            codes::CHANNEL_DEADLOCK,
            Span::Worker { worker: 2 },
            "stuck",
        )
        .with_suggestion("reorder the cluster")]);
        let s = r.render();
        assert!(s.contains("RV0401"));
        assert!(s.contains("worker 2"));
        assert!(s.contains("suggestion: reorder"));
        assert!(s.contains("1 error(s)"));
    }
}
