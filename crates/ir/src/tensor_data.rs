//! Constant tensor payloads stored in a graph's initializer table.
//!
//! Initializers hold model weights and the small integer tensors (shapes,
//! slice bounds, gather indices) that ONNX exporters embed in the graph and
//! that the constant-propagation pass folds.

use crate::op::DType;
use serde::{Deserialize, Serialize};

/// A constant tensor: static shape plus a typed payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorData {
    /// Static shape; empty means a scalar.
    pub shape: Vec<usize>,
    /// Element payload.
    pub payload: Payload,
}

/// Typed element storage for [`TensorData`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    F32(Vec<f32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
}

impl TensorData {
    /// Construct an f32 tensor, checking that `shape` and `data` agree.
    pub fn f32(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "f32 tensor shape/data mismatch"
        );
        TensorData {
            shape,
            payload: Payload::F32(data),
        }
    }

    /// Construct an i64 tensor, checking that `shape` and `data` agree.
    pub fn i64(shape: Vec<usize>, data: Vec<i64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "i64 tensor shape/data mismatch"
        );
        TensorData {
            shape,
            payload: Payload::I64(data),
        }
    }

    /// A scalar f32 constant.
    pub fn scalar_f32(v: f32) -> Self {
        TensorData::f32(vec![], vec![v])
    }

    /// A 1-D i64 vector (the usual encoding of shapes and axes).
    pub fn vec_i64(v: Vec<i64>) -> Self {
        TensorData::i64(vec![v.len()], v)
    }

    /// Element type of the payload.
    pub fn dtype(&self) -> DType {
        match self.payload {
            Payload::F32(_) => DType::F32,
            Payload::I64(_) => DType::I64,
            Payload::Bool(_) => DType::Bool,
        }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Borrow the i64 payload, if this is an integer tensor.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match &self.payload {
            Payload::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the f32 payload, if this is a float tensor.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match &self.payload {
            Payload::F32(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = TensorData::f32(vec![2, 3], vec![0.0; 6]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.dtype(), DType::F32);
        assert!(t.as_f32().is_some());
        assert!(t.as_i64().is_none());

        let s = TensorData::vec_i64(vec![1, 2, 3, 4]);
        assert_eq!(s.shape, vec![4]);
        assert_eq!(s.as_i64().unwrap(), &[1, 2, 3, 4]);

        let c = TensorData::scalar_f32(2.5);
        assert_eq!(c.numel(), 1);
        assert!(c.shape.is_empty());
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn mismatched_shape_panics() {
        let _ = TensorData::f32(vec![2, 2], vec![1.0; 3]);
    }
}
