//! Graphviz (DOT) export, used to render the paper's dataflow-graph figures
//! (Figs. 1–9) from our graphs, optionally colored by cluster assignment.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;
use std::fmt::Write;

/// Palette used to color clusters (cycled when there are more clusters).
const PALETTE: &[&str] = &[
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

/// Render the graph as DOT. `cluster_of` optionally maps node id → cluster
/// index; nodes in the same cluster share a fill color.
pub fn to_dot(graph: &Graph, cluster_of: Option<&HashMap<NodeId, usize>>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(
        s,
        "  rankdir=TB; node [shape=box, style=filled, fontname=\"Helvetica\"];"
    );
    for n in &graph.nodes {
        let color = cluster_of
            .and_then(|m| m.get(&n.id))
            .map(|&c| PALETTE[c % PALETTE.len()])
            .unwrap_or("#ffffff");
        let cluster_tag = cluster_of
            .and_then(|m| m.get(&n.id))
            .map(|c| format!("\\nC{c}"))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  n{} [label=\"{}\\n{}{}\", fillcolor=\"{}\"];",
            n.id,
            n.name,
            n.op.name(),
            cluster_tag,
            color
        );
    }
    for (src, dst, tensor) in graph.edges() {
        let _ = writeln!(s, "  n{src} -> n{dst} [label=\"{tensor}\", fontsize=8];");
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TensorInfo;
    use crate::op::{DType, OpKind};

    #[test]
    fn dot_contains_nodes_edges_and_colors() {
        let mut g = Graph::new("g");
        g.inputs.push(TensorInfo::new("x", DType::F32, vec![1]));
        g.push_node("a", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        g.push_node("b", OpKind::Sigmoid, vec!["y".into()], vec!["z".into()]);
        g.outputs.push("z".into());

        let plain = to_dot(&g, None);
        assert!(plain.contains("digraph \"g\""));
        assert!(plain.contains("n0 -> n1"));
        assert!(plain.contains("Relu"));

        let mut clusters = HashMap::new();
        clusters.insert(0usize, 0usize);
        clusters.insert(1usize, 1usize);
        let colored = to_dot(&g, Some(&clusters));
        assert!(colored.contains("C0"));
        assert!(colored.contains("C1"));
        assert!(colored.contains(PALETTE[0]));
    }
}
