//! # ramiel-ir
//!
//! The dataflow-graph intermediate representation (IR) used throughout the
//! Ramiel task-parallelization pipeline.
//!
//! A [`Graph`] is a directed acyclic graph of [`Node`]s. Each node applies a
//! single ML operator ([`OpKind`]) to a set of named input tensors and
//! produces one or more named output tensors. Tensor values flowing along
//! edges are described by [`TensorInfo`] (dtype + static shape); weights and
//! other compile-time constants live in the graph's *initializer* table as
//! [`TensorData`].
//!
//! The IR mirrors the subset of ONNX that the paper's eight evaluation
//! models exercise (convolutional vision networks, transformer encoders and
//! the shape-computation subgraphs that ONNX exporters emit around
//! `Reshape`/`Slice`/`Gather`).
//!
//! Modules:
//! - [`op`] — operator kinds and their attributes
//! - [`graph`] — the graph container, edge queries, mutation helpers
//! - [`builder`] — ergonomic construction of graphs in topological order
//! - [`shape`] — static shape inference for every supported operator
//! - [`topo`] — topological ordering and level (ASAP) computation
//! - [`validate`] — structural well-formedness checks
//! - [`dot`] — Graphviz export used for the paper's figures
//! - [`tensor_data`] — constant tensor payloads (initializers)

pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod model_file;
pub mod op;
pub mod shape;
pub mod tensor_data;
pub mod text_format;
pub mod topo;
pub mod validate;

pub use builder::GraphBuilder;
pub use error::IrError;
pub use graph::{Graph, Node, NodeId, TensorInfo};
pub use op::{DType, OpKind, PoolSpec};
pub use tensor_data::TensorData;

/// Result alias for IR operations.
pub type Result<T> = std::result::Result<T, IrError>;
