//! A human-readable text format for models (`.rmodel` files) — the textual
//! counterpart of the JSON format in [`crate::model_file`], playing the
//! role of ONNX's text representation for the paper's "Model2Graph
//! Convertor". Being line-oriented and diff-friendly, it is the format the
//! examples and docs show.
//!
//! ```text
//! # comments and blank lines are ignored
//! model "Squeezenet"
//! input  input f32 [1, 3, 32, 32]
//! init   w0    f32 [4, 3, 3, 3] uniform 0.05
//! init   axes  i64 [2] data 0 1
//! node   conv0 Conv(kernel=3x3, stride=2x2, pads=1x1, groups=1) (input, w0) -> (t0)
//! node   relu0 Relu () (t0) -> (t1)
//! output t1
//! ```
//!
//! `uniform <scale>` initializers synthesize deterministic pseudo-random
//! data seeded from the tensor name (same scheme as
//! [`crate::builder::GraphBuilder::weight`]), keeping model files small;
//! `data <v>…` embeds values verbatim.

use crate::error::IrError;
use crate::graph::{Graph, TensorInfo};
use crate::op::{DType, OpKind, PoolSpec};
use crate::tensor_data::TensorData;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn dims(shape: &[usize]) -> String {
    let items: Vec<String> = shape.iter().map(|d| d.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn pair(p: (usize, usize)) -> String {
    format!("{}x{}", p.0, p.1)
}

fn ilist(v: &[i64]) -> String {
    v.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn islist(v: &[isize]) -> String {
    v.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn ulist(v: &[usize]) -> String {
    v.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn pool_attrs(p: &PoolSpec) -> String {
    format!(
        "kernel={}, stride={}, pads={}, ceil={}",
        pair(p.kernel),
        pair(p.stride),
        pair(p.pads),
        p.ceil_mode
    )
}

/// Attributes of an op, as the parenthesized attribute text (may be empty).
fn op_attrs(op: &OpKind) -> String {
    match op {
        OpKind::Conv {
            kernel,
            stride,
            pads,
            groups,
        } => format!(
            "kernel={}, stride={}, pads={}, groups={groups}",
            pair(*kernel),
            pair(*stride),
            pair(*pads)
        ),
        OpKind::Gemm { trans_b } => format!("trans_b={trans_b}"),
        OpKind::LeakyRelu { alpha } => format!("alpha={alpha}"),
        OpKind::Clip { min, max } => format!("min={min}, max={max}"),
        OpKind::Softmax { axis } => format!("axis={axis}"),
        OpKind::BatchNorm { epsilon } => format!("epsilon={epsilon}"),
        OpKind::LayerNorm { epsilon } => format!("epsilon={epsilon}"),
        OpKind::ReduceMean { axes, keepdims } => {
            format!("axes={}, keepdims={keepdims}", islist(axes))
        }
        OpKind::MaxPool(p) | OpKind::AveragePool(p) => pool_attrs(p),
        OpKind::Concat { axis } => format!("axis={axis}"),
        OpKind::Split { axis, parts } => format!("axis={axis}, parts={}", ulist(parts)),
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } => format!(
            "axes={}, starts={}, ends={}, steps={}",
            islist(axes),
            ilist(starts),
            ilist(ends),
            ilist(steps)
        ),
        OpKind::Gather { axis } => format!("axis={axis}"),
        OpKind::Transpose { perm } => format!("perm={}", ulist(perm)),
        OpKind::Flatten { axis } => format!("axis={axis}"),
        OpKind::Unsqueeze { axes } => format!("axes={}", islist(axes)),
        OpKind::Squeeze { axes } => format!("axes={}", islist(axes)),
        OpKind::Resize { scale } => format!("scale={}", pair(*scale)),
        OpKind::Pad { pads } => format!("pads={}x{}x{}x{}", pads.0, pads.1, pads.2, pads.3),
        OpKind::Cast { to } => format!("to={}", to.name()),
        OpKind::ConstantOfShape { value } => format!("value={value}"),
        _ => String::new(),
    }
}

/// Serialize a graph to the text format.
pub fn to_text(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model \"{}\"", graph.name);
    for inp in &graph.inputs {
        let _ = writeln!(
            out,
            "input {} {} {}",
            inp.name,
            inp.dtype.name(),
            dims(&inp.shape)
        );
    }
    for (name, td) in &graph.initializers {
        let payload = match &td.payload {
            crate::tensor_data::Payload::F32(v) => {
                let items: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
                format!("data {}", items.join(" "))
            }
            crate::tensor_data::Payload::I64(v) => {
                let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
                format!("data {}", items.join(" "))
            }
            crate::tensor_data::Payload::Bool(v) => {
                let items: Vec<String> = v
                    .iter()
                    .map(|x| if *x { "1" } else { "0" }.into())
                    .collect();
                format!("data {}", items.join(" "))
            }
        };
        let _ = writeln!(
            out,
            "init {} {} {} {payload}",
            name,
            td.dtype().name(),
            dims(&td.shape)
        );
    }
    for node in &graph.nodes {
        let attrs = op_attrs(&node.op);
        let _ = writeln!(
            out,
            "node {} {}({attrs}) ({}) -> ({})",
            node.name,
            node.op.name(),
            node.inputs.join(", "),
            node.outputs.join(", ")
        );
    }
    for o in &graph.outputs {
        let _ = writeln!(out, "output {o}");
    }
    out
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

fn err(line_no: usize, msg: impl Into<String>) -> IrError {
    IrError::Serde(format!("line {}: {}", line_no + 1, msg.into()))
}

fn parse_dtype(s: &str, ln: usize) -> Result<DType> {
    match s {
        "f32" => Ok(DType::F32),
        "i64" => Ok(DType::I64),
        "bool" => Ok(DType::Bool),
        other => Err(err(ln, format!("unknown dtype `{other}`"))),
    }
}

fn parse_shape(s: &str, ln: usize) -> Result<Vec<usize>> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(ln, format!("expected [shape], got `{s}`")))?;
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|d| {
            d.trim()
                .parse::<usize>()
                .map_err(|e| err(ln, format!("bad dim `{d}`: {e}")))
        })
        .collect()
}

struct Attrs<'a> {
    map: BTreeMap<&'a str, &'a str>,
    ln: usize,
}

impl<'a> Attrs<'a> {
    fn parse(body: &'a str, ln: usize) -> Result<Self> {
        let mut map = BTreeMap::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| err(ln, format!("attribute `{item}` is not key=value")))?;
            map.insert(k.trim(), v.trim());
        }
        Ok(Attrs { map, ln })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .map
            .get(key)
            .ok_or_else(|| err(self.ln, format!("missing attribute `{key}`")))?;
        raw.parse::<T>()
            .map_err(|e| err(self.ln, format!("attribute `{key}`: {e}")))
    }

    fn pair(&self, key: &str) -> Result<(usize, usize)> {
        let raw: String = self.get(key)?;
        let (a, b) = raw
            .split_once('x')
            .ok_or_else(|| err(self.ln, format!("attribute `{key}` must be AxB")))?;
        Ok((
            a.parse()
                .map_err(|e| err(self.ln, format!("`{key}`: {e}")))?,
            b.parse()
                .map_err(|e| err(self.ln, format!("`{key}`: {e}")))?,
        ))
    }

    fn list<T: std::str::FromStr>(&self, key: &str) -> Result<Vec<T>>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .map
            .get(key)
            .ok_or_else(|| err(self.ln, format!("missing attribute `{key}`")))?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(';')
            .map(|v| {
                v.parse::<T>()
                    .map_err(|e| err(self.ln, format!("`{key}` item `{v}`: {e}")))
            })
            .collect()
    }

    fn pool(&self) -> Result<PoolSpec> {
        Ok(PoolSpec {
            kernel: self.pair("kernel")?,
            stride: self.pair("stride")?,
            pads: self.pair("pads")?,
            ceil_mode: self.get("ceil")?,
        })
    }
}

fn parse_op(name: &str, attrs: &Attrs, ln: usize) -> Result<OpKind> {
    Ok(match name {
        "Conv" => OpKind::Conv {
            kernel: attrs.pair("kernel")?,
            stride: attrs.pair("stride")?,
            pads: attrs.pair("pads")?,
            groups: attrs.get("groups")?,
        },
        "MatMul" => OpKind::MatMul,
        "Gemm" => OpKind::Gemm {
            trans_b: attrs.get("trans_b")?,
        },
        "Relu" => OpKind::Relu,
        "LeakyRelu" => OpKind::LeakyRelu {
            alpha: attrs.get("alpha")?,
        },
        "Sigmoid" => OpKind::Sigmoid,
        "Tanh" => OpKind::Tanh,
        "Gelu" => OpKind::Gelu,
        "Erf" => OpKind::Erf,
        "Sqrt" => OpKind::Sqrt,
        "Exp" => OpKind::Exp,
        "Neg" => OpKind::Neg,
        "Clip" => OpKind::Clip {
            min: attrs.get("min")?,
            max: attrs.get("max")?,
        },
        "Dropout" => OpKind::Dropout,
        "Identity" => OpKind::Identity,
        "Add" => OpKind::Add,
        "Sub" => OpKind::Sub,
        "Mul" => OpKind::Mul,
        "Div" => OpKind::Div,
        "Pow" => OpKind::Pow,
        "Equal" => OpKind::Equal,
        "Where" => OpKind::Where,
        "Softmax" => OpKind::Softmax {
            axis: attrs.get("axis")?,
        },
        "BatchNormalization" => OpKind::BatchNorm {
            epsilon: attrs.get("epsilon")?,
        },
        "LayerNormalization" => OpKind::LayerNorm {
            epsilon: attrs.get("epsilon")?,
        },
        "ReduceMean" => OpKind::ReduceMean {
            axes: attrs.list("axes")?,
            keepdims: attrs.get("keepdims")?,
        },
        "MaxPool" => OpKind::MaxPool(attrs.pool()?),
        "AveragePool" => OpKind::AveragePool(attrs.pool()?),
        "GlobalAveragePool" => OpKind::GlobalAveragePool,
        "Concat" => OpKind::Concat {
            axis: attrs.get("axis")?,
        },
        "Split" => OpKind::Split {
            axis: attrs.get("axis")?,
            parts: attrs.list("parts")?,
        },
        "Slice" => OpKind::Slice {
            axes: attrs.list("axes")?,
            starts: attrs.list("starts")?,
            ends: attrs.list("ends")?,
            steps: attrs.list("steps")?,
        },
        "Gather" => OpKind::Gather {
            axis: attrs.get("axis")?,
        },
        "Reshape" => OpKind::Reshape,
        "Transpose" => OpKind::Transpose {
            perm: attrs.list("perm")?,
        },
        "Flatten" => OpKind::Flatten {
            axis: attrs.get("axis")?,
        },
        "Unsqueeze" => OpKind::Unsqueeze {
            axes: attrs.list("axes")?,
        },
        "Squeeze" => OpKind::Squeeze {
            axes: attrs.list("axes")?,
        },
        "Expand" => OpKind::Expand,
        "Resize" => OpKind::Resize {
            scale: attrs.pair("scale")?,
        },
        "Pad" => {
            let raw: String = attrs.get("pads")?;
            let parts: Vec<usize> = raw
                .split('x')
                .map(|v| v.parse().map_err(|e| err(ln, format!("pads: {e}"))))
                .collect::<Result<_>>()?;
            if parts.len() != 4 {
                return Err(err(ln, "Pad wants pads=T x L x B x R"));
            }
            OpKind::Pad {
                pads: (parts[0], parts[1], parts[2], parts[3]),
            }
        }
        "Cast" => OpKind::Cast {
            to: parse_dtype(&attrs.get::<String>("to")?, ln)?,
        },
        "Constant" => OpKind::Constant,
        "Shape" => OpKind::Shape,
        "ConstantOfShape" => OpKind::ConstantOfShape {
            value: attrs.get("value")?,
        },
        other => return Err(err(ln, format!("unknown operator `{other}`"))),
    })
}

/// Deterministic uniform payload seeded by the tensor name — must match
/// `GraphBuilder::weight`'s scheme so text files and builders agree.
fn uniform_payload(name: &str, numel: usize, scale: f32) -> Vec<f32> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut state = h;
    (0..numel)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let f = (z >> 40) as f32 / (1u64 << 24) as f32;
            (2.0 * f - 1.0) * scale
        })
        .collect()
}

/// Parse the text format into a graph (validated + shape-inferred).
pub fn from_text(text: &str) -> Result<Graph> {
    let mut graph = Graph::new("unnamed");
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(ln, "missing arguments"))?;
        let rest = rest.trim();
        match keyword {
            "model" => {
                graph.name = rest
                    .trim()
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err(ln, "model name must be quoted"))?
                    .to_string();
            }
            "input" => {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err(ln, "input wants a name"))?;
                let dtype =
                    parse_dtype(it.next().ok_or_else(|| err(ln, "input wants a dtype"))?, ln)?;
                let shape = parse_shape(&it.collect::<Vec<_>>().join(" "), ln)?;
                graph.inputs.push(TensorInfo::new(name, dtype, shape));
            }
            "init" => {
                let mut it = rest.splitn(4, char::is_whitespace);
                let name = it.next().ok_or_else(|| err(ln, "init wants a name"))?;
                let dtype =
                    parse_dtype(it.next().ok_or_else(|| err(ln, "init wants a dtype"))?, ln)?;
                let tail = it.collect::<Vec<_>>().join(" ");
                let close = tail
                    .find(']')
                    .ok_or_else(|| err(ln, "init wants a [shape]"))?;
                let shape = parse_shape(&tail[..=close], ln)?;
                let payload = tail[close + 1..].trim();
                let numel: usize = shape.iter().product();
                let td = if let Some(rest) = payload.strip_prefix("uniform") {
                    let scale: f32 = rest
                        .trim()
                        .parse()
                        .map_err(|e| err(ln, format!("uniform scale: {e}")))?;
                    TensorData::f32(shape, uniform_payload(name, numel, scale))
                } else if let Some(rest) = payload.strip_prefix("data") {
                    let items: Vec<&str> = rest.split_whitespace().collect();
                    if items.len() != numel {
                        return Err(err(
                            ln,
                            format!("init `{name}` wants {numel} values, got {}", items.len()),
                        ));
                    }
                    match dtype {
                        DType::F32 => TensorData::f32(
                            shape,
                            items
                                .iter()
                                .map(|v| v.parse().map_err(|e| err(ln, format!("value: {e}"))))
                                .collect::<Result<_>>()?,
                        ),
                        DType::I64 => TensorData::i64(
                            shape,
                            items
                                .iter()
                                .map(|v| v.parse().map_err(|e| err(ln, format!("value: {e}"))))
                                .collect::<Result<_>>()?,
                        ),
                        DType::Bool => TensorData {
                            shape,
                            payload: crate::tensor_data::Payload::Bool(
                                items.iter().map(|v| *v != "0").collect(),
                            ),
                        },
                    }
                } else {
                    return Err(err(ln, "init wants `uniform <scale>` or `data <values…>`"));
                };
                graph.initializers.insert(name.to_string(), td);
            }
            "node" => {
                // <name> <Op>(attrs) (ins) -> (outs)
                let (name, rest2) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(ln, "node wants a name"))?;
                let open = rest2
                    .find('(')
                    .ok_or_else(|| err(ln, "node wants Op(attrs)"))?;
                let op_name = rest2[..open].trim();
                let close = rest2[open..]
                    .find(')')
                    .map(|i| open + i)
                    .ok_or_else(|| err(ln, "unterminated attribute list"))?;
                let attrs = Attrs::parse(&rest2[open + 1..close], ln)?;
                let op = parse_op(op_name, &attrs, ln)?;
                let io = &rest2[close + 1..];
                let (ins_raw, outs_raw) = io
                    .split_once("->")
                    .ok_or_else(|| err(ln, "node wants (ins) -> (outs)"))?;
                let tensors = |s: &str| -> Result<Vec<String>> {
                    let inner = s
                        .trim()
                        .strip_prefix('(')
                        .and_then(|s| s.strip_suffix(')'))
                        .ok_or_else(|| err(ln, format!("expected (list), got `{s}`")))?;
                    Ok(inner
                        .split(',')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .map(String::from)
                        .collect())
                };
                let inputs = tensors(ins_raw)?;
                let outputs = tensors(outs_raw)?;
                graph.push_node(name, op, inputs, outputs);
            }
            "output" => graph.outputs.push(rest.to_string()),
            other => return Err(err(ln, format!("unknown directive `{other}`"))),
        }
    }
    crate::validate::validate(&graph)?;
    crate::shape::infer_shapes(&mut graph)?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    const SAMPLE: &str = r#"
# a tiny conv net
model "tiny"
input x f32 [1, 3, 8, 8]
init w f32 [4, 3, 3, 3] uniform 0.05
init b f32 [4] data 0 0 0 0
node conv0 Conv(kernel=3x3, stride=1x1, pads=1x1, groups=1) (x, w, b) -> (t0)
node relu0 Relu() (t0) -> (t1)
node gap0 GlobalAveragePool() (t1) -> (t2)
output t2
"#;

    #[test]
    fn parses_the_sample() {
        let g = from_text(SAMPLE).unwrap();
        assert_eq!(g.name, "tiny");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.value_info["t2"].shape, vec![1, 4, 1, 1]);
        assert_eq!(g.initializers["b"].as_f32().unwrap(), &[0.0; 4]);
    }

    #[test]
    fn text_roundtrip_preserves_graphs() {
        let mut b = GraphBuilder::new("rt");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let c = b.conv_relu(&x, 3, 4, 3, 2, 1);
        let p = b.op(
            "mp",
            OpKind::MaxPool(PoolSpec {
                kernel: (2, 2),
                stride: (2, 2),
                pads: (0, 0),
                ceil_mode: true,
            }),
            vec![c],
        );
        let s = b.op("sm", OpKind::Softmax { axis: -1 }, vec![p]);
        b.output(&s);
        let g = b.finish().unwrap();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn uniform_matches_builder_weights() {
        // `uniform` in text files must reproduce GraphBuilder::weight's data
        let mut b = GraphBuilder::new("t");
        b.weight("w", vec![8], crate::builder::Init::Uniform(0.1));
        let builder_data = b.graph_mut().initializers["w_0"].clone();
        let text = "model \"t\"\ninput x f32 [8]\ninit w_0 f32 [8] uniform 0.1\nnode a Add() (x, w_0) -> (y)\noutput y\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.initializers["w_0"], builder_data);
    }

    #[test]
    fn good_errors_with_line_numbers() {
        let bad = "model \"x\"\nnode n Frobnicate() (a) -> (b)\n";
        let e = from_text(bad).unwrap_err().to_string();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("Frobnicate"), "{e}");

        let bad2 = "model \"x\"\ninput a f32 [2]\ninit w f32 [3] data 1 2\noutput a\n";
        let e2 = from_text(bad2).unwrap_err().to_string();
        assert!(e2.contains("wants 3 values"), "{e2}");
    }

    #[test]
    fn complex_attrs_roundtrip() {
        let mut b = GraphBuilder::new("attrs");
        let x = b.input("x", DType::F32, vec![2, 3, 4]);
        let t = b.op(
            "tr",
            OpKind::Transpose {
                perm: vec![2, 0, 1],
            },
            vec![x.clone()],
        );
        let sl = b.op(
            "sl",
            OpKind::Slice {
                axes: vec![0, 2],
                starts: vec![0, 1],
                ends: vec![2, i64::MAX],
                steps: vec![1, 1],
            },
            vec![t],
        );
        let rm = b.op(
            "rm",
            OpKind::ReduceMean {
                axes: vec![-1],
                keepdims: true,
            },
            vec![sl],
        );
        b.output(&rm);
        let g = b.finish().unwrap();
        let g2 = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let noisy = format!("\n\n# leading comment\n{SAMPLE}\n# trailing\n\n");
        assert!(from_text(&noisy).is_ok());
    }
}
