//! Structural well-formedness checks for graphs.
//!
//! Every model generator and every transformation pass is expected to leave
//! the graph in a state where [`validate`] succeeds; the integration tests
//! enforce this after each pipeline stage.

use crate::error::IrError;
use crate::graph::Graph;
use crate::topo::topo_sort;
use crate::Result;
use std::collections::HashSet;

/// Check that a graph is structurally sound:
///
/// 1. every tensor has exactly one definition (node output, graph input, or
///    initializer);
/// 2. every node input and every graph output refers to a defined tensor;
/// 3. node ids match their position;
/// 4. node names are unique (codegen requires this) and non-empty
///    (diagnostics and generated code would otherwise be unreadable);
/// 5. the graph is acyclic;
/// 6. every node has the right number of outputs for its operator;
/// 7. every node has an input count its operator accepts
///    ([`crate::op::OpKind::input_arity`]).
pub fn validate(graph: &Graph) -> Result<()> {
    let mut defined: HashSet<&str> = HashSet::new();
    for inp in &graph.inputs {
        if !defined.insert(&inp.name) {
            return Err(IrError::DuplicateTensor(inp.name.clone()));
        }
    }
    for name in graph.initializers.keys() {
        if !defined.insert(name) {
            return Err(IrError::DuplicateTensor(name.clone()));
        }
    }
    let mut names: HashSet<&str> = HashSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.id != i {
            return Err(IrError::Invalid(format!(
                "node `{}` has id {} but sits at index {i}",
                node.name, node.id
            )));
        }
        if node.name.is_empty() {
            return Err(IrError::Invalid(format!(
                "node at index {i} ({}) has an empty name",
                node.op.name()
            )));
        }
        if !names.insert(&node.name) {
            return Err(IrError::Invalid(format!(
                "duplicate node name `{}`",
                node.name
            )));
        }
        let got = node.inputs.len();
        match node.op.input_arity() {
            (min, Some(max)) if got < min || got > max => {
                return Err(if min == max {
                    IrError::Arity {
                        node: node.name.clone(),
                        expected: min,
                        got,
                    }
                } else {
                    IrError::Invalid(format!(
                        "node `{}` ({}) takes {min}..={max} inputs, has {got}",
                        node.name,
                        node.op.name()
                    ))
                });
            }
            (min, None) if got < min => {
                return Err(IrError::Invalid(format!(
                    "node `{}` ({}) takes at least {min} input(s), has {got}",
                    node.name,
                    node.op.name()
                )));
            }
            _ => {}
        }
        if node.outputs.len() != node.op.num_outputs() {
            return Err(IrError::Invalid(format!(
                "node `{}` ({}) must produce {} outputs, has {}",
                node.name,
                node.op.name(),
                node.op.num_outputs(),
                node.outputs.len()
            )));
        }
        for out in &node.outputs {
            // A `Constant` node's payload lives in the initializer table
            // under its output name by design — that pairing is the one
            // permitted "double definition".
            let constant_payload =
                matches!(node.op, crate::op::OpKind::Constant) && graph.is_initializer(out);
            if !defined.insert(out) && !constant_payload {
                return Err(IrError::DuplicateTensor(out.clone()));
            }
        }
    }
    for node in &graph.nodes {
        for inp in &node.inputs {
            if !defined.contains(inp.as_str()) {
                return Err(IrError::UnknownTensor(inp.clone()));
            }
        }
    }
    for out in &graph.outputs {
        if !defined.contains(out.as_str()) {
            return Err(IrError::UnknownTensor(out.clone()));
        }
    }
    topo_sort(graph)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TensorInfo;
    use crate::op::{DType, OpKind};

    fn ok_graph() -> Graph {
        let mut g = Graph::new("ok");
        g.inputs.push(TensorInfo::new("x", DType::F32, vec![1]));
        g.push_node("a", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        g.outputs.push("y".into());
        g
    }

    #[test]
    fn valid_graph_passes() {
        validate(&ok_graph()).unwrap();
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = ok_graph();
        g.nodes[0].inputs[0] = "ghost".into();
        assert!(matches!(validate(&g), Err(IrError::UnknownTensor(t)) if t == "ghost"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut g = ok_graph();
        g.push_node("b", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        assert!(matches!(validate(&g), Err(IrError::DuplicateTensor(_))));
    }

    #[test]
    fn duplicate_node_name_rejected() {
        let mut g = ok_graph();
        g.push_node("a", OpKind::Relu, vec!["y".into()], vec!["z".into()]);
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }

    #[test]
    fn unknown_graph_output_rejected() {
        let mut g = ok_graph();
        g.outputs.push("ghost".into());
        assert!(matches!(validate(&g), Err(IrError::UnknownTensor(_))));
    }

    #[test]
    fn bad_node_id_rejected() {
        let mut g = ok_graph();
        g.nodes[0].id = 7;
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }

    #[test]
    fn empty_node_name_rejected() {
        let mut g = ok_graph();
        g.nodes[0].name = String::new();
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("empty name")));
    }

    #[test]
    fn fixed_input_arity_enforced() {
        let mut g = ok_graph();
        // Relu is strictly unary; feed it two inputs.
        g.nodes[0].inputs.push("x".into());
        assert!(matches!(
            validate(&g),
            Err(IrError::Arity {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn ranged_input_arity_enforced() {
        let mut g = ok_graph();
        // Conv without a weight operand: below the 2..=3 range.
        g.push_node(
            "c",
            OpKind::Conv {
                kernel: (1, 1),
                stride: (1, 1),
                pads: (0, 0),
                groups: 1,
            },
            vec!["y".into()],
            vec!["z".into()],
        );
        g.outputs.push("z".into());
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("2..=3")));
    }

    #[test]
    fn variadic_minimum_enforced() {
        let mut g = ok_graph();
        g.push_node("cc", OpKind::Concat { axis: 0 }, vec![], vec!["z".into()]);
        g.outputs.push("z".into());
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("at least 1")));
    }

    #[test]
    fn split_arity_enforced() {
        let mut g = ok_graph();
        g.push_node(
            "s",
            OpKind::Split {
                axis: 0,
                parts: vec![1, 1],
            },
            vec!["y".into()],
            vec!["s0".into()], // should be two outputs
        );
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }
}
