//! Structural well-formedness checks for graphs.
//!
//! Every model generator and every transformation pass is expected to leave
//! the graph in a state where [`validate`] succeeds; the integration tests
//! enforce this after each pipeline stage.

use crate::error::IrError;
use crate::graph::Graph;
use crate::topo::topo_sort;
use crate::Result;
use std::collections::HashSet;

/// Check that a graph is structurally sound:
///
/// 1. every tensor has exactly one definition (node output, graph input, or
///    initializer);
/// 2. every node input and every graph output refers to a defined tensor;
/// 3. node ids match their position;
/// 4. node names are unique (codegen requires this) and non-empty
///    (diagnostics and generated code would otherwise be unreadable);
/// 5. the graph is acyclic;
/// 6. every node has the right number of outputs for its operator;
/// 7. every node has an input count its operator accepts
///    ([`crate::op::OpKind::input_arity`]);
/// 8. spatial operator attributes are non-degenerate — nonzero strides,
///    kernel extents and group counts ([`IrError::Attr`], RV0002) — so the
///    kernels' output-size arithmetic can never divide by zero.
pub fn validate(graph: &Graph) -> Result<()> {
    let mut defined: HashSet<&str> = HashSet::new();
    for inp in &graph.inputs {
        if !defined.insert(&inp.name) {
            return Err(IrError::DuplicateTensor(inp.name.clone()));
        }
    }
    for name in graph.initializers.keys() {
        if !defined.insert(name) {
            return Err(IrError::DuplicateTensor(name.clone()));
        }
    }
    let mut names: HashSet<&str> = HashSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.id != i {
            return Err(IrError::Invalid(format!(
                "node `{}` has id {} but sits at index {i}",
                node.name, node.id
            )));
        }
        if node.name.is_empty() {
            return Err(IrError::Invalid(format!(
                "node at index {i} ({}) has an empty name",
                node.op.name()
            )));
        }
        if !names.insert(&node.name) {
            return Err(IrError::Invalid(format!(
                "duplicate node name `{}`",
                node.name
            )));
        }
        let got = node.inputs.len();
        match node.op.input_arity() {
            (min, Some(max)) if got < min || got > max => {
                return Err(if min == max {
                    IrError::Arity {
                        node: node.name.clone(),
                        expected: min,
                        got,
                    }
                } else {
                    IrError::Invalid(format!(
                        "node `{}` ({}) takes {min}..={max} inputs, has {got}",
                        node.name,
                        node.op.name()
                    ))
                });
            }
            (min, None) if got < min => {
                return Err(IrError::Invalid(format!(
                    "node `{}` ({}) takes at least {min} input(s), has {got}",
                    node.name,
                    node.op.name()
                )));
            }
            _ => {}
        }
        check_attrs(node)?;
        if node.outputs.len() != node.op.num_outputs() {
            return Err(IrError::Invalid(format!(
                "node `{}` ({}) must produce {} outputs, has {}",
                node.name,
                node.op.name(),
                node.op.num_outputs(),
                node.outputs.len()
            )));
        }
        for out in &node.outputs {
            // A `Constant` node's payload lives in the initializer table
            // under its output name by design — that pairing is the one
            // permitted "double definition".
            let constant_payload =
                matches!(node.op, crate::op::OpKind::Constant) && graph.is_initializer(out);
            if !defined.insert(out) && !constant_payload {
                return Err(IrError::DuplicateTensor(out.clone()));
            }
        }
    }
    for node in &graph.nodes {
        for inp in &node.inputs {
            if !defined.contains(inp.as_str()) {
                return Err(IrError::UnknownTensor(inp.clone()));
            }
        }
    }
    for out in &graph.outputs {
        if !defined.contains(out.as_str()) {
            return Err(IrError::UnknownTensor(out.clone()));
        }
    }
    topo_sort(graph)?;
    Ok(())
}

/// Attribute sanity for spatial operators (check 8). A model file with
/// `stride: (0, _)` used to sail through validation and only fail later as a
/// divide-by-zero panic inside conv/pool output-size computation.
fn check_attrs(node: &crate::graph::Node) -> Result<()> {
    use crate::op::{OpKind, PoolSpec};
    let attr_err = |reason: String| {
        Err(IrError::Attr {
            node: node.name.clone(),
            reason,
        })
    };
    let check_pool = |what: &str, spec: &PoolSpec| {
        if spec.stride.0 == 0 || spec.stride.1 == 0 {
            return attr_err(format!("{what} stride {:?} must be nonzero", spec.stride));
        }
        if spec.kernel.0 == 0 || spec.kernel.1 == 0 {
            return attr_err(format!("{what} kernel {:?} must be nonzero", spec.kernel));
        }
        Ok(())
    };
    match &node.op {
        OpKind::Conv {
            kernel,
            stride,
            groups,
            ..
        } => {
            if stride.0 == 0 || stride.1 == 0 {
                return attr_err(format!("Conv stride {stride:?} must be nonzero"));
            }
            if kernel.0 == 0 || kernel.1 == 0 {
                return attr_err(format!("Conv kernel {kernel:?} must be nonzero"));
            }
            if *groups == 0 {
                return attr_err("Conv groups must be nonzero".into());
            }
            Ok(())
        }
        OpKind::MaxPool(spec) => check_pool("MaxPool", spec),
        OpKind::AveragePool(spec) => check_pool("AveragePool", spec),
        OpKind::Resize { scale } => {
            if scale.0 == 0 || scale.1 == 0 {
                return attr_err(format!("Resize scale {scale:?} must be nonzero"));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TensorInfo;
    use crate::op::{DType, OpKind};

    fn ok_graph() -> Graph {
        let mut g = Graph::new("ok");
        g.inputs.push(TensorInfo::new("x", DType::F32, vec![1]));
        g.push_node("a", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        g.outputs.push("y".into());
        g
    }

    #[test]
    fn valid_graph_passes() {
        validate(&ok_graph()).unwrap();
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = ok_graph();
        g.nodes[0].inputs[0] = "ghost".into();
        assert!(matches!(validate(&g), Err(IrError::UnknownTensor(t)) if t == "ghost"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut g = ok_graph();
        g.push_node("b", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        assert!(matches!(validate(&g), Err(IrError::DuplicateTensor(_))));
    }

    #[test]
    fn duplicate_node_name_rejected() {
        let mut g = ok_graph();
        g.push_node("a", OpKind::Relu, vec!["y".into()], vec!["z".into()]);
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }

    #[test]
    fn unknown_graph_output_rejected() {
        let mut g = ok_graph();
        g.outputs.push("ghost".into());
        assert!(matches!(validate(&g), Err(IrError::UnknownTensor(_))));
    }

    #[test]
    fn bad_node_id_rejected() {
        let mut g = ok_graph();
        g.nodes[0].id = 7;
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }

    #[test]
    fn empty_node_name_rejected() {
        let mut g = ok_graph();
        g.nodes[0].name = String::new();
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("empty name")));
    }

    #[test]
    fn fixed_input_arity_enforced() {
        let mut g = ok_graph();
        // Relu is strictly unary; feed it two inputs.
        g.nodes[0].inputs.push("x".into());
        assert!(matches!(
            validate(&g),
            Err(IrError::Arity {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn ranged_input_arity_enforced() {
        let mut g = ok_graph();
        // Conv without a weight operand: below the 2..=3 range.
        g.push_node(
            "c",
            OpKind::Conv {
                kernel: (1, 1),
                stride: (1, 1),
                pads: (0, 0),
                groups: 1,
            },
            vec!["y".into()],
            vec!["z".into()],
        );
        g.outputs.push("z".into());
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("2..=3")));
    }

    #[test]
    fn variadic_minimum_enforced() {
        let mut g = ok_graph();
        g.push_node("cc", OpKind::Concat { axis: 0 }, vec![], vec!["z".into()]);
        g.outputs.push("z".into());
        assert!(matches!(validate(&g), Err(IrError::Invalid(m)) if m.contains("at least 1")));
    }

    #[test]
    fn zero_stride_conv_rejected_with_attr_error() {
        // Regression: this graph used to validate cleanly and then panic
        // with a divide-by-zero inside conv output-size computation.
        let mut g = ok_graph();
        g.push_node(
            "c",
            OpKind::Conv {
                kernel: (3, 3),
                stride: (0, 1),
                pads: (1, 1),
                groups: 1,
            },
            vec!["y".into(), "y".into()],
            vec!["z".into()],
        );
        g.outputs.push("z".into());
        assert!(matches!(validate(&g), Err(IrError::Attr { node, reason })
                if node == "c" && reason.contains("stride")));
    }

    #[test]
    fn degenerate_pool_and_conv_attrs_rejected() {
        use crate::op::PoolSpec;
        let bad_ops = [
            OpKind::Conv {
                kernel: (0, 3),
                stride: (1, 1),
                pads: (0, 0),
                groups: 1,
            },
            OpKind::Conv {
                kernel: (3, 3),
                stride: (1, 1),
                pads: (0, 0),
                groups: 0,
            },
            OpKind::MaxPool(PoolSpec {
                kernel: (2, 2),
                stride: (1, 0),
                pads: (0, 0),
                ceil_mode: false,
            }),
            OpKind::AveragePool(PoolSpec {
                kernel: (2, 0),
                stride: (1, 1),
                pads: (0, 0),
                ceil_mode: false,
            }),
            OpKind::Resize { scale: (0, 2) },
        ];
        for op in bad_ops {
            let mut g = ok_graph();
            let inputs = match op.input_arity() {
                (2, _) => vec!["y".into(), "y".into()],
                _ => vec!["y".into()],
            };
            g.push_node("bad", op.clone(), inputs, vec!["z".into()]);
            g.outputs.push("z".into());
            assert!(
                matches!(validate(&g), Err(IrError::Attr { .. })),
                "{op:?} must be rejected"
            );
        }
    }

    #[test]
    fn split_arity_enforced() {
        let mut g = ok_graph();
        g.push_node(
            "s",
            OpKind::Split {
                axis: 0,
                parts: vec![1, 1],
            },
            vec!["y".into()],
            vec!["s0".into()], // should be two outputs
        );
        assert!(matches!(validate(&g), Err(IrError::Invalid(_))));
    }
}
