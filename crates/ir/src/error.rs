//! Error type shared by all IR operations.

use std::fmt;

/// Errors produced while constructing, validating, transforming or
/// shape-inferring a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A tensor name was referenced but never produced by a node, listed as
    /// a graph input, or present in the initializer table.
    UnknownTensor(String),
    /// Two producers (nodes, inputs or initializers) claim the same tensor.
    DuplicateTensor(String),
    /// A node id was out of range or referred to a removed node.
    UnknownNode(usize),
    /// The graph contains a cycle (with a witness tensor on the cycle).
    Cycle(String),
    /// Shape inference failed for a node.
    Shape { node: String, reason: String },
    /// An operator received the wrong number of inputs.
    Arity {
        node: String,
        expected: usize,
        got: usize,
    },
    /// An operator carries a degenerate static attribute (zero stride, zero
    /// kernel extent, zero groups, …) that downstream shape math and kernels
    /// cannot give meaning to. Surfaced by `ramiel check` as RV0002.
    Attr { node: String, reason: String },
    /// Deserialization of a model file failed.
    Serde(String),
    /// Catch-all for invalid structural edits.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownTensor(t) => write!(f, "unknown tensor `{t}`"),
            IrError::DuplicateTensor(t) => write!(f, "duplicate tensor `{t}`"),
            IrError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            IrError::Cycle(t) => write!(f, "graph contains a cycle through `{t}`"),
            IrError::Shape { node, reason } => {
                write!(f, "shape inference failed at node `{node}`: {reason}")
            }
            IrError::Arity {
                node,
                expected,
                got,
            } => write!(f, "node `{node}` expects {expected} inputs, got {got}"),
            IrError::Attr { node, reason } => {
                write!(f, "node `{node}` has an invalid attribute: {reason}")
            }
            IrError::Serde(msg) => write!(f, "model (de)serialization error: {msg}"),
            IrError::Invalid(msg) => write!(f, "invalid graph operation: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}
