//! The dataflow graph container and its edge queries.

use crate::error::IrError;
use crate::op::{DType, OpKind};
use crate::tensor_data::TensorData;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Index of a node within its [`Graph`]. Stable until a structural rebuild
/// (e.g. [`Graph::retain_nodes`]) reindexes the graph.
pub type NodeId = usize;

/// Static description of a tensor flowing along an edge: name, element type
/// and shape. Shapes in this IR are fully static (the batch dimension is
/// fixed when a model is instantiated), matching the frozen ONNX graphs the
/// paper ingests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorInfo {
    pub name: String,
    pub dtype: DType,
    pub shape: Vec<usize>,
}

impl TensorInfo {
    pub fn new(name: impl Into<String>, dtype: DType, shape: Vec<usize>) -> Self {
        TensorInfo {
            name: name.into(),
            dtype,
            shape,
        }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// One operator application: `outputs = op(inputs)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Index in [`Graph::nodes`].
    pub id: NodeId,
    /// Human-readable unique name (drives codegen symbol names).
    pub name: String,
    pub op: OpKind,
    /// Names of consumed tensors, in operator-defined order.
    pub inputs: Vec<String>,
    /// Names of produced tensors.
    pub outputs: Vec<String>,
}

/// A directed acyclic dataflow graph over named tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub name: String,
    pub nodes: Vec<Node>,
    /// Runtime-supplied tensors (model inputs).
    pub inputs: Vec<TensorInfo>,
    /// Names of the tensors the model returns.
    pub outputs: Vec<String>,
    /// Compile-time constants: weights, biases, shape vectors.
    /// A `BTreeMap` keeps iteration deterministic across runs.
    pub initializers: BTreeMap<String, TensorData>,
    /// Inferred tensor descriptions (filled by `shape::infer_shapes`).
    pub value_info: BTreeMap<String, TensorInfo>,
}

/// Precomputed adjacency for a graph snapshot. Build once per pass with
/// [`Graph::adjacency`]; any structural mutation invalidates it.
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// Tensor name → producing node.
    pub producer_of: HashMap<String, NodeId>,
    /// Tensor name → consuming nodes (in node order, may repeat if a node
    /// consumes the same tensor twice).
    pub consumers_of: HashMap<String, Vec<NodeId>>,
    /// Unique predecessor node ids per node.
    pub preds: Vec<Vec<NodeId>>,
    /// Unique successor node ids per node.
    pub succs: Vec<Vec<NodeId>>,
}

impl Graph {
    /// An empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            initializers: BTreeMap::new(),
            value_info: BTreeMap::new(),
        }
    }

    /// Number of operator nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of node-to-node dependence edges (tensor granularity: one per
    /// (producer, consumer, tensor) triple).
    pub fn num_edges(&self) -> usize {
        let adj = self.adjacency();
        self.nodes
            .iter()
            .map(|n| {
                n.inputs
                    .iter()
                    .filter(|t| adj.producer_of.contains_key(*t))
                    .count()
            })
            .sum()
    }

    /// Borrow a node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id).ok_or(IrError::UnknownNode(id))
    }

    /// Append a node, assigning it the next id. Low-level; prefer
    /// [`crate::GraphBuilder`] for construction.
    pub fn push_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<String>,
        outputs: Vec<String>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs,
            outputs,
        });
        id
    }

    /// True if `tensor` is a compile-time constant.
    pub fn is_initializer(&self, tensor: &str) -> bool {
        self.initializers.contains_key(tensor)
    }

    /// True if `tensor` is a runtime graph input.
    pub fn is_graph_input(&self, tensor: &str) -> bool {
        self.inputs.iter().any(|i| i.name == tensor)
    }

    /// Look up the static description of a tensor: graph inputs first, then
    /// inferred `value_info`, then initializers.
    pub fn tensor_info(&self, tensor: &str) -> Option<TensorInfo> {
        if let Some(i) = self.inputs.iter().find(|i| i.name == tensor) {
            return Some(i.clone());
        }
        if let Some(v) = self.value_info.get(tensor) {
            return Some(v.clone());
        }
        self.initializers.get(tensor).map(|t| TensorInfo {
            name: tensor.to_string(),
            dtype: t.dtype(),
            shape: t.shape.clone(),
        })
    }

    /// Build the adjacency snapshot for the current structure.
    pub fn adjacency(&self) -> Adjacency {
        let mut producer_of = HashMap::with_capacity(self.nodes.len());
        let mut consumers_of: HashMap<String, Vec<NodeId>> = HashMap::new();
        for n in &self.nodes {
            for out in &n.outputs {
                producer_of.insert(out.clone(), n.id);
            }
        }
        for n in &self.nodes {
            for inp in &n.inputs {
                consumers_of.entry(inp.clone()).or_default().push(n.id);
            }
        }
        let mut preds = vec![Vec::new(); self.nodes.len()];
        let mut succs = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for inp in &n.inputs {
                if let Some(&p) = producer_of.get(inp) {
                    if !preds[n.id].contains(&p) {
                        preds[n.id].push(p);
                    }
                    if !succs[p].contains(&n.id) {
                        succs[p].push(n.id);
                    }
                }
            }
        }
        Adjacency {
            producer_of,
            consumers_of,
            preds,
            succs,
        }
    }

    /// The node producing `tensor`, if any.
    pub fn producer(&self, tensor: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.outputs.iter().any(|o| o == tensor))
            .map(|n| n.id)
    }

    /// Keep only the nodes for which `keep` returns true, dropping their
    /// edges, reindexing ids, and pruning now-unreferenced initializers and
    /// `value_info` entries. Returns the old-id → new-id mapping.
    pub fn retain_nodes(&mut self, mut keep: impl FnMut(&Node) -> bool) -> HashMap<NodeId, NodeId> {
        let mut mapping = HashMap::new();
        let mut kept = Vec::with_capacity(self.nodes.len());
        for node in self.nodes.drain(..) {
            if keep(&node) {
                let new_id = kept.len();
                mapping.insert(node.id, new_id);
                let mut node = node;
                node.id = new_id;
                kept.push(node);
            }
        }
        self.nodes = kept;
        self.prune_dangling_metadata();
        mapping
    }

    /// Drop initializers and value_info entries no longer referenced by any
    /// node, graph input, or graph output.
    pub fn prune_dangling_metadata(&mut self) {
        let mut live: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for n in &self.nodes {
            live.extend(n.inputs.iter().map(String::as_str));
            live.extend(n.outputs.iter().map(String::as_str));
        }
        live.extend(self.outputs.iter().map(String::as_str));
        let live: std::collections::HashSet<String> = live.iter().map(|s| s.to_string()).collect();
        self.initializers.retain(|k, _| live.contains(k));
        self.value_info.retain(|k, _| live.contains(k));
    }

    /// All (producer, consumer, tensor) dependence triples.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, String)> {
        let adj = self.adjacency();
        let mut out = Vec::new();
        for n in &self.nodes {
            for inp in &n.inputs {
                if let Some(&p) = adj.producer_of.get(inp) {
                    out.push((p, n.id, inp.clone()));
                }
            }
        }
        out
    }

    /// Total static weight-parameter count (initializer elements), a rough
    /// model-size statistic used in reports.
    pub fn num_parameters(&self) -> usize {
        self.initializers.values().map(|t| t.numel()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // in -> a -> {b, c} -> d
        let mut g = Graph::new("diamond");
        g.inputs.push(TensorInfo::new("in", DType::F32, vec![1, 4]));
        g.push_node("a", OpKind::Relu, vec!["in".into()], vec!["ta".into()]);
        g.push_node("b", OpKind::Sigmoid, vec!["ta".into()], vec!["tb".into()]);
        g.push_node("c", OpKind::Tanh, vec!["ta".into()], vec!["tc".into()]);
        g.push_node(
            "d",
            OpKind::Add,
            vec!["tb".into(), "tc".into()],
            vec!["td".into()],
        );
        g.outputs.push("td".into());
        g
    }

    #[test]
    fn adjacency_reflects_structure() {
        let g = diamond();
        let adj = g.adjacency();
        assert_eq!(adj.producer_of["ta"], 0);
        assert_eq!(adj.succs[0], vec![1, 2]);
        assert_eq!(adj.preds[3], vec![1, 2]);
        assert_eq!(adj.consumers_of["ta"], vec![1, 2]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn retain_nodes_reindexes_and_prunes() {
        let mut g = diamond();
        g.initializers
            .insert("w_unused".into(), TensorData::scalar_f32(1.0));
        // Remove node "c" (id 2) and "d" (id 3); keep a, b.
        g.outputs = vec!["tb".into()];
        let mapping = g.retain_nodes(|n| n.name == "a" || n.name == "b");
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(mapping[&0], 0);
        assert_eq!(mapping[&1], 1);
        assert!(!mapping.contains_key(&2));
        assert_eq!(g.nodes[1].name, "b");
        assert_eq!(g.nodes[1].id, 1);
        // unreferenced initializer is gone
        assert!(g.initializers.is_empty());
    }

    #[test]
    fn tensor_info_lookup_order() {
        let mut g = diamond();
        g.initializers
            .insert("w".into(), TensorData::f32(vec![2, 2], vec![0.0; 4]));
        assert_eq!(g.tensor_info("in").unwrap().shape, vec![1, 4]);
        assert_eq!(g.tensor_info("w").unwrap().shape, vec![2, 2]);
        assert!(g.tensor_info("nope").is_none());
    }

    #[test]
    fn producer_lookup() {
        let g = diamond();
        assert_eq!(g.producer("tc"), Some(2));
        assert_eq!(g.producer("in"), None);
    }

    #[test]
    fn duplicate_input_consumption_counts_twice_in_consumers() {
        let mut g = Graph::new("dup");
        g.inputs.push(TensorInfo::new("x", DType::F32, vec![2]));
        g.push_node("sq", OpKind::Relu, vec!["x".into()], vec!["y".into()]);
        g.push_node(
            "m",
            OpKind::Mul,
            vec!["y".into(), "y".into()],
            vec!["z".into()],
        );
        let adj = g.adjacency();
        assert_eq!(adj.consumers_of["y"], vec![1, 1]);
        // but preds/succs are unique
        assert_eq!(adj.preds[1], vec![0]);
        assert_eq!(adj.succs[0], vec![1]);
    }
}
