//! Static shape (and dtype) inference for every supported operator.
//!
//! Inference walks the graph in topological order and fills
//! [`Graph::value_info`]. Shape operands (`Reshape`, `Expand`,
//! `ConstantOfShape`) must be compile-time constants — which is exactly the
//! state the constant-propagation pass establishes, mirroring how the paper
//! relies on onnxruntime to make these operands foldable.

use crate::error::IrError;
use crate::graph::{Graph, Node, TensorInfo};
use crate::op::{DType, OpKind};
use crate::topo::topo_sort;
use crate::Result;

/// Numpy-style broadcast of two shapes.
pub fn broadcast(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Normalize a possibly-negative axis against a rank.
pub fn norm_axis(axis: isize, rank: usize) -> Result<usize> {
    let a = if axis < 0 { axis + rank as isize } else { axis };
    if a < 0 || a as usize >= rank {
        return Err(IrError::Invalid(format!(
            "axis {axis} out of range for rank {rank}"
        )));
    }
    Ok(a as usize)
}

fn err(node: &Node, reason: impl Into<String>) -> IrError {
    IrError::Shape {
        node: node.name.clone(),
        reason: reason.into(),
    }
}

/// Run shape inference over the whole graph, filling `value_info` for every
/// node output. Existing entries are overwritten.
pub fn infer_shapes(graph: &mut Graph) -> Result<()> {
    let order = topo_sort(graph)?;
    let nodes: Vec<Node> = order.iter().map(|&i| graph.nodes[i].clone()).collect();
    for node in &nodes {
        let infos = infer_node(graph, node)?;
        if infos.len() != node.outputs.len() {
            return Err(err(node, "internal: output arity mismatch"));
        }
        for (out, info) in node.outputs.iter().zip(infos) {
            graph.value_info.insert(
                out.clone(),
                TensorInfo {
                    name: out.clone(),
                    ..info
                },
            );
        }
    }
    Ok(())
}

/// Look up the info of one node input.
fn input_info(graph: &Graph, node: &Node, idx: usize) -> Result<TensorInfo> {
    let name = node.inputs.get(idx).ok_or_else(|| IrError::Arity {
        node: node.name.clone(),
        expected: idx + 1,
        got: node.inputs.len(),
    })?;
    graph
        .tensor_info(name)
        .ok_or_else(|| IrError::UnknownTensor(name.clone()))
}

/// Fetch a constant i64 vector operand (shape/axes style inputs). The
/// operand may be an initializer or a compile-time-evaluable expression of
/// `Shape`/`Gather`/`Concat`/… nodes — the pattern ONNX exporters emit
/// around `Reshape`, which onnxruntime (and our constant-propagation pass)
/// folds away.
fn const_i64_operand(graph: &Graph, node: &Node, idx: usize) -> Result<Vec<i64>> {
    let name = node.inputs.get(idx).ok_or_else(|| IrError::Arity {
        node: node.name.clone(),
        expected: idx + 1,
        got: node.inputs.len(),
    })?;
    const_eval_i64(graph, name, 64).ok_or_else(|| {
        err(
            node,
            format!("operand `{name}` must be a constant i64 tensor"),
        )
    })
}

/// Best-effort compile-time evaluation of an i64 tensor expression.
///
/// Handles the shape-computation idioms of ONNX exporters: `Shape` of a
/// statically-shaped tensor, `Gather`/`Slice`/`Concat`/`Unsqueeze`/`Squeeze`
/// over shape vectors, i64 arithmetic, `Cast` to i64 and `Identity`. Returns
/// `None` when the expression depends on runtime data. `fuel` bounds the
/// recursion.
pub fn const_eval_i64(graph: &Graph, tensor: &str, fuel: usize) -> Option<Vec<i64>> {
    if fuel == 0 {
        return None;
    }
    if let Some(init) = graph.initializers.get(tensor) {
        return init.as_i64().map(|s| s.to_vec());
    }
    let producer = graph.producer(tensor)?;
    let node = &graph.nodes[producer];
    let arg = |i: usize| -> Option<Vec<i64>> {
        node.inputs
            .get(i)
            .and_then(|t| const_eval_i64(graph, t, fuel - 1))
    };
    match &node.op {
        OpKind::Shape => {
            let input = node.inputs.first()?;
            let info = graph.tensor_info(input)?;
            Some(info.shape.iter().map(|&d| d as i64).collect())
        }
        OpKind::Gather { axis: 0 } => {
            let data = arg(0)?;
            let idx = arg(1)?;
            let dim = data.len() as i64;
            idx.iter()
                .map(|&raw| {
                    let i = if raw < 0 { raw + dim } else { raw };
                    data.get(usize::try_from(i).ok()?).copied()
                })
                .collect()
        }
        OpKind::Concat { axis: 0 } => {
            let mut out = Vec::new();
            for i in 0..node.inputs.len() {
                out.extend(arg(i)?);
            }
            Some(out)
        }
        OpKind::Unsqueeze { .. }
        | OpKind::Squeeze { .. }
        | OpKind::Identity
        | OpKind::Cast { to: DType::I64 } => arg(0),
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } if axes == &[0] && steps.iter().all(|&s| s > 0) => {
            let data = arg(0)?;
            let dim = data.len() as i64;
            let clamp = |v: i64| if v < 0 { v + dim } else { v }.clamp(0, dim);
            let (s, e) = (clamp(starts[0]), clamp(ends[0].min(dim)));
            let step = steps[0] as usize;
            if e <= s {
                return Some(Vec::new());
            }
            Some(
                data[s as usize..e as usize]
                    .iter()
                    .step_by(step)
                    .copied()
                    .collect(),
            )
        }
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
            let a = arg(0)?;
            let b = arg(1)?;
            let n = a.len().max(b.len());
            if (a.len() != n && a.len() != 1) || (b.len() != n && b.len() != 1) {
                return None;
            }
            let pick = |v: &[i64], i: usize| if v.len() == 1 { v[0] } else { v[i] };
            (0..n)
                .map(|i| {
                    let (x, y) = (pick(&a, i), pick(&b, i));
                    match &node.op {
                        OpKind::Add => Some(x + y),
                        OpKind::Sub => Some(x - y),
                        OpKind::Mul => Some(x * y),
                        OpKind::Div => (y != 0).then(|| x / y),
                        _ => unreachable!(),
                    }
                })
                .collect()
        }
        OpKind::Constant => graph
            .initializers
            .get(&node.outputs[0])
            .and_then(|t| t.as_i64().map(|s| s.to_vec())),
        _ => None,
    }
}

/// Infer output infos for a single node given the surrounding graph.
pub fn infer_node(graph: &Graph, node: &Node) -> Result<Vec<TensorInfo>> {
    let unary = |graph: &Graph| -> Result<Vec<TensorInfo>> {
        let x = input_info(graph, node, 0)?;
        Ok(vec![x])
    };
    let binary_bcast = |graph: &Graph, dtype: Option<DType>| -> Result<Vec<TensorInfo>> {
        let a = input_info(graph, node, 0)?;
        let b = input_info(graph, node, 1)?;
        let shape = broadcast(&a.shape, &b.shape).ok_or_else(|| {
            err(
                node,
                format!("cannot broadcast {:?} with {:?}", a.shape, b.shape),
            )
        })?;
        Ok(vec![TensorInfo::new("", dtype.unwrap_or(a.dtype), shape)])
    };

    match &node.op {
        OpKind::Conv {
            kernel,
            stride,
            pads,
            groups,
        } => {
            let x = input_info(graph, node, 0)?;
            let w = input_info(graph, node, 1)?;
            if x.shape.len() != 4 || w.shape.len() != 4 {
                return Err(err(node, "Conv expects NCHW input and OIHW weight"));
            }
            let (n, c, h, wd) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
            let (m, cg) = (w.shape[0], w.shape[1]);
            if c != cg * groups {
                return Err(err(
                    node,
                    format!("Conv channels {c} != weight in-channels {cg} × groups {groups}"),
                ));
            }
            if (w.shape[2], w.shape[3]) != *kernel {
                return Err(err(
                    node,
                    "Conv kernel attribute disagrees with weight shape",
                ));
            }
            if stride.0 == 0 || stride.1 == 0 {
                // validate() rejects this as RV0002; guard here too so a
                // graph that skipped validation errors instead of panicking.
                return Err(err(node, format!("Conv stride {stride:?} must be nonzero")));
            }
            let ho = (h + 2 * pads.0)
                .checked_sub(kernel.0)
                .map(|v| v / stride.0 + 1);
            let wo = (wd + 2 * pads.1)
                .checked_sub(kernel.1)
                .map(|v| v / stride.1 + 1);
            match (ho, wo) {
                (Some(ho), Some(wo)) => {
                    Ok(vec![TensorInfo::new("", DType::F32, vec![n, m, ho, wo])])
                }
                _ => Err(err(node, "Conv kernel larger than padded input")),
            }
        }
        OpKind::MatMul => {
            let a = input_info(graph, node, 0)?;
            let b = input_info(graph, node, 1)?;
            if a.shape.len() < 2 || b.shape.len() < 2 {
                return Err(err(node, "MatMul operands must have rank >= 2"));
            }
            let (m, k1) = (a.shape[a.shape.len() - 2], a.shape[a.shape.len() - 1]);
            let (k2, n) = (b.shape[b.shape.len() - 2], b.shape[b.shape.len() - 1]);
            if k1 != k2 {
                return Err(err(node, format!("MatMul inner dims {k1} != {k2}")));
            }
            let batch = broadcast(&a.shape[..a.shape.len() - 2], &b.shape[..b.shape.len() - 2])
                .ok_or_else(|| err(node, "MatMul batch dims do not broadcast"))?;
            let mut shape = batch;
            shape.push(m);
            shape.push(n);
            Ok(vec![TensorInfo::new("", DType::F32, shape)])
        }
        OpKind::Gemm { trans_b } => {
            let x = input_info(graph, node, 0)?;
            let w = input_info(graph, node, 1)?;
            if x.shape.len() != 2 || w.shape.len() != 2 {
                return Err(err(node, "Gemm operands must be 2-D"));
            }
            let (m, k) = (x.shape[0], x.shape[1]);
            let (n, kw) = if *trans_b {
                (w.shape[0], w.shape[1])
            } else {
                (w.shape[1], w.shape[0])
            };
            if k != kw {
                return Err(err(node, format!("Gemm inner dims {k} != {kw}")));
            }
            Ok(vec![TensorInfo::new("", DType::F32, vec![m, n])])
        }
        OpKind::Relu
        | OpKind::LeakyRelu { .. }
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Gelu
        | OpKind::Erf
        | OpKind::Sqrt
        | OpKind::Exp
        | OpKind::Neg
        | OpKind::Clip { .. }
        | OpKind::Dropout
        | OpKind::Identity
        | OpKind::Softmax { .. } => unary(graph),
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Pow => {
            binary_bcast(graph, None)
        }
        OpKind::Equal => binary_bcast(graph, Some(DType::Bool)),
        OpKind::Where => {
            let c = input_info(graph, node, 0)?;
            let a = input_info(graph, node, 1)?;
            let b = input_info(graph, node, 2)?;
            let s1 = broadcast(&c.shape, &a.shape)
                .and_then(|s| broadcast(&s, &b.shape))
                .ok_or_else(|| err(node, "Where operands do not broadcast"))?;
            Ok(vec![TensorInfo::new("", a.dtype, s1)])
        }
        OpKind::BatchNorm { .. } => {
            let x = input_info(graph, node, 0)?;
            if node.inputs.len() != 5 {
                return Err(IrError::Arity {
                    node: node.name.clone(),
                    expected: 5,
                    got: node.inputs.len(),
                });
            }
            Ok(vec![x])
        }
        OpKind::LayerNorm { .. } => unary(graph),
        OpKind::ReduceMean { axes, keepdims } => {
            let x = input_info(graph, node, 0)?;
            let rank = x.shape.len();
            let mut drop = vec![false; rank];
            for &a in axes {
                drop[norm_axis(a, rank)?] = true;
            }
            let mut shape = Vec::new();
            for (i, &d) in x.shape.iter().enumerate() {
                if drop[i] {
                    if *keepdims {
                        shape.push(1);
                    }
                } else {
                    shape.push(d);
                }
            }
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::MaxPool(p) | OpKind::AveragePool(p) => {
            let x = input_info(graph, node, 0)?;
            if x.shape.len() != 4 {
                return Err(err(node, "pooling expects NCHW input"));
            }
            let ho = p.out_extent(x.shape[2], 0);
            let wo = p.out_extent(x.shape[3], 1);
            if ho == 0 || wo == 0 {
                return Err(err(node, "pool kernel larger than padded input"));
            }
            Ok(vec![TensorInfo::new(
                "",
                x.dtype,
                vec![x.shape[0], x.shape[1], ho, wo],
            )])
        }
        OpKind::GlobalAveragePool => {
            let x = input_info(graph, node, 0)?;
            if x.shape.len() != 4 {
                return Err(err(node, "GlobalAveragePool expects NCHW input"));
            }
            Ok(vec![TensorInfo::new(
                "",
                x.dtype,
                vec![x.shape[0], x.shape[1], 1, 1],
            )])
        }
        OpKind::Concat { axis } => {
            let first = input_info(graph, node, 0)?;
            let rank = first.shape.len();
            let ax = norm_axis(*axis, rank)?;
            let mut shape = first.shape.clone();
            for i in 1..node.inputs.len() {
                let t = input_info(graph, node, i)?;
                if t.shape.len() != rank {
                    return Err(err(node, "Concat rank mismatch"));
                }
                for (d, (&a, &b)) in t.shape.iter().zip(shape.iter()).enumerate() {
                    if d != ax && a != b {
                        return Err(err(node, format!("Concat dim {d} mismatch: {a} vs {b}")));
                    }
                }
                shape[ax] += t.shape[ax];
            }
            Ok(vec![TensorInfo::new("", first.dtype, shape)])
        }
        OpKind::Split { axis, parts } => {
            let x = input_info(graph, node, 0)?;
            let ax = norm_axis(*axis, x.shape.len())?;
            if parts.iter().sum::<usize>() != x.shape[ax] {
                return Err(err(node, "Split parts do not sum to the axis extent"));
            }
            Ok(parts
                .iter()
                .map(|&p| {
                    let mut s = x.shape.clone();
                    s[ax] = p;
                    TensorInfo::new("", x.dtype, s)
                })
                .collect())
        }
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } => {
            let x = input_info(graph, node, 0)?;
            let mut shape = x.shape.clone();
            if axes.len() != starts.len() || starts.len() != ends.len() || ends.len() != steps.len()
            {
                return Err(err(node, "Slice attribute lengths disagree"));
            }
            for (((&axis, &start), &end), &step) in axes.iter().zip(starts).zip(ends).zip(steps) {
                let ax = norm_axis(axis, x.shape.len())?;
                let dim = x.shape[ax] as i64;
                if step <= 0 {
                    return Err(err(node, "Slice supports positive steps only"));
                }
                let clamp = |v: i64| -> i64 {
                    let v = if v < 0 { v + dim } else { v };
                    v.clamp(0, dim)
                };
                let (s, e) = (clamp(start), clamp(end.min(dim)));
                let extent = if e > s { (e - s + step - 1) / step } else { 0 };
                shape[ax] = extent as usize;
            }
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Gather { axis } => {
            let data = input_info(graph, node, 0)?;
            let idx = input_info(graph, node, 1)?;
            let ax = norm_axis(*axis, data.shape.len())?;
            let mut shape = Vec::new();
            shape.extend_from_slice(&data.shape[..ax]);
            shape.extend_from_slice(&idx.shape);
            shape.extend_from_slice(&data.shape[ax + 1..]);
            Ok(vec![TensorInfo::new("", data.dtype, shape)])
        }
        OpKind::Reshape => {
            let x = input_info(graph, node, 0)?;
            let spec = const_i64_operand(graph, node, 1)?;
            let numel: usize = x.shape.iter().product();
            let mut shape: Vec<usize> = Vec::with_capacity(spec.len());
            let mut infer_at = None;
            for (i, &d) in spec.iter().enumerate() {
                match d {
                    -1 => {
                        if infer_at.is_some() {
                            return Err(err(node, "Reshape allows a single -1"));
                        }
                        infer_at = Some(i);
                        shape.push(1);
                    }
                    0 => shape.push(
                        *x.shape
                            .get(i)
                            .ok_or_else(|| err(node, "Reshape 0-dim copies past input rank"))?,
                    ),
                    d if d > 0 => shape.push(d as usize),
                    _ => return Err(err(node, "Reshape dims must be -1, 0 or positive")),
                }
            }
            let partial: usize = shape.iter().product();
            if let Some(i) = infer_at {
                if partial == 0 || !numel.is_multiple_of(partial) {
                    return Err(err(node, "Reshape cannot infer -1 dimension"));
                }
                shape[i] = numel / partial;
            } else if partial != numel {
                return Err(err(
                    node,
                    format!("Reshape element count mismatch: {numel} -> {partial}"),
                ));
            }
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Transpose { perm } => {
            let x = input_info(graph, node, 0)?;
            if perm.len() != x.shape.len() {
                return Err(err(node, "Transpose perm rank mismatch"));
            }
            let shape = perm.iter().map(|&p| x.shape[p]).collect();
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Flatten { axis } => {
            let x = input_info(graph, node, 0)?;
            let ax = if *axis == x.shape.len() as isize {
                x.shape.len()
            } else {
                norm_axis(*axis, x.shape.len())?
            };
            let lead: usize = x.shape[..ax].iter().product();
            let tail: usize = x.shape[ax..].iter().product();
            Ok(vec![TensorInfo::new("", x.dtype, vec![lead, tail])])
        }
        OpKind::Unsqueeze { axes } => {
            let x = input_info(graph, node, 0)?;
            let out_rank = x.shape.len() + axes.len();
            let mut at = vec![false; out_rank];
            for &a in axes {
                at[norm_axis(a, out_rank)?] = true;
            }
            let mut it = x.shape.iter();
            let shape = at
                .iter()
                .map(|&ins| if ins { 1 } else { *it.next().unwrap() })
                .collect();
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Squeeze { axes } => {
            let x = input_info(graph, node, 0)?;
            let rank = x.shape.len();
            let mut drop = vec![false; rank];
            for &a in axes {
                let ax = norm_axis(a, rank)?;
                if x.shape[ax] != 1 {
                    return Err(err(node, format!("cannot squeeze non-unit axis {ax}")));
                }
                drop[ax] = true;
            }
            let shape = x
                .shape
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop[*i])
                .map(|(_, &d)| d)
                .collect();
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Expand => {
            let x = input_info(graph, node, 0)?;
            let spec = const_i64_operand(graph, node, 1)?;
            let target: Vec<usize> = spec.iter().map(|&d| d.max(0) as usize).collect();
            let shape = broadcast(&x.shape, &target)
                .ok_or_else(|| err(node, "Expand target does not broadcast"))?;
            Ok(vec![TensorInfo::new("", x.dtype, shape)])
        }
        OpKind::Resize { scale } => {
            let x = input_info(graph, node, 0)?;
            if x.shape.len() != 4 {
                return Err(err(node, "Resize expects NCHW input"));
            }
            Ok(vec![TensorInfo::new(
                "",
                x.dtype,
                vec![
                    x.shape[0],
                    x.shape[1],
                    x.shape[2] * scale.0,
                    x.shape[3] * scale.1,
                ],
            )])
        }
        OpKind::Pad { pads } => {
            let x = input_info(graph, node, 0)?;
            if x.shape.len() != 4 {
                return Err(err(node, "Pad expects NCHW input"));
            }
            Ok(vec![TensorInfo::new(
                "",
                x.dtype,
                vec![
                    x.shape[0],
                    x.shape[1],
                    x.shape[2] + pads.0 + pads.2,
                    x.shape[3] + pads.1 + pads.3,
                ],
            )])
        }
        OpKind::Cast { to } => {
            let x = input_info(graph, node, 0)?;
            Ok(vec![TensorInfo::new("", *to, x.shape)])
        }
        OpKind::Constant => {
            let out = &node.outputs[0];
            let data = graph
                .initializers
                .get(out)
                .ok_or_else(|| err(node, "Constant payload missing from initializers"))?;
            Ok(vec![TensorInfo::new("", data.dtype(), data.shape.clone())])
        }
        OpKind::Shape => {
            let x = input_info(graph, node, 0)?;
            Ok(vec![TensorInfo::new("", DType::I64, vec![x.shape.len()])])
        }
        OpKind::ConstantOfShape { .. } => {
            let spec = const_i64_operand(graph, node, 0)?;
            let shape: Vec<usize> = spec.iter().map(|&d| d.max(0) as usize).collect();
            Ok(vec![TensorInfo::new("", DType::F32, shape)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::PoolSpec;
    use crate::tensor_data::TensorData;

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[2, 1, 4], &[3, 1]), Some(vec![2, 3, 4]));
        assert_eq!(broadcast(&[2], &[3]), None);
        assert_eq!(broadcast(&[], &[5]), Some(vec![5]));
    }

    #[test]
    fn conv_pool_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 3, 32, 32]);
        let c = b.conv(&x, 3, 8, (3, 3), (2, 2), (1, 1), 1);
        let p = b.op(
            "mp",
            OpKind::MaxPool(PoolSpec {
                kernel: (3, 3),
                stride: (2, 2),
                pads: (0, 0),
                ceil_mode: true,
            }),
            vec![c.clone()],
        );
        b.output(&p);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&c].shape, vec![1, 8, 16, 16]);
        assert_eq!(g.value_info[&p].shape, vec![1, 8, 8, 8]);
    }

    #[test]
    fn matmul_broadcasting_and_gemm() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", DType::F32, vec![2, 4, 8, 16]);
        let w = b.weight("w", vec![16, 32], crate::builder::Init::Const(0.0));
        let y = b.op("mm", OpKind::MatMul, vec![a, w]);
        let f = b.op("fl", OpKind::Flatten { axis: 1 }, vec![y.clone()]);
        b.output(&f);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![2, 4, 8, 32]);
        assert_eq!(g.value_info[&f].shape, vec![2, 4 * 8 * 32]);
    }

    #[test]
    fn reshape_with_inference_and_zero_copy() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 3, 4]);
        let spec = b.init("spec", TensorData::vec_i64(vec![0, -1]));
        let y = b.op("rs", OpKind::Reshape, vec![x, spec]);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![2, 12]);
    }

    #[test]
    fn concat_split_roundtrip_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 6, 4, 4]);
        let parts = b.op_multi(
            "sp",
            OpKind::Split {
                axis: 1,
                parts: vec![2, 4],
            },
            vec![x],
        );
        let y = b.op(
            "cc",
            OpKind::Concat { axis: 1 },
            vec![parts[0].clone(), parts[1].clone()],
        );
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&parts[0]].shape, vec![1, 2, 4, 4]);
        assert_eq!(g.value_info[&y].shape, vec![1, 6, 4, 4]);
    }

    #[test]
    fn slice_negative_and_clamped() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 8, 10, 10]);
        let y = b.op(
            "sl",
            OpKind::Slice {
                axes: vec![1, 2],
                starts: vec![2, -4],
                ends: vec![i64::MAX, i64::MAX],
                steps: vec![1, 2],
            },
            vec![x],
        );
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![1, 6, 2, 10]);
    }

    #[test]
    fn shape_and_gather_dtypes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4, 5]);
        let s = b.op("sh", OpKind::Shape, vec![x.clone()]);
        let idx = b.const_i64("idx", vec![0]);
        let d = b.op("ga", OpKind::Gather { axis: 0 }, vec![s.clone(), idx]);
        b.output(&d);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&s].dtype, DType::I64);
        assert_eq!(g.value_info[&s].shape, vec![2]);
        assert_eq!(g.value_info[&d].shape, vec![1]);
    }

    #[test]
    fn reduce_mean_keepdims() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 3, 4]);
        let y = b.op(
            "rm",
            OpKind::ReduceMean {
                axes: vec![-1],
                keepdims: true,
            },
            vec![x.clone()],
        );
        let z = b.op(
            "rm2",
            OpKind::ReduceMean {
                axes: vec![1],
                keepdims: false,
            },
            vec![x],
        );
        b.output(&y);
        b.output(&z);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![2, 3, 1]);
        assert_eq!(g.value_info[&z].shape, vec![2, 4]);
    }

    #[test]
    fn bad_conv_channels_rejected() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let w = b.weight("w", vec![8, 4, 3, 3], crate::builder::Init::Const(0.0));
        let y = b.op(
            "c",
            OpKind::Conv {
                kernel: (3, 3),
                stride: (1, 1),
                pads: (1, 1),
                groups: 1,
            },
            vec![x, w],
        );
        b.output(&y);
        assert!(matches!(b.finish(), Err(IrError::Shape { .. })));
    }

    #[test]
    fn exporter_style_shape_chain_resolves() {
        // Reshape(x, Concat(Gather(Shape(x), 0), [-1])) — the ONNX exporter
        // idiom that CP+DCE folds.
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 3, 4]);
        let s = b.op("sh", OpKind::Shape, vec![x.clone()]);
        let i0 = b.const_i64("i0", vec![0]);
        let d0 = b.op("g0", OpKind::Gather { axis: 0 }, vec![s, i0]);
        let minus1 = b.const_i64("m1", vec![-1]);
        let spec = b.op("cc", OpKind::Concat { axis: 0 }, vec![d0, minus1]);
        let y = b.op("rs", OpKind::Reshape, vec![x, spec]);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&y].shape, vec![2, 12]);
    }

    #[test]
    fn const_eval_arithmetic_and_slice() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![6, 8]);
        let s = b.op("sh", OpKind::Shape, vec![x.clone()]);
        let two = b.init("two", TensorData::vec_i64(vec![2]));
        let halved = b.op("dv", OpKind::Div, vec![s.clone(), two]);
        let first = b.op(
            "sl",
            OpKind::Slice {
                axes: vec![0],
                starts: vec![0],
                ends: vec![1],
                steps: vec![1],
            },
            vec![halved],
        );
        let rest = b.op(
            "sl2",
            OpKind::Slice {
                axes: vec![0],
                starts: vec![1],
                ends: vec![i64::MAX],
                steps: vec![1],
            },
            vec![s],
        );
        let spec = b.op("cc", OpKind::Concat { axis: 0 }, vec![first, rest]);
        // spec = [3, 8] → reshape fails (6·8 != 3·8)… use Expand target check
        // instead: just assert the const evaluation itself.
        b.output(&spec);
        let g = b.finish().unwrap();
        assert_eq!(const_eval_i64(&g, &spec, 64), Some(vec![3, 8]));
    }

    #[test]
    fn const_eval_gives_up_on_runtime_data() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::I64, vec![2]);
        let y = b.op("id", OpKind::Identity, vec![x]);
        b.output(&y);
        let g = b.finish().unwrap();
        assert_eq!(const_eval_i64(&g, &y, 64), None);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![3, 4]);
        let u = b.op("u", OpKind::Unsqueeze { axes: vec![0, 3] }, vec![x]);
        let s = b.op("s", OpKind::Squeeze { axes: vec![0, -1] }, vec![u.clone()]);
        b.output(&s);
        let g = b.finish().unwrap();
        assert_eq!(g.value_info[&u].shape, vec![1, 3, 4, 1]);
        assert_eq!(g.value_info[&s].shape, vec![3, 4]);
    }
}
