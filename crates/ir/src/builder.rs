//! Ergonomic, deterministic construction of dataflow graphs.
//!
//! [`GraphBuilder`] is what the model-zoo generators use: it assigns unique
//! node/tensor names, synthesizes deterministic pseudo-random weights (so a
//! model is bit-identical across runs without dragging a RNG dependency into
//! the IR crate), and finishes with validation + shape inference.

use crate::graph::{Graph, TensorInfo};
use crate::op::{DType, OpKind};
use crate::shape::infer_shapes;
use crate::tensor_data::TensorData;
use crate::validate::validate;
use crate::Result;

/// How to fill a synthesized weight tensor.
#[derive(Debug, Clone, Copy)]
pub enum Init {
    /// Every element set to the given constant.
    Const(f32),
    /// Deterministic pseudo-random uniform values in `[-scale, scale]`,
    /// seeded from the tensor name.
    Uniform(f32),
}

/// Builder for [`Graph`]s. See the crate docs for an example.
pub struct GraphBuilder {
    graph: Graph,
    counter: usize,
}

/// SplitMix64 step — tiny deterministic generator for weight synthesis.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the name: stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl GraphBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            counter: 0,
        }
    }

    /// A fresh unique name with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}_{n}")
    }

    /// Declare a runtime graph input and return its tensor name.
    pub fn input(&mut self, name: &str, dtype: DType, shape: Vec<usize>) -> String {
        self.graph.inputs.push(TensorInfo::new(name, dtype, shape));
        name.to_string()
    }

    /// Register an initializer with explicit data and return its name.
    pub fn init(&mut self, name: &str, data: TensorData) -> String {
        self.graph.initializers.insert(name.to_string(), data);
        name.to_string()
    }

    /// Synthesize a weight initializer and return its name.
    pub fn weight(&mut self, prefix: &str, shape: Vec<usize>, init: Init) -> String {
        let name = self.fresh(prefix);
        let numel: usize = shape.iter().product();
        let data = match init {
            Init::Const(c) => vec![c; numel],
            Init::Uniform(scale) => {
                let mut state = name_seed(&name);
                (0..numel)
                    .map(|_| {
                        let u = splitmix64(&mut state);
                        // Map the top 24 bits to [-scale, scale).
                        let f = (u >> 40) as f32 / (1u64 << 24) as f32;
                        (2.0 * f - 1.0) * scale
                    })
                    .collect()
            }
        };
        self.graph
            .initializers
            .insert(name.clone(), TensorData::f32(shape, data));
        name
    }

    /// A constant 1-D i64 initializer (shape vectors, axes, indices).
    pub fn const_i64(&mut self, prefix: &str, values: Vec<i64>) -> String {
        let name = self.fresh(prefix);
        self.graph
            .initializers
            .insert(name.clone(), TensorData::vec_i64(values));
        name
    }

    /// A scalar f32 initializer.
    pub fn const_scalar(&mut self, prefix: &str, v: f32) -> String {
        let name = self.fresh(prefix);
        self.graph
            .initializers
            .insert(name.clone(), TensorData::scalar_f32(v));
        name
    }

    /// Append a single-output node; returns the output tensor name.
    pub fn op(&mut self, prefix: &str, op: OpKind, inputs: Vec<String>) -> String {
        debug_assert_eq!(op.num_outputs(), 1, "use op_multi for multi-output ops");
        let name = self.fresh(prefix);
        let out = format!("{name}:0");
        self.graph.push_node(name, op, inputs, vec![out.clone()]);
        out
    }

    /// Append a multi-output node (e.g. `Split`); returns the output names.
    pub fn op_multi(&mut self, prefix: &str, op: OpKind, inputs: Vec<String>) -> Vec<String> {
        let name = self.fresh(prefix);
        let outs: Vec<String> = (0..op.num_outputs())
            .map(|i| format!("{name}:{i}"))
            .collect();
        self.graph.push_node(name, op, inputs, outs.clone());
        outs
    }

    /// Mark a tensor as a graph output.
    pub fn output(&mut self, tensor: &str) {
        self.graph.outputs.push(tensor.to_string());
    }

    /// Validate, run shape inference, and return the finished graph.
    pub fn finish(mut self) -> Result<Graph> {
        validate(&self.graph)?;
        infer_shapes(&mut self.graph)?;
        Ok(self.graph)
    }

    /// Access the graph under construction (for tests and advanced callers).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    // ---- high-level layer helpers shared by the model zoo -----------------

    /// `Conv → Relu` with synthesized weight + bias, the workhorse of every
    /// vision model in the paper.
    pub fn conv_relu(
        &mut self,
        x: &str,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> String {
        let y = self.conv(x, in_ch, out_ch, (k, k), (stride, stride), (pad, pad), 1);
        self.op("relu", OpKind::Relu, vec![y])
    }

    /// Bare convolution with synthesized weight + bias.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        x: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        pads: (usize, usize),
        groups: usize,
    ) -> String {
        let w = self.weight(
            "w",
            vec![out_ch, in_ch / groups, kernel.0, kernel.1],
            Init::Uniform(0.05),
        );
        let b = self.weight("b", vec![out_ch], Init::Uniform(0.05));
        self.op(
            "conv",
            OpKind::Conv {
                kernel,
                stride,
                pads,
                groups,
            },
            vec![x.to_string(), w, b],
        )
    }

    /// Fully-connected layer with synthesized weight + bias.
    pub fn linear(&mut self, x: &str, in_f: usize, out_f: usize) -> String {
        let w = self.weight("w", vec![out_f, in_f], Init::Uniform(0.05));
        let b = self.weight("b", vec![out_f], Init::Uniform(0.05));
        self.op(
            "gemm",
            OpKind::Gemm { trans_b: true },
            vec![x.to_string(), w, b],
        )
    }

    /// Inference-mode batch normalization with synthesized parameters.
    pub fn batch_norm(&mut self, x: &str, ch: usize) -> String {
        let scale = self.weight("bn_s", vec![ch], Init::Const(1.0));
        let bias = self.weight("bn_b", vec![ch], Init::Const(0.0));
        let mean = self.weight("bn_m", vec![ch], Init::Uniform(0.01));
        let var = self.weight("bn_v", vec![ch], Init::Const(1.0));
        self.op(
            "bn",
            OpKind::BatchNorm { epsilon: 1e-5 },
            vec![x.to_string(), scale, bias, mean, var],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_conv_net() {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = b.conv_relu(&x, 3, 4, 3, 1, 1);
        let z = b.op("gap", OpKind::GlobalAveragePool, vec![y]);
        b.output(&z);
        let g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.value_info[&z].shape, vec![1, 4, 1, 1]);
    }

    #[test]
    fn weights_are_deterministic_across_builders() {
        let mk = || {
            let mut b = GraphBuilder::new("t");
            b.weight("w", vec![4, 4], Init::Uniform(0.1));
            b.graph_mut().initializers["w_0"].clone()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn uniform_weights_are_in_range_and_not_constant() {
        let mut b = GraphBuilder::new("t");
        b.weight("w", vec![64], Init::Uniform(0.05));
        let data = b.graph_mut().initializers["w_0"].as_f32().unwrap().to_vec();
        assert!(data.iter().all(|v| v.abs() <= 0.05));
        assert!(data.iter().any(|v| *v != data[0]));
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut b = GraphBuilder::new("t");
        let a = b.fresh("n");
        let c = b.fresh("n");
        assert_ne!(a, c);
    }

    #[test]
    fn finish_rejects_invalid_graphs() {
        let mut b = GraphBuilder::new("bad");
        b.op("r", OpKind::Relu, vec!["ghost".into()]);
        assert!(b.finish().is_err());
    }
}
