//! Operator kinds and their static attributes.
//!
//! The set mirrors the ONNX operators exercised by the paper's eight
//! evaluation models: convolutional vision networks (SqueezeNet, GoogleNet,
//! Inception V3/V4, YOLO v5, RetinaNet, NASNet) and transformer encoders
//! (BERT), plus the shape-computation operators (`Shape`, `Gather`,
//! `Unsqueeze`, `ConstantOfShape`, …) that ONNX exporters weave around
//! `Reshape` and that the paper's constant-propagation pass folds away.

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float — activations and weights.
    F32,
    /// 64-bit signed integer — indices and shape tensors.
    I64,
    /// Boolean — masks.
    Bool,
}

impl DType {
    /// Short lowercase name, used in codegen and DOT labels.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        }
    }
}

/// Spatial pooling attributes shared by `MaxPool` and `AveragePool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Kernel size `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Symmetric padding `(ph, pw)` applied on both sides of each spatial axis.
    pub pads: (usize, usize),
    /// Use ceil instead of floor when computing the output extent.
    pub ceil_mode: bool,
}

impl PoolSpec {
    /// A square kernel with stride 1 and "same"-ish padding of `k/2`.
    pub fn square(k: usize) -> Self {
        PoolSpec {
            kernel: (k, k),
            stride: (1, 1),
            pads: (k / 2, k / 2),
            ceil_mode: false,
        }
    }

    /// Output spatial extent for an input extent `n` along one axis.
    /// Degenerate attributes (zero stride — rejected by `validate` as
    /// RV0002) yield 0 rather than dividing by zero.
    pub fn out_extent(&self, n: usize, axis: usize) -> usize {
        let (k, s, p) = match axis {
            0 => (self.kernel.0, self.stride.0, self.pads.0),
            _ => (self.kernel.1, self.stride.1, self.pads.1),
        };
        let padded = n + 2 * p;
        if padded < k || s == 0 {
            return 0;
        }
        if self.ceil_mode {
            (padded - k).div_ceil(s) + 1
        } else {
            (padded - k) / s + 1
        }
    }
}

/// A single ML operator together with its static (compile-time) attributes.
///
/// Runtime tensor operands are *not* stored here — they are the node's named
/// inputs. Attributes here are only those that ONNX encodes as node
/// attributes rather than tensor inputs (we also lift a few commonly-constant
/// tensor inputs, e.g. `Slice` ranges, into attributes for simplicity; the
/// model generators follow the same convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    // ---- convolution / linear algebra -------------------------------------
    /// 2-D convolution. Inputs: `[x, weight]` or `[x, weight, bias]`.
    Conv {
        /// Kernel size `(kh, kw)`; duplicated from the weight shape so the
        /// cost model can price a node without consulting initializers.
        kernel: (usize, usize),
        stride: (usize, usize),
        pads: (usize, usize),
        groups: usize,
    },
    /// Batched matrix multiply. Inputs: `[a, b]`.
    MatMul,
    /// Fully-connected layer `y = x · Wᵀ + b`. Inputs: `[x, w]` or `[x, w, b]`.
    Gemm {
        /// Transpose the weight operand (ONNX `transB`).
        trans_b: bool,
    },

    // ---- activations / unary elementwise ----------------------------------
    Relu,
    LeakyRelu {
        alpha: f32,
    },
    Sigmoid,
    Tanh,
    /// Gaussian error linear unit (the `erf` formulation used by BERT).
    Gelu,
    Erf,
    Sqrt,
    Exp,
    Neg,
    Clip {
        min: f32,
        max: f32,
    },
    /// Inference-mode dropout: the identity function.
    Dropout,
    Identity,

    // ---- binary elementwise (with numpy broadcasting) ----------------------
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    /// Elementwise equality producing a `Bool` tensor.
    Equal,
    /// `where(cond, a, b)` ternary select. Inputs: `[cond, a, b]`.
    Where,

    // ---- reductions / normalization ----------------------------------------
    Softmax {
        axis: isize,
    },
    /// Inference-mode batch normalization. Inputs:
    /// `[x, scale, bias, mean, var]`.
    BatchNorm {
        epsilon: f32,
    },
    /// Layer normalization over the trailing axis. Inputs: `[x, scale, bias]`.
    LayerNorm {
        epsilon: f32,
    },
    ReduceMean {
        axes: Vec<isize>,
        keepdims: bool,
    },

    // ---- pooling ------------------------------------------------------------
    MaxPool(PoolSpec),
    AveragePool(PoolSpec),
    GlobalAveragePool,

    // ---- data movement -------------------------------------------------------
    Concat {
        axis: isize,
    },
    /// Split along `axis` into parts of the given sizes. One output per part.
    Split {
        axis: isize,
        parts: Vec<usize>,
    },
    /// Strided slice, attributes-only form.
    Slice {
        axes: Vec<isize>,
        starts: Vec<i64>,
        ends: Vec<i64>,
        steps: Vec<i64>,
    },
    /// Index lookup along `axis`. Inputs: `[data, indices]`.
    Gather {
        axis: isize,
    },
    /// Reshape to the shape given by the second (usually constant) input.
    /// Inputs: `[data, shape]`.
    Reshape,
    Transpose {
        perm: Vec<usize>,
    },
    Flatten {
        axis: isize,
    },
    Unsqueeze {
        axes: Vec<isize>,
    },
    Squeeze {
        axes: Vec<isize>,
    },
    /// Broadcast `data` to the shape given by the second input.
    Expand,
    /// Nearest-neighbour spatial upsampling by integer factors.
    Resize {
        scale: (usize, usize),
    },
    /// Constant spatial zero-padding, NCHW: `(top, left, bottom, right)`.
    Pad {
        pads: (usize, usize, usize, usize),
    },
    Cast {
        to: DType,
    },

    // ---- constants / shape computation ----------------------------------------
    /// Materialize an embedded constant. No inputs; the payload lives in the
    /// graph initializer table under the node's output name.
    Constant,
    /// Runtime shape of the input as a 1-D `I64` tensor.
    Shape,
    /// Fill a tensor of the shape given by the (constant) input with `value`.
    ConstantOfShape {
        value: f32,
    },
}

impl OpKind {
    /// The ONNX-style operator name (used in codegen, DOT labels and tables).
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Conv { .. } => "Conv",
            OpKind::MatMul => "MatMul",
            OpKind::Gemm { .. } => "Gemm",
            OpKind::Relu => "Relu",
            OpKind::LeakyRelu { .. } => "LeakyRelu",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::Gelu => "Gelu",
            OpKind::Erf => "Erf",
            OpKind::Sqrt => "Sqrt",
            OpKind::Exp => "Exp",
            OpKind::Neg => "Neg",
            OpKind::Clip { .. } => "Clip",
            OpKind::Dropout => "Dropout",
            OpKind::Identity => "Identity",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Pow => "Pow",
            OpKind::Equal => "Equal",
            OpKind::Where => "Where",
            OpKind::Softmax { .. } => "Softmax",
            OpKind::BatchNorm { .. } => "BatchNormalization",
            OpKind::LayerNorm { .. } => "LayerNormalization",
            OpKind::ReduceMean { .. } => "ReduceMean",
            OpKind::MaxPool(_) => "MaxPool",
            OpKind::AveragePool(_) => "AveragePool",
            OpKind::GlobalAveragePool => "GlobalAveragePool",
            OpKind::Concat { .. } => "Concat",
            OpKind::Split { .. } => "Split",
            OpKind::Slice { .. } => "Slice",
            OpKind::Gather { .. } => "Gather",
            OpKind::Reshape => "Reshape",
            OpKind::Transpose { .. } => "Transpose",
            OpKind::Flatten { .. } => "Flatten",
            OpKind::Unsqueeze { .. } => "Unsqueeze",
            OpKind::Squeeze { .. } => "Squeeze",
            OpKind::Expand => "Expand",
            OpKind::Resize { .. } => "Resize",
            OpKind::Pad { .. } => "Pad",
            OpKind::Cast { .. } => "Cast",
            OpKind::Constant => "Constant",
            OpKind::Shape => "Shape",
            OpKind::ConstantOfShape { .. } => "ConstantOfShape",
        }
    }

    /// True for unary/binary elementwise operators (the paper assigns these a
    /// static cost of 1).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            OpKind::Relu
                | OpKind::LeakyRelu { .. }
                | OpKind::Sigmoid
                | OpKind::Tanh
                | OpKind::Gelu
                | OpKind::Erf
                | OpKind::Sqrt
                | OpKind::Exp
                | OpKind::Neg
                | OpKind::Clip { .. }
                | OpKind::Dropout
                | OpKind::Identity
                | OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Pow
                | OpKind::Equal
                | OpKind::Where
        )
    }

    /// True for pure data-movement / shape-computation operators that do no
    /// floating-point arithmetic.
    pub fn is_shape_op(&self) -> bool {
        matches!(
            self,
            OpKind::Reshape
                | OpKind::Transpose { .. }
                | OpKind::Flatten { .. }
                | OpKind::Unsqueeze { .. }
                | OpKind::Squeeze { .. }
                | OpKind::Expand
                | OpKind::Slice { .. }
                | OpKind::Gather { .. }
                | OpKind::Concat { .. }
                | OpKind::Split { .. }
                | OpKind::Cast { .. }
                | OpKind::Shape
                | OpKind::Constant
                | OpKind::ConstantOfShape { .. }
                | OpKind::Identity
                | OpKind::Pad { .. }
        )
    }

    /// True if the node is a pure function of its inputs (all our inference
    /// operators are; this exists so passes read as intent, and as a hook if
    /// stateful ops are ever added).
    pub fn is_pure(&self) -> bool {
        true
    }

    /// Number of outputs this operator produces.
    pub fn num_outputs(&self) -> usize {
        match self {
            OpKind::Split { parts, .. } => parts.len(),
            _ => 1,
        }
    }

    /// Permitted number of runtime inputs as `(min, max)`; `max == None`
    /// means variadic with no upper bound (`Concat`). Enforced by
    /// [`crate::validate::validate`], and kept in sync with what
    /// `shape::infer_node` and the tensor evaluator actually consume.
    pub fn input_arity(&self) -> (usize, Option<usize>) {
        match self {
            // optional trailing bias operand
            OpKind::Conv { .. } | OpKind::Gemm { .. } => (2, Some(3)),
            OpKind::MatMul
            | OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Pow
            | OpKind::Equal
            | OpKind::Gather { .. }
            | OpKind::Reshape
            | OpKind::Expand => (2, Some(2)),
            OpKind::Where => (3, Some(3)),
            // `[x, scale, bias, mean, var]`
            OpKind::BatchNorm { .. } => (5, Some(5)),
            // `[x, scale, bias]`
            OpKind::LayerNorm { .. } => (3, Some(3)),
            OpKind::Concat { .. } => (1, None),
            OpKind::Constant => (0, Some(0)),
            // every remaining operator is strictly unary
            _ => (1, Some(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_out_extent_floor_and_ceil() {
        let p = PoolSpec {
            kernel: (3, 3),
            stride: (2, 2),
            pads: (0, 0),
            ceil_mode: false,
        };
        assert_eq!(p.out_extent(7, 0), 3);
        let c = PoolSpec {
            ceil_mode: true,
            ..p
        };
        assert_eq!(c.out_extent(7, 0), 3);
        assert_eq!(c.out_extent(8, 0), 4); // ceil rounds the ragged tail up
        let f = PoolSpec {
            ceil_mode: false,
            ..p
        };
        assert_eq!(f.out_extent(8, 0), 3);
    }

    #[test]
    fn pool_square_padding() {
        let p = PoolSpec::square(3);
        assert_eq!(p.pads, (1, 1));
        assert_eq!(p.out_extent(14, 0), 14);
        assert_eq!(p.out_extent(14, 1), 14);
    }

    #[test]
    fn elementwise_and_shape_ops_are_disjoint_for_compute_ops() {
        let conv = OpKind::Conv {
            kernel: (3, 3),
            stride: (1, 1),
            pads: (1, 1),
            groups: 1,
        };
        assert!(!conv.is_elementwise());
        assert!(!conv.is_shape_op());
        assert!(OpKind::Relu.is_elementwise());
        assert!(OpKind::Reshape.is_shape_op());
        assert!(!OpKind::MatMul.is_shape_op());
    }

    #[test]
    fn split_output_count_follows_parts() {
        let s = OpKind::Split {
            axis: 1,
            parts: vec![8, 8, 16],
        };
        assert_eq!(s.num_outputs(), 3);
        assert_eq!(OpKind::MatMul.num_outputs(), 1);
    }

    #[test]
    fn names_are_onnx_style() {
        assert_eq!(
            OpKind::BatchNorm { epsilon: 1e-5 }.name(),
            "BatchNormalization"
        );
        assert_eq!(OpKind::GlobalAveragePool.name(), "GlobalAveragePool");
    }
}
