//! On-disk model format: JSON serialization of a whole [`Graph`].
//!
//! This plays the role ONNX files play for the paper's tool — a frozen,
//! self-contained model (topology + weights) that the pipeline ingests.

use crate::error::IrError;
use crate::graph::Graph;
use crate::Result;
use std::path::Path;

/// Serialize a graph to a JSON string.
pub fn to_json(graph: &Graph) -> Result<String> {
    serde_json::to_string(graph).map_err(|e| IrError::Serde(e.to_string()))
}

/// Deserialize a graph from a JSON string (no validation; call
/// [`crate::validate::validate`] if the source is untrusted).
pub fn from_json(json: &str) -> Result<Graph> {
    serde_json::from_str(json).map_err(|e| IrError::Serde(e.to_string()))
}

/// Write a graph to disk; `.json` paths get the JSON encoding, everything
/// else the human-readable text format from [`crate::text_format`].
pub fn save(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let body = if path.extension().is_some_and(|e| e == "json") {
        to_json(graph)?
    } else {
        crate::text_format::to_text(graph)
    };
    std::fs::write(path, body).map_err(|e| IrError::Serde(e.to_string()))
}

/// Read a graph from disk, auto-detecting the encoding: JSON if the content
/// starts with `{`, the text format otherwise.
pub fn load(path: impl AsRef<Path>) -> Result<Graph> {
    let body = std::fs::read_to_string(path).map_err(|e| IrError::Serde(e.to_string()))?;
    if body.trim_start().starts_with('{') {
        from_json(&body)
    } else {
        crate::text_format::from_text(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::{DType, OpKind};

    #[test]
    fn json_roundtrip_preserves_graph() {
        let mut b = GraphBuilder::new("rt");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = b.conv_relu(&x, 3, 4, 3, 1, 1);
        let z = b.op("gap", OpKind::GlobalAveragePool, vec![y]);
        b.output(&z);
        let g = b.finish().unwrap();

        let json = to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn bad_json_is_a_serde_error() {
        assert!(matches!(from_json("{not json"), Err(IrError::Serde(_))));
    }

    #[test]
    fn save_load_roundtrips_both_encodings() {
        let mut b = GraphBuilder::new("enc");
        let x = b.input("x", DType::F32, vec![1, 3, 4, 4]);
        let y = b.conv_relu(&x, 3, 2, 3, 1, 1);
        b.output(&y);
        let g = b.finish().unwrap();
        let dir = std::env::temp_dir();
        let json_path = dir.join(format!("ramiel_mf_{}.json", std::process::id()));
        let text_path = dir.join(format!("ramiel_mf_{}.rmodel", std::process::id()));
        save(&g, &json_path).unwrap();
        save(&g, &text_path).unwrap();
        assert_eq!(load(&json_path).unwrap(), g);
        assert_eq!(load(&text_path).unwrap(), g);
        std::fs::remove_file(json_path).ok();
        std::fs::remove_file(text_path).ok();
    }
}
