//! On-disk model format: JSON serialization of a whole [`Graph`].
//!
//! This plays the role ONNX files play for the paper's tool — a frozen,
//! self-contained model (topology + weights) that the pipeline ingests.

use crate::error::IrError;
use crate::graph::Graph;
use crate::Result;
use std::path::Path;

/// Serialize a graph to a JSON string.
pub fn to_json(graph: &Graph) -> Result<String> {
    serde_json::to_string(graph).map_err(|e| IrError::Serde(e.to_string()))
}

/// Deserialize a graph from a JSON string (no validation; call
/// [`crate::validate::validate`] if the source is untrusted).
pub fn from_json(json: &str) -> Result<Graph> {
    serde_json::from_str(json).map_err(|e| IrError::Serde(e.to_string()))
}

/// Write a graph to disk; `.json` paths get the JSON encoding, everything
/// else the human-readable text format from [`crate::text_format`].
pub fn save(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let body = if path.extension().is_some_and(|e| e == "json") {
        to_json(graph)?
    } else {
        crate::text_format::to_text(graph)
    };
    std::fs::write(path, body).map_err(|e| IrError::Serde(e.to_string()))
}

/// Read a graph from disk, auto-detecting the encoding: JSON if the content
/// starts with `{`, the text format for other UTF-8.
///
/// The read is byte-based so a binary file produces a clear diagnostic
/// instead of an opaque `read_to_string` UTF-8 error: protobuf `.onnx`
/// content (magic byte `0x08`, the `ModelProto.ir_version` field key) is
/// named as such and pointed at the `ramiel-onnx` importer — the unified
/// loader there (`ramiel_onnx::load_model`) dispatches all three encodings.
pub fn load(path: impl AsRef<Path>) -> Result<Graph> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| IrError::Serde(e.to_string()))?;
    match String::from_utf8(bytes) {
        Ok(body) if body.trim_start().starts_with('{') => from_json(&body),
        Ok(body) => crate::text_format::from_text(&body),
        Err(e) => {
            let bytes = e.as_bytes();
            let hint = if bytes.first() == Some(&0x08) {
                "this looks like a binary ONNX model; load it through the ONNX \
                 importer (ramiel-onnx), which every ramiel CLI verb uses for \
                 .onnx paths"
            } else {
                "binary content is not a JSON or text model file"
            };
            Err(IrError::Serde(format!(
                "`{}` is not UTF-8: {hint}",
                path.display()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::{DType, OpKind};

    #[test]
    fn json_roundtrip_preserves_graph() {
        let mut b = GraphBuilder::new("rt");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = b.conv_relu(&x, 3, 4, 3, 1, 1);
        let z = b.op("gap", OpKind::GlobalAveragePool, vec![y]);
        b.output(&z);
        let g = b.finish().unwrap();

        let json = to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn bad_json_is_a_serde_error() {
        assert!(matches!(from_json("{not json"), Err(IrError::Serde(_))));
    }

    #[test]
    fn binary_file_gets_a_clear_error_not_a_utf8_failure() {
        let dir = std::env::temp_dir();
        let onnx_like = dir.join(format!("ramiel_mf_bin_{}.onnx", std::process::id()));
        // 0x08 = ModelProto.ir_version field key, then invalid UTF-8.
        std::fs::write(&onnx_like, [0x08u8, 0x08, 0xff, 0xfe]).unwrap();
        let err = load(&onnx_like).unwrap_err();
        assert!(
            err.to_string().contains("ONNX"),
            "expected an ONNX hint, got: {err}"
        );
        let junk = dir.join(format!("ramiel_mf_junk_{}", std::process::id()));
        std::fs::write(&junk, [0xde, 0xad, 0xbe, 0xef]).unwrap();
        let err = load(&junk).unwrap_err();
        assert!(err.to_string().contains("binary content"), "{err}");
        std::fs::remove_file(onnx_like).ok();
        std::fs::remove_file(junk).ok();
    }

    #[test]
    fn save_load_roundtrips_both_encodings() {
        let mut b = GraphBuilder::new("enc");
        let x = b.input("x", DType::F32, vec![1, 3, 4, 4]);
        let y = b.conv_relu(&x, 3, 2, 3, 1, 1);
        b.output(&y);
        let g = b.finish().unwrap();
        let dir = std::env::temp_dir();
        let json_path = dir.join(format!("ramiel_mf_{}.json", std::process::id()));
        let text_path = dir.join(format!("ramiel_mf_{}.rmodel", std::process::id()));
        save(&g, &json_path).unwrap();
        save(&g, &text_path).unwrap();
        assert_eq!(load(&json_path).unwrap(), g);
        assert_eq!(load(&text_path).unwrap(), g);
        std::fs::remove_file(json_path).ok();
        std::fs::remove_file(text_path).ok();
    }
}
