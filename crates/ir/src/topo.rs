//! Topological ordering and level (ASAP) computation.

use crate::error::IrError;
use crate::graph::{Graph, NodeId};
use crate::Result;
use std::collections::VecDeque;

/// A topological order of the graph's nodes (Kahn's algorithm).
///
/// Ties are broken by node id, so the order is deterministic and tends to
/// follow construction order — which matters for reproducible clustering and
/// codegen.
pub fn topo_sort(graph: &Graph) -> Result<Vec<NodeId>> {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let mut indegree: Vec<usize> = (0..n).map(|i| adj.preds[i].len()).collect();
    // BinaryHeap of Reverse would give smallest-id-first; with a VecDeque we
    // push in id order initially and append as nodes free up, which is stable
    // enough and O(V+E).
    let mut ready: VecDeque<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = ready.pop_front() {
        order.push(u);
        for &v in &adj.succs[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                ready.push_back(v);
            }
        }
    }
    if order.len() != n {
        // Find a witness node still blocked.
        let blocked = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(IrError::Cycle(graph.nodes[blocked].name.clone()));
    }
    Ok(order)
}

/// ASAP level of each node: sources are level 0, every other node is one more
/// than its deepest predecessor. Useful for stage-style schedulers (the IOS
/// baseline) and for DOT ranking.
pub fn levels(graph: &Graph) -> Result<Vec<usize>> {
    let adj = graph.adjacency();
    let order = topo_sort(graph)?;
    let mut level = vec![0usize; graph.num_nodes()];
    for &u in &order {
        for &p in &adj.preds[u] {
            level[u] = level[u].max(level[p] + 1);
        }
    }
    Ok(level)
}

/// Sink nodes (no successors). Every dataflow graph that produces outputs
/// has at least one.
pub fn sinks(graph: &Graph) -> Vec<NodeId> {
    let adj = graph.adjacency();
    (0..graph.num_nodes())
        .filter(|&i| adj.succs[i].is_empty())
        .collect()
}

/// Source nodes (no predecessors among graph nodes — they read only graph
/// inputs and initializers).
pub fn sources(graph: &Graph) -> Vec<NodeId> {
    let adj = graph.adjacency();
    (0..graph.num_nodes())
        .filter(|&i| adj.preds[i].is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TensorInfo;
    use crate::op::{DType, OpKind};

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        g.inputs.push(TensorInfo::new("t0", DType::F32, vec![1]));
        for i in 0..n {
            g.push_node(
                format!("n{i}"),
                OpKind::Relu,
                vec![format!("t{i}")],
                vec![format!("t{}", i + 1)],
            );
        }
        g.outputs.push(format!("t{n}"));
        g
    }

    #[test]
    fn chain_topo_and_levels() {
        let g = chain(5);
        let order = topo_sort(&g).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(levels(&g).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(sinks(&g), vec![4]);
        assert_eq!(sources(&g), vec![0]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new("cyc");
        g.push_node("a", OpKind::Relu, vec!["t2".into()], vec!["t1".into()]);
        g.push_node("b", OpKind::Relu, vec!["t1".into()], vec!["t2".into()]);
        assert!(matches!(topo_sort(&g), Err(IrError::Cycle(_))));
    }

    #[test]
    fn diamond_levels() {
        let mut g = Graph::new("d");
        g.inputs.push(TensorInfo::new("in", DType::F32, vec![1]));
        g.push_node("a", OpKind::Relu, vec!["in".into()], vec!["ta".into()]);
        g.push_node("b", OpKind::Relu, vec!["ta".into()], vec!["tb".into()]);
        g.push_node("c", OpKind::Relu, vec!["ta".into()], vec!["tc".into()]);
        g.push_node(
            "d",
            OpKind::Add,
            vec!["tb".into(), "tc".into()],
            vec!["td".into()],
        );
        assert_eq!(levels(&g).unwrap(), vec![0, 1, 1, 2]);
        assert_eq!(sinks(&g), vec![3]);
    }

    #[test]
    fn topo_respects_all_edges() {
        let g = chain(10);
        let order = topo_sort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        let adj = g.adjacency();
        for u in 0..g.num_nodes() {
            for &v in &adj.succs[u] {
                assert!(pos[u] < pos[v]);
            }
        }
    }
}
