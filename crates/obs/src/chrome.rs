//! Chrome/Perfetto trace export and validation.
//!
//! The export speaks the Trace Event Format's JSON-object flavour:
//! `{"traceEvents": [...]}` with `ph: "X"` complete spans, `ph: "i"`
//! instants, `ph: "C"` counters, and `ph: "M"` `process_name` /
//! `thread_name` metadata so Perfetto labels every lane. Timestamps and
//! durations are microseconds (floating point, so nanosecond precision
//! survives).
//!
//! [`validate_chrome_trace`] is the inverse gate: CI runs the profiler and
//! feeds its output back through the validator, failing on unparseable
//! JSON, unknown phases, spans on unnamed tracks, or overlapping
//! (non-nested) spans on one thread track.

use crate::{Obs, Phase};
use serde_json::{json, Value};

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Build the trace JSON for everything recorded in `obs`, folding in the
/// global warning log as instant events on pid 0 / tid 0.
pub fn export(obs: &Obs) -> String {
    let mut events: Vec<Value> = Vec::new();
    let (procs, threads) = obs.tracks_snapshot();
    for (pid, name) in &procs {
        events.push(obj(vec![
            ("ph", json!("M")),
            ("name", json!("process_name")),
            ("pid", json!(*pid)),
            ("tid", json!(0u32)),
            ("args", json!({ "name": name.as_str() })),
        ]));
    }
    for ((pid, tid), name) in &threads {
        events.push(obj(vec![
            ("ph", json!("M")),
            ("name", json!("thread_name")),
            ("pid", json!(*pid)),
            ("tid", json!(*tid)),
            ("args", json!({ "name": name.as_str() })),
        ]));
    }
    for e in obs.events() {
        let mut entries: Vec<(&str, Value)> = vec![
            ("name", json!(e.name.as_str())),
            ("cat", json!(e.cat)),
            ("pid", json!(e.pid)),
            ("tid", json!(e.tid)),
            ("ts", json!(e.ts_ns as f64 / 1e3)),
        ];
        match e.phase {
            Phase::Complete => {
                entries.push(("ph", json!("X")));
                entries.push(("dur", json!(e.dur_ns as f64 / 1e3)));
            }
            Phase::Instant => {
                entries.push(("ph", json!("i")));
                entries.push(("s", json!("t")));
            }
            Phase::Counter => {
                entries.push(("ph", json!("C")));
            }
        }
        if !e.args.is_null() {
            entries.push(("args", e.args));
        } else if e.phase == Phase::Counter {
            entries.push(("args", json!({ "value": 0.0 })));
        }
        events.push(obj(entries));
    }
    // Warnings ride along as instants on the diagnostics track (pid 0) so
    // the trace and stderr tell the same story.
    if let Some(epoch) = obs.epoch() {
        for w in crate::warn::warnings_snapshot() {
            let ts_ns =
                w.at.checked_duration_since(epoch)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
            events.push(obj(vec![
                ("ph", json!("i")),
                ("s", json!("t")),
                ("name", json!(format!("warning[{}]", w.code))),
                ("cat", json!("warning")),
                ("pid", json!(0u32)),
                ("tid", json!(0u32)),
                ("ts", json!(ts_ns as f64 / 1e3)),
                ("args", json!({ "message": w.message.as_str() })),
            ]));
        }
    }
    serde_json::to_string_pretty(&obj(vec![("traceEvents", Value::Array(events))]))
        .expect("trace serialization cannot fail")
}

/// Summary returned by a successful [`validate_chrome_trace`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub total_events: usize,
    pub complete_spans: usize,
    pub instants: usize,
    pub counters: usize,
    pub metadata: usize,
    pub named_processes: usize,
    pub named_threads: usize,
}

/// Two spans on one thread track must either nest or be disjoint; µs
/// rounding can make exactly-adjacent spans appear to overlap by a
/// sub-nanosecond sliver, so comparisons get this epsilon (in µs).
const NEST_EPS_US: f64 = 0.002;

fn get_u32(ev: &Value, key: &str) -> Result<u32, String> {
    ev.get(key)
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("event missing numeric `{key}`: {ev}"))
}

fn get_f64(ev: &Value, key: &str) -> Result<f64, String> {
    ev.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("event missing numeric `{key}`: {ev}"))
}

/// Validate `trace` as Chrome trace JSON produced by this crate.
///
/// Checks: parseable JSON with a `traceEvents` array; every event has a
/// known phase, a name, and pid/tid; every `X`/`i`/`C` event's pid is named
/// by `process_name` metadata; spans on a single (pid, tid) track are
/// well-nested (no partial overlap). Returns summary stats on success, a
/// description of the first problem on failure.
pub fn validate_chrome_trace(trace: &str) -> Result<TraceStats, String> {
    let root: Value =
        serde_json::from_str(trace).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "trace has no `traceEvents` array".to_string())?;

    let mut stats = TraceStats {
        total_events: events.len(),
        ..TraceStats::default()
    };
    let mut named_pids: Vec<u32> = Vec::new();
    let mut named_tids: Vec<(u32, u32)> = Vec::new();
    // (pid, tid) → [(start_us, end_us)]
    let mut spans: std::collections::BTreeMap<(u32, u32), Vec<(f64, f64)>> = Default::default();

    for ev in events {
        if ev.as_object().is_none() {
            return Err(format!("non-object trace event: {ev}"));
        }
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event missing `ph`: {ev}"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event missing `name`: {ev}"))?;
        let pid = get_u32(ev, "pid")?;
        let tid = get_u32(ev, "tid")?;
        match ph {
            "M" => {
                stats.metadata += 1;
                match name {
                    "process_name" => {
                        stats.named_processes += 1;
                        named_pids.push(pid);
                    }
                    "thread_name" => {
                        stats.named_threads += 1;
                        named_tids.push((pid, tid));
                    }
                    other => return Err(format!("unknown metadata event `{other}`")),
                }
                if ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .is_none()
                {
                    return Err(format!("metadata event without args.name: {ev}"));
                }
            }
            "X" => {
                stats.complete_spans += 1;
                let ts = get_f64(ev, "ts")?;
                let dur = get_f64(ev, "dur")?;
                if dur < 0.0 {
                    return Err(format!("span `{name}` has negative duration {dur}"));
                }
                spans.entry((pid, tid)).or_default().push((ts, ts + dur));
            }
            "i" => {
                stats.instants += 1;
                get_f64(ev, "ts")?;
            }
            "C" => {
                stats.counters += 1;
                get_f64(ev, "ts")?;
                if ev.get("args").and_then(Value::as_object).is_none() {
                    return Err(format!("counter `{name}` has no args object"));
                }
            }
            other => return Err(format!("unknown event phase `{other}`")),
        }
    }

    // Every track that carries spans must belong to a named process.
    for (pid, tid) in spans.keys() {
        if !named_pids.contains(pid) {
            return Err(format!(
                "spans on pid {pid} tid {tid} but no process_name metadata for pid {pid}"
            ));
        }
    }
    // And every named thread must reference a named process.
    for (pid, tid) in &named_tids {
        if !named_pids.contains(pid) {
            return Err(format!(
                "thread_name for pid {pid} tid {tid} references unnamed process"
            ));
        }
    }

    // Well-nesting per track: sort by (start asc, end desc) and walk a stack.
    for ((pid, tid), mut track) in spans {
        track.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for (start, end) in track {
            while let Some(&(_, top_end)) = stack.last() {
                if start >= top_end - NEST_EPS_US {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, top_end)) = stack.last() {
                if end > top_end + NEST_EPS_US {
                    return Err(format!(
                        "spans on pid {pid} tid {tid} overlap without nesting: \
                         [{start:.3}, {end:.3}] vs enclosing end {top_end:.3} (µs)"
                    ));
                }
            }
            stack.push((start, end));
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_roundtrips_through_validator() {
        let obs = Obs::enabled();
        obs.name_process("pipeline");
        obs.name_thread(0, "main");
        {
            let _outer = obs.span(0, "outer", "stage");
            let _inner = obs.span(0, "inner", "stage");
        }
        obs.instant(0, "note", "event", serde_json::Value::Null);
        obs.counter("queue", 3.0);
        let trace = obs.to_chrome_trace();
        let stats = validate_chrome_trace(&trace).expect("valid trace");
        assert_eq!(stats.complete_spans, 2);
        assert!(stats.instants >= 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.named_processes, 1);
        assert_eq!(stats.named_threads, 1);
    }

    #[test]
    fn validator_rejects_garbage_and_bad_shapes() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // span on a pid without process_name metadata
        let orphan = r#"{"traceEvents":[
            {"ph":"X","name":"s","cat":"c","pid":9,"tid":0,"ts":0.0,"dur":1.0}
        ]}"#;
        let err = validate_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("no process_name"), "{err}");
        // partially overlapping spans on one track
        let overlap = r#"{"traceEvents":[
            {"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"p"}},
            {"ph":"X","name":"a","cat":"c","pid":1,"tid":0,"ts":0.0,"dur":10.0},
            {"ph":"X","name":"b","cat":"c","pid":1,"tid":0,"ts":5.0,"dur":10.0}
        ]}"#;
        let err = validate_chrome_trace(overlap).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn adjacent_spans_within_epsilon_are_fine() {
        let trace = r#"{"traceEvents":[
            {"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"p"}},
            {"ph":"X","name":"a","cat":"c","pid":1,"tid":0,"ts":0.0,"dur":5.0},
            {"ph":"X","name":"b","cat":"c","pid":1,"tid":0,"ts":4.999,"dur":5.0}
        ]}"#;
        validate_chrome_trace(trace).expect("epsilon-adjacent spans accepted");
    }
}
