//! # ramiel-obs
//!
//! Observability for the whole pipeline: lightweight spans/instants/counters
//! that render as a Chrome/Perfetto trace or a plain-text report, per-channel
//! metrics for the cluster executors, and structured warnings that agree with
//! what lands on stderr.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** An [`Obs`] handle is an
//!    `Option<Arc<..>>` plus a pid; every recording method starts with a
//!    `None` check, so the disabled path is one branch and no allocation.
//!    [`Obs::default`] is disabled — production code paths thread an `Obs`
//!    through unconditionally and pay nothing until someone turns it on.
//! 2. **One timebase.** All handles cloned from the same enabled root share
//!    one epoch `Instant`; timestamps are nanoseconds since that epoch, so
//!    compile-stage spans and executor op slices land on a common timeline.
//! 3. **Exporter-friendly.** Events carry explicit `pid`/`tid` tracks with
//!    registered names, mapping 1:1 onto the Chrome trace `process_name` /
//!    `thread_name` metadata that Perfetto uses to label lanes.
//!
//! The crate deliberately knows nothing about graphs, clusters or tensors —
//! `ramiel-runtime` and `ramiel` push their own domain records into it.

pub mod channel;
pub mod chrome;
pub mod metrics;
pub mod warn;

pub use channel::{ChannelEdgeStats, ChannelMeter};
pub use chrome::{validate_chrome_trace, TraceStats};
pub use metrics::{
    parse_prometheus, quantile_from_buckets, window_buckets, CounterHandle, GaugeHandle,
    HistHandle, Histogram, HistogramSnapshot, Metrics, ParsedSample, PeakHandle,
};
pub use warn::{warn, warnings_snapshot, WarnEvent};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Event phase, mirroring the Chrome trace phases this crate emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span with a duration (`ph: "X"`).
    Complete,
    /// A point-in-time event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

/// One recorded event. `ts_ns`/`dur_ns` are nanoseconds since the sink's
/// epoch; `args` is free-form JSON shown by trace viewers.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub phase: Phase,
    pub name: String,
    pub cat: &'static str,
    pub pid: u32,
    pub tid: u32,
    pub ts_ns: u64,
    /// Only meaningful for [`Phase::Complete`].
    pub dur_ns: u64,
    /// `serde_json::Value::Null` when the event carries no arguments.
    pub args: serde_json::Value,
}

#[derive(Default)]
struct Tracks {
    processes: BTreeMap<u32, String>,
    threads: BTreeMap<(u32, u32), String>,
}

struct Inner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    tracks: Mutex<Tracks>,
}

/// Handle to an observability sink. Cheap to clone; all clones share the
/// same event buffer and epoch. The `pid` field selects which *process
/// track* this handle records onto (see [`Obs::with_pid`]), letting one
/// sink collect a compile pipeline and several executors side by side.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
    pid: u32,
}

impl Obs {
    /// A disabled sink: every recording call is a no-op after one branch.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A new enabled sink recording onto process track 0.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                tracks: Mutex::new(Tracks::default()),
            })),
            pid: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto a different process track of the same sink.
    pub fn with_pid(&self, pid: u32) -> Obs {
        Obs {
            inner: self.inner.clone(),
            pid,
        }
    }

    /// The process track this handle records onto.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Nanoseconds since the sink's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// The sink's epoch, if enabled — lets callers who already timestamp
    /// with `Instant`s translate onto the shared timeline.
    pub fn epoch(&self) -> Option<Instant> {
        self.inner.as_ref().map(|i| i.epoch)
    }

    /// Name this handle's process track (Perfetto lane group).
    pub fn name_process(&self, name: impl Into<String>) {
        if let Some(i) = &self.inner {
            i.tracks.lock().processes.insert(self.pid, name.into());
        }
    }

    /// Name a thread track within this handle's process.
    pub fn name_thread(&self, tid: u32, name: impl Into<String>) {
        if let Some(i) = &self.inner {
            i.tracks.lock().threads.insert((self.pid, tid), name.into());
        }
    }

    /// Record a complete span from explicit timestamps (both in nanoseconds
    /// since the sink's epoch).
    pub fn complete(
        &self,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: serde_json::Value,
    ) {
        if let Some(i) = &self.inner {
            i.events.lock().push(TraceEvent {
                phase: Phase::Complete,
                name: name.into(),
                cat,
                pid: self.pid,
                tid,
                ts_ns: start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                args,
            });
        }
    }

    /// Record an instantaneous event.
    pub fn instant(
        &self,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        args: serde_json::Value,
    ) {
        if let Some(i) = &self.inner {
            let ts_ns = i.epoch.elapsed().as_nanos() as u64;
            i.events.lock().push(TraceEvent {
                phase: Phase::Instant,
                name: name.into(),
                cat,
                pid: self.pid,
                tid,
                ts_ns,
                dur_ns: 0,
                args,
            });
        }
    }

    /// Record a counter sample (rendered as a stacked area in Perfetto).
    pub fn counter(&self, name: impl Into<String>, value: f64) {
        if let Some(i) = &self.inner {
            let name = name.into();
            let ts_ns = i.epoch.elapsed().as_nanos() as u64;
            let args = serde_json::json!({ "value": value });
            i.events.lock().push(TraceEvent {
                phase: Phase::Counter,
                name,
                cat: "counter",
                pid: self.pid,
                tid: 0,
                ts_ns,
                dur_ns: 0,
                args,
            });
        }
    }

    /// Start a scoped span; the span records itself when dropped (or when
    /// [`Span::finish`] is called). Disabled sinks hand out inert guards.
    pub fn span(&self, tid: u32, name: impl Into<String>, cat: &'static str) -> Span {
        Span {
            obs: self.clone(),
            tid,
            name: name.into(),
            cat,
            start_ns: self.now_ns(),
            args: serde_json::Value::Null,
        }
    }

    /// Snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(i) => i.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(i) => i.events.lock().len(),
            None => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn tracks_snapshot(&self) -> (BTreeMap<u32, String>, BTreeMap<(u32, u32), String>) {
        match &self.inner {
            Some(i) => {
                let t = i.tracks.lock();
                (t.processes.clone(), t.threads.clone())
            }
            None => (BTreeMap::new(), BTreeMap::new()),
        }
    }

    /// Export everything (plus the global warning log) as Chrome trace JSON.
    pub fn to_chrome_trace(&self) -> String {
        chrome::export(self)
    }

    /// Render a plain-text summary: per-track span counts and busy time,
    /// instants by category, and the warning log — the "logs" view of the
    /// same data the trace shows.
    pub fn text_report(&self) -> String {
        use std::fmt::Write as _;
        let (procs, threads) = self.tracks_snapshot();
        let events = self.events();
        // (pid, tid) → (span count, busy ns)
        let mut by_track: BTreeMap<(u32, u32), (usize, u64)> = BTreeMap::new();
        let mut instants: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &events {
            match e.phase {
                Phase::Complete => {
                    let slot = by_track.entry((e.pid, e.tid)).or_default();
                    slot.0 += 1;
                    slot.1 += e.dur_ns;
                }
                Phase::Instant => *instants.entry(e.cat).or_default() += 1,
                Phase::Counter => {}
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "trace summary ({} events)", events.len());
        let mut last_pid = None;
        for ((pid, tid), (spans, busy)) in &by_track {
            if last_pid != Some(*pid) {
                let pname = procs.get(pid).map(String::as_str).unwrap_or("<unnamed>");
                let _ = writeln!(out, "  process {pid} \"{pname}\"");
                last_pid = Some(*pid);
            }
            let tname = threads
                .get(&(*pid, *tid))
                .map(String::as_str)
                .unwrap_or("<unnamed>");
            let _ = writeln!(
                out,
                "    thread {tid} \"{tname}\": {spans} spans, {:.3} ms busy",
                *busy as f64 / 1e6
            );
        }
        if !instants.is_empty() {
            let cats: Vec<String> = instants.iter().map(|(c, n)| format!("{c}: {n}")).collect();
            let _ = writeln!(out, "  instant events: {}", cats.join(", "));
        }
        let warnings = warn::warnings_snapshot();
        let _ = writeln!(out, "  warnings: {}", warnings.len());
        for w in &warnings {
            let _ = writeln!(out, "    [{}] {}", w.code, w.message);
        }
        out
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("pid", &self.pid)
            .field("events", &self.len())
            .finish()
    }
}

/// Scoped span guard handed out by [`Obs::span`]. Records a complete event
/// over its lifetime; attach arguments with [`Span::set_args`].
pub struct Span {
    obs: Obs,
    tid: u32,
    name: String,
    cat: &'static str,
    start_ns: u64,
    args: serde_json::Value,
}

impl Span {
    /// Attach JSON arguments shown by trace viewers (graph-size deltas,
    /// cluster counts, …).
    pub fn set_args(&mut self, args: serde_json::Value) {
        self.args = args;
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.obs.is_enabled() {
            let end = self.obs.now_ns();
            self.obs.complete(
                self.tid,
                std::mem::take(&mut self.name),
                self.cat,
                self.start_ns,
                end,
                std::mem::take(&mut self.args),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.instant(0, "x", "test", serde_json::Value::Null);
        obs.counter("c", 1.0);
        {
            let _sp = obs.span(0, "span", "test");
        }
        assert!(obs.is_empty());
        assert_eq!(obs.now_ns(), 0);
    }

    #[test]
    fn span_guard_records_complete_event() {
        let obs = Obs::enabled();
        {
            let mut sp = obs.span(3, "work", "stage");
            sp.set_args(serde_json::json!({"n": 7}));
        }
        let events = obs.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.phase, Phase::Complete);
        assert_eq!(e.name, "work");
        assert_eq!(e.tid, 3);
        assert_eq!(e.args["n"].as_u64(), Some(7));
    }

    #[test]
    fn with_pid_shares_the_buffer() {
        let root = Obs::enabled();
        let a = root.with_pid(1);
        let b = root.with_pid(2);
        a.instant(0, "ea", "test", serde_json::Value::Null);
        b.instant(0, "eb", "test", serde_json::Value::Null);
        let events = root.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].pid, 1);
        assert_eq!(events[1].pid, 2);
    }

    #[test]
    fn text_report_mentions_tracks_and_warnings() {
        let obs = Obs::enabled();
        obs.name_process("p");
        obs.name_thread(0, "t");
        {
            let _sp = obs.span(0, "s", "stage");
        }
        let report = obs.text_report();
        assert!(report.contains("process 0 \"p\""));
        assert!(report.contains("thread 0 \"t\""));
        assert!(report.contains("warnings:"));
    }
}
