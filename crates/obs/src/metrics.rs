//! Lock-free metrics: log-bucketed histograms, counters, gauges, and a
//! registry that renders Prometheus text exposition.
//!
//! Same cost discipline as [`crate::Obs`]: every handle is an
//! `Option<Arc<..>>`, so the disabled path is one branch and no allocation,
//! and the enabled hot path is a handful of relaxed atomic ops — no locks,
//! no heap traffic. The registry's mutex is touched only at *registration*
//! (once per series, at startup) and at *render* time, never while
//! recording.
//!
//! ## Bucket scheme
//!
//! Histograms use log-linear bucketing with [`SUB_BITS`] = 3, i.e. eight
//! sub-buckets per power of two:
//!
//! - values `0..16` land in exact singleton buckets (`index == value`);
//! - a value `v >= 16` with highest set bit `h` lands in
//!   `((h - 3) << 3) + ((v >> (h - 3)) & 7) + 8`.
//!
//! Every `u64` maps into one of [`NUM_BUCKETS`] = 496 fixed buckets, bucket
//! width is at most `lower / 8`, so any quantile read from a snapshot is
//! within 12.5% relative error of the exact sorted-sample quantile (and
//! exact below 16 — batch sizes, queue depths). Buckets are plain
//! `AtomicU64`s: snapshots are cheap copies and two snapshots from sharded
//! histograms [`HistogramSnapshot::merge`] into exactly what one histogram
//! recording the union would hold.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values below this are their own singleton bucket.
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);
/// Total fixed bucket count; covers all of `u64`.
pub const NUM_BUCKETS: usize = 496;

/// Bucket index for a recorded value. Monotone in `v`; exact for
/// `v < 16`, at most 12.5% wide above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let h = 63 - v.leading_zeros();
        let sub = ((v >> (h - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (((h - SUB_BITS) as usize) << SUB_BITS) + sub + SUB
    }
}

/// Inclusive `(lower, upper)` value range of a bucket. The upper bound is
/// what exposition reports as the Prometheus `le` edge (cumulative counts
/// through bucket `i` are exactly "samples `<= upper(i)`").
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if (index as u64) < LINEAR_MAX {
        return (index as u64, index as u64);
    }
    let h = SUB_BITS + ((index - SUB) >> SUB_BITS) as u32;
    let sub = ((index - SUB) & (SUB - 1)) as u64;
    let lower = (SUB as u64 + sub) << (h - SUB_BITS);
    let width = 1u64 << (h - SUB_BITS);
    (lower, lower + (width - 1))
}

/// Fixed-size, allocation-free-on-record histogram. ~4 KiB of atomics;
/// share it behind an `Arc` (or a [`HistHandle`]) and record from any
/// thread.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation: four relaxed atomic RMWs, no branches
    /// beyond the bucket-index computation, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Point-in-time copy. Concurrent recording keeps running; the copy is
    /// not atomic across buckets but each bucket is individually exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
        }
    }
}

/// Owned copy of a histogram's state: mergeable, queryable for quantiles.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count recorded into one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`). Returns the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` sample, clamped to the
    /// observed max — so the result lands in the same bucket as the exact
    /// sorted-sample quantile and `percentile(1.0) == max`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise accumulate: after merging shard snapshots, the result
    /// equals the snapshot of one histogram that recorded the union.
    /// `sum` wraps on overflow, exactly like the recording path's atomic
    /// `fetch_add`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }
}

/// Windowed high-water mark: `observe` raises both the current window's
/// peak and the lifetime peak; taking the window resets only the former.
#[derive(Default)]
pub struct PeakGauge {
    window: AtomicU64,
    lifetime: AtomicU64,
}

impl PeakGauge {
    #[inline]
    pub fn observe(&self, v: u64) {
        self.window.fetch_max(v, Relaxed);
        self.lifetime.fetch_max(v, Relaxed);
    }

    pub fn window(&self) -> u64 {
        self.window.load(Relaxed)
    }

    pub fn lifetime(&self) -> u64 {
        self.lifetime.load(Relaxed)
    }

    /// Read the current window's peak and start a fresh window.
    pub fn take_window(&self) -> u64 {
        self.window.swap(0, Relaxed)
    }
}

/// Handle to a registered histogram. Disabled (default) handles cost one
/// branch per record.
#[derive(Clone, Default)]
pub struct HistHandle(Option<Arc<Histogram>>);

impl HistHandle {
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(h) => h.snapshot(),
            None => HistogramSnapshot::default(),
        }
    }
}

/// Handle to a registered monotone counter.
#[derive(Clone, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

impl CounterHandle {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Handle to a registered last-write-wins gauge.
#[derive(Clone, Default)]
pub struct GaugeHandle(Option<Arc<AtomicU64>>);

impl GaugeHandle {
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Relaxed))
    }
}

/// Handle to a registered per-window peak gauge.
#[derive(Clone, Default)]
pub struct PeakHandle(Option<Arc<PeakGauge>>);

impl PeakHandle {
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(p) = &self.0 {
            p.observe(v);
        }
    }

    pub fn window(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.window())
    }

    pub fn lifetime(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.lifetime())
    }

    pub fn take_window(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.take_window())
    }
}

enum SeriesKind {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Peak(Arc<PeakGauge>),
    Histogram(Arc<Histogram>),
}

impl SeriesKind {
    fn type_name(&self) -> &'static str {
        match self {
            SeriesKind::Counter(_) => "counter",
            // Peaks expose their per-window value as a gauge sample.
            SeriesKind::Gauge(_) | SeriesKind::Peak(_) => "gauge",
            SeriesKind::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: SeriesKind,
}

#[derive(Default)]
struct RegistryInner {
    series: Mutex<Vec<Series>>,
}

/// Metric registry. Cheap to clone; all clones share the series table.
/// A disabled registry hands out disabled handles, so instrumented code
/// pays one branch per record and nothing else.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<RegistryInner>>,
}

impl Metrics {
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        get: impl Fn(&SeriesKind) -> Option<T>,
        make: impl FnOnce() -> (SeriesKind, T),
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let mut series = inner.series.lock();
        if let Some(s) = series.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
        }) {
            return match get(&s.kind) {
                Some(t) => Some(t),
                None => {
                    crate::warn(
                        "metrics",
                        format!(
                            "series {name} re-registered as a different kind; \
                             handing out a detached {}",
                            s.kind.type_name()
                        ),
                    );
                    None
                }
            };
        }
        let (kind, handle) = make();
        series.push(Series {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
        });
        Some(handle)
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle(self.register(
            name,
            help,
            labels,
            |k| match k {
                SeriesKind::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Arc::new(AtomicU64::new(0));
                (SeriesKind::Counter(c.clone()), c)
            },
        ))
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        GaugeHandle(self.register(
            name,
            help,
            labels,
            |k| match k {
                SeriesKind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Arc::new(AtomicU64::new(0));
                (SeriesKind::Gauge(g.clone()), g)
            },
        ))
    }

    /// Register (or look up) a per-window peak gauge series.
    pub fn peak_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> PeakHandle {
        PeakHandle(self.register(
            name,
            help,
            labels,
            |k| match k {
                SeriesKind::Peak(p) => Some(p.clone()),
                _ => None,
            },
            || {
                let p = Arc::new(PeakGauge::default());
                (SeriesKind::Peak(p.clone()), p)
            },
        ))
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistHandle {
        HistHandle(self.register(
            name,
            help,
            labels,
            |k| match k {
                SeriesKind::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (SeriesKind::Histogram(h.clone()), h)
            },
        ))
    }

    /// Render every registered series as Prometheus text exposition.
    /// `reset_windows` additionally starts a fresh window on every peak
    /// gauge (interval-delta semantics for scrapes).
    pub fn render_prometheus(&self, reset_windows: bool) -> String {
        let mut out = String::new();
        let Some(inner) = &self.inner else {
            return out;
        };
        let series = inner.series.lock();
        let mut seen: Vec<&str> = Vec::new();
        for s in series.iter() {
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.type_name()));
                // Group all samples of one name under its TYPE header.
                for s2 in series.iter().filter(|s2| s2.name == s.name) {
                    render_series(&mut out, s2, reset_windows);
                }
            }
        }
        out
    }
}

fn fmt_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn render_series(out: &mut String, s: &Series, reset_windows: bool) {
    match &s.kind {
        SeriesKind::Counter(c) => {
            out.push_str(&s.name);
            fmt_labels(out, &s.labels, None);
            out.push_str(&format!(" {}\n", c.load(Relaxed)));
        }
        SeriesKind::Gauge(g) => {
            out.push_str(&s.name);
            fmt_labels(out, &s.labels, None);
            out.push_str(&format!(" {}\n", g.load(Relaxed)));
        }
        SeriesKind::Peak(p) => {
            let v = if reset_windows {
                p.take_window()
            } else {
                p.window()
            };
            out.push_str(&s.name);
            fmt_labels(out, &s.labels, None);
            out.push_str(&format!(" {v}\n"));
        }
        SeriesKind::Histogram(h) => {
            render_histogram_samples(out, &s.name, &s.labels, &h.snapshot());
        }
    }
}

/// Render one histogram snapshot as Prometheus exposition lines (TYPE
/// header, cumulative non-empty buckets, `+Inf`, `_sum`, `_count`). For
/// code that holds snapshots outside a [`Metrics`] registry (e.g. the
/// steal-pool telemetry, which snapshots shared state rather than
/// registering per-pool series).
pub fn render_histogram_text(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    render_histogram_samples(out, name, &owned, snap);
}

fn render_histogram_samples(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for (i, c) in snap.nonzero() {
        cum += c;
        out.push_str(name);
        out.push_str("_bucket");
        let le = bucket_bounds(i).1.to_string();
        fmt_labels(out, labels, Some(("le", &le)));
        out.push_str(&format!(" {cum}\n"));
    }
    out.push_str(name);
    out.push_str("_bucket");
    fmt_labels(out, labels, Some(("le", "+Inf")));
    out.push_str(&format!(" {}\n", snap.count));
    out.push_str(name);
    out.push_str("_sum");
    fmt_labels(out, labels, None);
    out.push_str(&format!(" {}\n", snap.sum));
    out.push_str(name);
    out.push_str("_count");
    fmt_labels(out, labels, None);
    out.push_str(&format!(" {}\n", snap.count));
}

/// One sample line parsed back out of Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl ParsedSample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal Prometheus text-format parser, enough to round-trip what
/// [`Metrics::render_prometheus`] emits (used by `ramiel top` and tests).
/// Malformed lines are skipped.
pub fn parse_prometheus(text: &str) -> Vec<ParsedSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = if let Some(close) = line.find('}') {
            (&line[..close + 1], line[close + 1..].trim())
        } else {
            match line.split_once(' ') {
                Some((n, v)) => (n, v.trim()),
                None => continue,
            }
        };
        // Rust's f64 grammar accepts "+Inf"/"inf" directly.
        let Ok(value) = value_part.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest.trim_end_matches('}');
                let mut labels = Vec::new();
                let mut chars = rest.chars().peekable();
                'pairs: while chars.peek().is_some() {
                    let mut key = String::new();
                    for c in chars.by_ref() {
                        if c == '=' {
                            break;
                        }
                        key.push(c);
                    }
                    if chars.next() != Some('"') {
                        break 'pairs;
                    }
                    let mut val = String::new();
                    loop {
                        match chars.next() {
                            Some('\\') => match chars.next() {
                                Some('n') => val.push('\n'),
                                Some(c) => val.push(c),
                                None => break 'pairs,
                            },
                            Some('"') => break,
                            Some(c) => val.push(c),
                            None => break 'pairs,
                        }
                    }
                    labels.push((key, val));
                    if chars.peek() == Some(&',') {
                        chars.next();
                    }
                }
                (name.to_string(), labels)
            }
        };
        out.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    out
}

/// Quantile from parsed `_bucket` samples: `(le, cumulative count)` pairs,
/// sorted ascending by `le` (include the `+Inf` bucket). Mirrors
/// [`HistogramSnapshot::percentile`] on the consumer side of the wire.
pub fn quantile_from_buckets(buckets: &[(f64, f64)], q: f64) -> f64 {
    let total = buckets.last().map_or(0.0, |&(_, c)| c);
    if total <= 0.0 {
        return 0.0;
    }
    let rank = (q * total).ceil().clamp(1.0, total);
    for &(le, cum) in buckets {
        if cum >= rank {
            return le;
        }
    }
    buckets.last().map_or(0.0, |&(le, _)| le)
}

/// Windowed cumulative-bucket differencing for `ramiel top`: subtract a
/// previous frame's `(le, cumulative)` buckets from the current frame's.
///
/// Hardened against two live-scrape hazards:
///
/// * **`le` drift** — buckets are matched by `le` *value*, never by
///   position, so a frame that gained or lost a bucket line (schema
///   change, truncated scrape) can't pair unrelated buckets.
/// * **concurrent counter reset** — if a `stats` reset lands between the
///   two scrapes, the current cumulative counts are *smaller* than the
///   previous frame's and naive differencing goes negative (and, downstream,
///   a quantile walk over garbage). A backwards total means the previous
///   frame predates the reset and describes nothing that happened in this
///   window, so the lifetime (current) buckets are the only coherent
///   answer. Per-bucket wobble from a reset racing mid-scrape is clamped
///   to zero and repaired to a monotone cumulative sequence.
///
/// Both inputs must be sorted ascending by `le` (as `ramiel top` builds
/// them); the output is sorted, saturated at zero, and monotone — safe to
/// hand straight to [`quantile_from_buckets`].
pub fn window_buckets(cur: &[(f64, f64)], prev: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let cur_total = cur.last().map_or(0.0, |&(_, c)| c);
    let prev_total = prev.last().map_or(0.0, |&(_, c)| c);
    if cur_total < prev_total {
        return cur.to_vec();
    }
    let mut out = Vec::with_capacity(cur.len());
    let mut pi = 0usize;
    let mut floor = 0.0f64;
    for &(le, c) in cur {
        while pi < prev.len() && prev[pi].0 < le {
            pi += 1;
        }
        let p = if pi < prev.len() && prev[pi].0 == le {
            prev[pi].1
        } else {
            0.0
        };
        let d = (c - p).max(0.0).max(floor);
        floor = d;
        out.push((le, d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_exact_below_16() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let probes: Vec<u64> = (0..200)
            .map(|i| 1u64 << (i % 64))
            .chain((0..1000).map(|i| i * 7919))
            .chain([u64::MAX, u64::MAX - 1, 1 << 63])
            .collect();
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
        }
        for i in 1..NUM_BUCKETS {
            assert!(bucket_bounds(i - 1).1 < bucket_bounds(i).0);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    /// Normal windowed differencing: le-aligned deltas of two coherent
    /// frames recover exactly the counts recorded inside the window.
    #[test]
    fn window_buckets_differences_coherent_frames() {
        let prev = vec![(1.0, 3.0), (10.0, 5.0), (f64::INFINITY, 5.0)];
        let cur = vec![(1.0, 4.0), (10.0, 9.0), (f64::INFINITY, 10.0)];
        let w = window_buckets(&cur, &prev);
        assert_eq!(w, vec![(1.0, 1.0), (10.0, 4.0), (f64::INFINITY, 5.0)]);
        // downstream quantile sees only the window: 5 samples, p50 ≤ 10
        assert_eq!(quantile_from_buckets(&w, 0.5), 10.0);
    }

    /// Regression: a `stats` reset between two `top` frames makes every
    /// cumulative bucket go *backwards*; naive positional differencing
    /// produced negative deltas (clamped into a garbage distribution).
    /// A backwards total must fall back to the lifetime buckets.
    #[test]
    fn window_buckets_survives_interleaved_reset() {
        let prev = vec![(1.0, 100.0), (10.0, 400.0), (f64::INFINITY, 500.0)];
        // after the reset only 7 fresh samples exist
        let cur = vec![(1.0, 2.0), (10.0, 6.0), (f64::INFINITY, 7.0)];
        let w = window_buckets(&cur, &prev);
        assert_eq!(w, cur, "reset must fall back to lifetime buckets");
        assert!(quantile_from_buckets(&w, 0.99).is_finite() || w.last().unwrap().0.is_infinite());

        // reset racing *mid-scrape*: some buckets already re-accumulated
        // past the previous frame, others not — deltas stay ≥ 0 and the
        // cumulative sequence stays monotone.
        let torn = vec![(1.0, 90.0), (10.0, 410.0), (f64::INFINITY, 510.0)];
        let w = window_buckets(&torn, &prev);
        assert!(w.iter().all(|&(_, c)| c >= 0.0));
        for pair in w.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "cumulative counts must be monotone: {w:?}"
            );
        }
    }

    /// Buckets are matched by `le` value: a frame that lost a bucket line
    /// must not pair unrelated buckets positionally.
    #[test]
    fn window_buckets_aligns_by_le_not_position() {
        let prev = vec![(1.0, 3.0), (10.0, 5.0), (f64::INFINITY, 5.0)];
        // current frame lost the le=1 line (truncated scrape)
        let cur = vec![(10.0, 8.0), (f64::INFINITY, 9.0)];
        let w = window_buckets(&cur, &prev);
        assert_eq!(w, vec![(10.0, 3.0), (f64::INFINITY, 4.0)]);
    }

    /// Regression: `mean()` on an empty snapshot used to be 0/0 = NaN,
    /// which poisoned every downstream aggregate it was merged into. Empty
    /// must answer 0 for mean, every percentile, and max.
    #[test]
    fn empty_histogram_reports_zeros_not_nan() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert!(!s.mean().is_nan());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 0);
        }
        assert_eq!(s.max, 0);

        // merging an empty snapshot is a no-op on the target's stats
        let mut m = s.clone();
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.count, 0);
    }

    /// A single sample pins every statistic: mean == p50 == p99 == max ==
    /// the recorded value (up to the bucket's upper bound, capped by max).
    #[test]
    fn single_sample_pins_all_statistics() {
        for v in [0u64, 1, 15, 16, 1000, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.count, 1);
            assert_eq!(s.mean(), v as f64, "mean of one sample is the sample");
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(s.percentile(q), v.min(s.max), "p{q} of one sample");
            }
            assert_eq!(s.max, v);
        }
    }

    #[test]
    fn percentile_and_max() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.percentile(1.0), 100);
        let p50 = s.percentile(0.5);
        // Exact p50 is 50; bucket [48,53] ⊇ 50, upper ≤ 53.
        assert!((48..=53).contains(&p50), "p50={p50}");
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for i in 0..500u64 {
            let v = i * i % 7001;
            if i % 2 == 0 { &a } else { &b }.record(v);
            u.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let us = u.snapshot();
        assert_eq!(m.count, us.count);
        assert_eq!(m.sum, us.sum);
        assert_eq!(m.max, us.max);
        assert_eq!(m.buckets, us.buckets);
    }

    #[test]
    fn registry_render_and_parse_round_trip() {
        let m = Metrics::enabled();
        let c = m.counter("ramiel_test_total", "test counter", &[("model", "sq")]);
        c.add(7);
        let g = m.gauge("ramiel_test_depth", "test gauge", &[]);
        g.set(3);
        let p = m.peak_gauge("ramiel_test_peak", "test peak", &[]);
        p.observe(9);
        let h = m.histogram("ramiel_test_ns", "test hist", &[("model", "sq")]);
        h.record(5);
        h.record(500);
        let text = m.render_prometheus(false);
        assert!(text.contains("# TYPE ramiel_test_ns histogram"));
        let samples = parse_prometheus(&text);
        let find = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("ramiel_test_total").value, 7.0);
        assert_eq!(find("ramiel_test_total").label("model"), Some("sq"));
        assert_eq!(find("ramiel_test_depth").value, 3.0);
        assert_eq!(find("ramiel_test_peak").value, 9.0);
        assert_eq!(find("ramiel_test_ns_count").value, 2.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "ramiel_test_ns_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn peak_window_resets_lifetime_persists() {
        let m = Metrics::enabled();
        let p = m.peak_gauge("ramiel_test_win", "w", &[]);
        p.observe(42);
        let text = m.render_prometheus(true);
        assert!(text.contains("ramiel_test_win 42"));
        assert_eq!(p.window(), 0, "render with reset starts a fresh window");
        assert_eq!(p.lifetime(), 42);
        p.observe(5);
        assert_eq!(p.window(), 5);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let m = Metrics::disabled();
        let h = m.histogram("x", "x", &[]);
        h.record(5);
        assert!(!h.is_enabled());
        assert!(h.snapshot().is_empty());
        assert_eq!(m.render_prometheus(true), "");
    }

    #[test]
    fn same_series_shares_storage_kind_mismatch_detaches() {
        let m = Metrics::enabled();
        let c1 = m.counter("dup_total", "d", &[("a", "1")]);
        let c2 = m.counter("dup_total", "d", &[("a", "1")]);
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        let g = m.gauge("dup_total", "d", &[("a", "1")]);
        g.set(9);
        assert_eq!(g.get(), 0, "kind-mismatched handle is detached");
    }
}
