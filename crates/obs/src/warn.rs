//! Structured warnings: one call both prints to stderr and records the
//! warning in a process-global log, so the text a user sees and the events
//! a trace carries can never drift apart.
//!
//! The log is global (not per-[`crate::Obs`]) because warnings often fire
//! from code that has no sink handy — env-var parsing, one-time config
//! checks — and because a warning is worth keeping even when tracing is
//! off. Exporters fold [`warnings_snapshot`] into their output.

use parking_lot::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// One recorded warning.
#[derive(Debug, Clone)]
pub struct WarnEvent {
    /// Stable machine-readable code, e.g. `OBS-ENV`.
    pub code: &'static str,
    pub message: String,
    /// When the warning fired (process time; exporters translate onto the
    /// trace epoch).
    pub at: Instant,
}

fn log() -> &'static Mutex<Vec<WarnEvent>> {
    static LOG: OnceLock<Mutex<Vec<WarnEvent>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Emit a structured warning: prints `warning[CODE]: message` to stderr and
/// appends to the global warning log.
pub fn warn(code: &'static str, message: impl Into<String>) {
    let message = message.into();
    eprintln!("warning[{code}]: {message}");
    log().lock().push(WarnEvent {
        code,
        message,
        at: Instant::now(),
    });
}

/// Snapshot of every warning emitted so far in this process.
pub fn warnings_snapshot() -> Vec<WarnEvent> {
    log().lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warn_records_into_global_log() {
        warn("OBS-TEST", "hello from the test");
        let snap = warnings_snapshot();
        assert!(snap
            .iter()
            .any(|w| w.code == "OBS-TEST" && w.message.contains("hello")));
    }
}
