//! Per-edge channel metrics for the cluster executors.
//!
//! A [`ChannelMeter`] is a k×k matrix of atomic cells, one per directed
//! cluster pair. Senders bump `sends`/`bytes` and the in-flight depth on
//! their way into the channel; receivers decrement the depth and attribute
//! blocked time to the edge the message finally arrived on. Everything is
//! lock-free so metering never perturbs the schedule it measures.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct Cell {
    sends: AtomicU64,
    recvs: AtomicU64,
    bytes: AtomicU64,
    copied_bytes: AtomicU64,
    blocked_ns: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
}

/// Aggregated statistics for one directed cluster edge.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ChannelEdgeStats {
    pub from: usize,
    pub to: usize,
    pub sends: u64,
    pub recvs: u64,
    /// Logical payload bytes carried by the edge (what a process-based
    /// transport would have to serialize).
    pub bytes: u64,
    /// Bytes the sender actually deep-copied to build the messages. With
    /// shared-buffer tensor values a send is a refcount bump plus a small
    /// header, so `copied_bytes` ≪ `bytes`; the gap is the zero-copy win.
    pub copied_bytes: u64,
    /// Total time receivers spent blocked waiting for a message that
    /// arrived on this edge, in nanoseconds.
    pub blocked_ns: u64,
    /// High-water mark of messages sent-but-not-yet-received on this edge.
    pub max_in_flight: u64,
}

/// Lock-free per-edge channel metering over `k` clusters/workers.
pub struct ChannelMeter {
    k: usize,
    cells: Vec<Cell>,
}

impl ChannelMeter {
    pub fn new(k: usize) -> ChannelMeter {
        ChannelMeter {
            k,
            cells: (0..k * k).map(|_| Cell::default()).collect(),
        }
    }

    pub fn workers(&self) -> usize {
        self.k
    }

    fn cell(&self, from: usize, to: usize) -> &Cell {
        &self.cells[from * self.k + to]
    }

    /// Record a send of `bytes` logical payload bytes from `from` to `to`,
    /// of which `copied` bytes were actually deep-copied by the sender
    /// (shallow value headers for Arc-shared tensors).
    pub fn on_send(&self, from: usize, to: usize, bytes: u64, copied: u64) {
        let c = self.cell(from, to);
        c.sends.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(bytes, Ordering::Relaxed);
        c.copied_bytes.fetch_add(copied, Ordering::Relaxed);
        let depth = c.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        c.max_in_flight.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record a receive on edge `from → to`, attributing `blocked_ns` of
    /// receiver wait time to that edge.
    pub fn on_recv(&self, from: usize, to: usize, blocked_ns: u64) {
        let c = self.cell(from, to);
        c.recvs.fetch_add(1, Ordering::Relaxed);
        c.blocked_ns.fetch_add(blocked_ns, Ordering::Relaxed);
        // Saturate rather than wrap if a recv races ahead of its send count.
        let _ = c
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Snapshot of every edge that saw traffic, ordered by (from, to).
    pub fn stats(&self) -> Vec<ChannelEdgeStats> {
        let mut out = Vec::new();
        for from in 0..self.k {
            for to in 0..self.k {
                let c = self.cell(from, to);
                let sends = c.sends.load(Ordering::Relaxed);
                let recvs = c.recvs.load(Ordering::Relaxed);
                if sends == 0 && recvs == 0 {
                    continue;
                }
                out.push(ChannelEdgeStats {
                    from,
                    to,
                    sends,
                    recvs,
                    bytes: c.bytes.load(Ordering::Relaxed),
                    copied_bytes: c.copied_bytes.load(Ordering::Relaxed),
                    blocked_ns: c.blocked_ns.load(Ordering::Relaxed),
                    max_in_flight: c.max_in_flight.load(Ordering::Relaxed),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_edges_independently() {
        let m = ChannelMeter::new(3);
        m.on_send(0, 1, 100, 32);
        m.on_send(0, 1, 50, 32);
        m.on_recv(0, 1, 7);
        m.on_send(2, 0, 8, 8);
        let stats = m.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].from, 0);
        assert_eq!(stats[0].to, 1);
        assert_eq!(stats[0].sends, 2);
        assert_eq!(stats[0].recvs, 1);
        assert_eq!(stats[0].bytes, 150);
        assert_eq!(stats[0].copied_bytes, 64);
        assert_eq!(stats[0].blocked_ns, 7);
        assert_eq!(stats[0].max_in_flight, 2);
        assert_eq!(stats[1].from, 2);
        assert_eq!(stats[1].to, 0);
    }

    #[test]
    fn recv_without_send_saturates() {
        let m = ChannelMeter::new(2);
        m.on_recv(0, 1, 1);
        m.on_recv(0, 1, 1);
        let stats = m.stats();
        assert_eq!(stats[0].recvs, 2);
        assert_eq!(stats[0].max_in_flight, 0);
    }
}
