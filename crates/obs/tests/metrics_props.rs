//! Property-based tests for the lock-free log-bucketed histogram: bucket
//! geometry invariants, percentile error bounds against exact sorted
//! samples, shard-merge equivalence, and exposition round-trips.
//!
//! The vendored proptest only generates scalars, so each test takes a
//! seed and synthesizes its sample vector with a local splitmix64 —
//! deterministic per case, varied across cases.

use proptest::prelude::*;
use ramiel_obs::metrics::{bucket_bounds, bucket_index, render_histogram_text, Histogram};
use ramiel_obs::{parse_prometheus, quantile_from_buckets};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `n` values spread across the magnitudes that show up in practice:
/// sub-octave singletons, microsecond-scale, second-scale, and full-range
/// nanosecond counts. `max_bits` caps the magnitude (64 = anything).
fn samples(seed: u64, n: usize, max_bits: u32) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let r = splitmix(&mut state);
            let v = match r % 4 {
                0 => r % 64,
                1 => r % 100_000,
                2 => r % 10_000_000_000,
                _ => splitmix(&mut state),
            };
            if max_bits >= 64 {
                v
            } else {
                v & ((1u64 << max_bits) - 1)
            }
        })
        .collect()
}

/// Exact quantile of a sorted sample set, matching the histogram's
/// rank definition (`rank = ceil(q * n)`, 1-based, clamped).
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands inside its own bucket's bounds, and consecutive
    /// buckets tile the u64 range without gaps or overlaps.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let i = bucket_index(v);
        let (lower, upper) = bucket_bounds(i);
        prop_assert!(lower <= v && v <= upper, "v={} not in bucket {} [{}, {}]", v, i, lower, upper);
        if upper < u64::MAX {
            prop_assert_eq!(bucket_bounds(i + 1).0, upper + 1, "gap after bucket {}", i);
        }
    }

    /// Reported percentiles sit within one bucket of the exact sorted-
    /// sample percentile: never below it, and above it by at most the
    /// bucket's width (≤ value/8 + 1 by the 8-sub-buckets-per-octave
    /// scheme).
    #[test]
    fn percentiles_within_one_bucket_of_exact(
        seed in any::<u64>(), n in 1usize..300, qi in 1usize..100,
    ) {
        let values = samples(seed, n, 64);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [qi as f64 / 100.0, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let approx = snap.percentile(q);
            prop_assert!(approx >= exact, "q={}: approx {} < exact {}", q, approx, exact);
            prop_assert!(
                approx - exact <= exact / 8 + 1,
                "q={}: approx {} off exact {} by more than one bucket", q, approx, exact
            );
        }
        // p100 is exact: the histogram tracks the true max.
        prop_assert_eq!(snap.percentile(1.0), *sorted.last().unwrap());
    }

    /// Merging per-shard snapshots is indistinguishable from recording
    /// the union into a single histogram (count, sum, max, every bucket).
    #[test]
    fn merge_of_shards_equals_union(
        seed in any::<u64>(), shard_count in 1usize..6, per_shard in 0usize..60,
    ) {
        let union = Histogram::new();
        let mut merged = Histogram::new().snapshot();
        for s in 0..shard_count {
            let shard = samples(seed ^ (s as u64) << 32, per_shard, 64);
            let h = Histogram::new();
            for &v in &shard {
                h.record(v);
                union.record(v);
            }
            merged.merge(&h.snapshot());
        }
        let expected = union.snapshot();
        prop_assert_eq!(merged.count, expected.count);
        prop_assert_eq!(merged.sum, expected.sum);
        prop_assert_eq!(merged.max, expected.max);
        for (i, count) in expected.nonzero() {
            prop_assert_eq!(merged.bucket(i), count, "bucket {} diverged", i);
        }
    }

    /// Prometheus text rendering round-trips: parsing the exposition
    /// recovers the count, sum, and cumulative bucket structure, and a
    /// client-side quantile from the parsed buckets agrees with the
    /// snapshot's own percentile to within one bucket. Values stay below
    /// 2^40 so the text → f64 path is exact.
    #[test]
    fn render_parse_roundtrip(seed in any::<u64>(), n in 1usize..120) {
        let values = samples(seed, n, 40);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut text = String::new();
        render_histogram_text(&mut text, "t_ns", "test series", &[("model", "m")], &snap);
        let parsed = parse_prometheus(&text);

        let count = parsed.iter().find(|s| s.name == "t_ns_count").expect("count");
        prop_assert_eq!(count.value as u64, snap.count);
        let sum = parsed.iter().find(|s| s.name == "t_ns_sum").expect("sum");
        prop_assert_eq!(sum.value as u64, snap.sum);

        let mut buckets: Vec<(f64, f64)> = parsed
            .iter()
            .filter(|s| s.name == "t_ns_bucket")
            .map(|s| {
                let le = s.label("le").expect("le label").parse::<f64>().expect("le value");
                (le, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Cumulative counts are monotone and end at the total.
        for pair in buckets.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1, "cumulative counts must be monotone");
        }
        prop_assert_eq!(buckets.last().expect("+Inf bucket").1 as u64, snap.count);

        // The wire-side quantile is the bucket's upper edge; the snapshot
        // additionally clamps to the observed max, so they agree to
        // within one bucket's width.
        let wire = quantile_from_buckets(&buckets, 0.5) as u64;
        let own = snap.percentile(0.5);
        prop_assert!(own <= wire, "snapshot p50 {} above wire p50 {}", own, wire);
        prop_assert!(wire - own <= own / 8 + 1, "wire p50 {} more than a bucket past {}", wire, own);
    }
}
