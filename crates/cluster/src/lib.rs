//! # ramiel-cluster
//!
//! The paper's core contribution: task parallelization of ML dataflow graphs
//! via **recursive critical-path-based Linear Clustering** (Kim & Browne's
//! LC, Algorithm 1), a **cluster-merging** fixpoint pass (Algorithms 2–3),
//! and **hyperclustering** for batch sizes > 1 (plain and *switched*).
//!
//! Pipeline (batch = 1):
//!
//! ```text
//! Graph ──cost model──▶ distance_to_end ──▶ LC ──▶ merge ──▶ Clustering
//! ```
//!
//! The [`cost`] module also computes the paper's *potential parallelism*
//! factor (Table I): total weighted node cost divided by the weighted
//! critical-path length (edges count 1 each).

pub mod baselines;
pub mod cost;
pub mod critical_path;
pub mod distance;
pub mod dsc;
pub mod hyper;
pub mod lc;
pub mod merge;
pub mod types;
pub mod verify_view;

pub use baselines::{level_clustering, round_robin, single_cluster};
pub use cost::{CostModel, FlopCost, MeasuredCost, StaticCost};
pub use critical_path::{critical_path, parallelism_report, ParallelismReport};
pub use distance::distance_to_end;
pub use dsc::dsc_clustering;
pub use hyper::{hypercluster, switched_hypercluster, HyperClustering};
pub use lc::linear_clustering;
pub use merge::{merge_clusters_fixpoint, merge_clusters_once};
pub use types::{Cluster, Clustering};
pub use verify_view::{clustering_view, hyper_view, stealing_view};

use ramiel_ir::Graph;

/// Run the full batch-1 clustering pipeline: distances → LC → merge.
///
/// Debug builds re-verify the partition, ordering and deadlock-freedom
/// invariants after each stage via `ramiel-verify`.
pub fn cluster_graph(graph: &Graph, cost: &dyn CostModel) -> Clustering {
    let dist = distance_to_end(graph, cost);
    let lc = linear_clustering(graph, &dist);
    #[cfg(debug_assertions)]
    ramiel_verify::assert_schedule_invariants(
        graph,
        &clustering_view(&lc),
        "after linear_clustering",
    );
    let merged = merge_clusters_fixpoint(&lc, &dist);
    #[cfg(debug_assertions)]
    ramiel_verify::assert_schedule_invariants(
        graph,
        &clustering_view(&merged),
        "after merge_clusters_fixpoint",
    );
    merged
}
