//! DSC-lite: a Dominant Sequence Clustering variant (Yang & Gerasoulis,
//! 1994), the other classic linear-clustering algorithm from the same era as
//! Kim & Browne's LC. Included as a literature comparison point for the
//! ablation benches.
//!
//! The full DSC maintains priority queues of free/partially-free nodes and
//! guarantees non-increasing parallel time per step; this implementation
//! keeps the core idea at O(V·E) simplicity:
//!
//! 1. process nodes in descending *dominant-sequence priority*
//!    `tlevel(n) + blevel(n)` (top level + bottom level, both including unit
//!    edge costs);
//! 2. each node joins the cluster of the predecessor that most reduces its
//!    estimated start time (zeroing that edge), provided the merge does not
//!    increase the estimate; otherwise it starts a new cluster;
//! 3. cluster op-lists stay sorted by descending `distance_to_end`, which —
//!    as with merged LC clusters — is always a valid execution order.

use crate::cost::CostModel;
use crate::distance::distance_to_end;
use crate::types::{Cluster, Clustering};
use ramiel_ir::topo::topo_sort;
use ramiel_ir::Graph;

/// Run DSC-lite over the graph.
pub fn dsc_clustering(graph: &Graph, cost: &dyn CostModel) -> Clustering {
    let n = graph.num_nodes();
    if n == 0 {
        return Clustering::new(Vec::new());
    }
    let adj = graph.adjacency();
    let order = topo_sort(graph).expect("acyclic graph required");
    let node_cost: Vec<u64> = graph
        .nodes
        .iter()
        .map(|nd| cost.node_cost(graph, nd))
        .collect();
    let edge = cost.edge_cost();

    // blevel = distance to end (includes own cost); tlevel via forward pass.
    let blevel = distance_to_end(graph, cost);
    let mut tlevel = vec![0u64; n];
    for &u in &order {
        for &p in &adj.preds[u] {
            tlevel[u] = tlevel[u].max(tlevel[p] + node_cost[p] + edge);
        }
    }

    // cluster id per node; clusters carry their current finish time.
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut cluster_finish: Vec<u64> = Vec::new();
    let mut start_time = vec![0u64; n];

    for &u in &order {
        // arrival time from each predecessor (edge cost unless same cluster;
        // cluster unknown yet — evaluate both hypotheses below)
        let mut best: Option<(u64, usize)> = None; // (start, cluster)
        let mut ready_other = 0u64; // max arrival over preds NOT in candidate
        for &p in &adj.preds[u] {
            let f = start_time[p] + node_cost[p];
            ready_other = ready_other.max(f + edge);
        }
        // hypothesis: join pred p's cluster, zeroing edge p→u. Ties between
        // predecessor clusters break toward the dominant sequence (largest
        // tlevel+blevel), as in full DSC.
        let mut best_priority = 0u64;
        for &p in &adj.preds[u] {
            let c = cluster_of[p].expect("topological order places preds first");
            let mut ready = cluster_finish[c]; // worker availability
            for &q in &adj.preds[u] {
                let f = start_time[q] + node_cost[q];
                let arrive = if cluster_of[q] == Some(c) {
                    f
                } else {
                    f + edge
                };
                ready = ready.max(arrive);
            }
            let priority = tlevel[p] + blevel[p];
            let better = match best {
                None => true,
                Some((bs, _)) => ready < bs || (ready == bs && priority > best_priority),
            };
            if better {
                best = Some((ready, c));
                best_priority = priority;
            }
        }
        // hypothesis: fresh cluster
        let fresh_start = ready_other;
        let (start, cluster) = match best {
            Some((s, c)) if s <= fresh_start => (s, c),
            _ => {
                cluster_finish.push(0);
                (fresh_start, cluster_finish.len() - 1)
            }
        };
        cluster_of[u] = Some(cluster);
        start_time[u] = start;
        cluster_finish[cluster] = start + node_cost[u];
    }

    // materialize clusters ordered by descending distance-to-end
    let k = cluster_finish.len();
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (u, c) in cluster_of.iter().enumerate() {
        clusters[c.expect("all nodes placed")].push(u);
    }
    let mut out: Vec<Cluster> = clusters
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|mut nodes| {
            nodes.sort_by_key(|&nd| (std::cmp::Reverse(blevel[nd]), nd));
            Cluster::new(nodes)
        })
        .collect();
    // deterministic cluster order: by entry-node distance, then id
    out.sort_by_key(|c| (std::cmp::Reverse(blevel[c.entry()]), c.entry()));
    Clustering::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StaticCost;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn fork_join(branches: usize, chain: usize) -> Graph {
        let mut b = GraphBuilder::new("fj");
        let x = b.input("x", DType::F32, vec![4]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        let mut outs = Vec::new();
        for _ in 0..branches {
            let mut t = root.clone();
            for _ in 0..chain {
                t = b.op("n", OpKind::Sigmoid, vec![t]);
            }
            outs.push(t);
        }
        let mut acc = outs[0].clone();
        for o in &outs[1..] {
            acc = b.op("j", OpKind::Add, vec![acc, o.clone()]);
        }
        b.output(&acc);
        b.finish().unwrap()
    }

    #[test]
    fn dsc_produces_valid_clusterings() {
        for g in [fork_join(4, 3), fork_join(2, 6), fork_join(6, 1)] {
            let c = dsc_clustering(&g, &StaticCost);
            c.check_partition(&g).unwrap();
            c.check_internal_order(&g).unwrap();
        }
    }

    #[test]
    fn chain_collapses_to_one_cluster() {
        let mut b = GraphBuilder::new("c");
        let mut t = b.input("x", DType::F32, vec![4]);
        for _ in 0..6 {
            t = b.op("n", OpKind::Relu, vec![t]);
        }
        b.output(&t);
        let g = b.finish().unwrap();
        let c = dsc_clustering(&g, &StaticCost);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn parallel_branches_split_across_clusters() {
        let g = fork_join(4, 4);
        let c = dsc_clustering(&g, &StaticCost);
        assert!(c.num_clusters() >= 2, "got {}", c.num_clusters());
        assert!(c.num_clusters() <= 5);
    }

    #[test]
    fn deterministic() {
        let g = fork_join(3, 3);
        assert_eq!(
            dsc_clustering(&g, &StaticCost),
            dsc_clustering(&g, &StaticCost)
        );
    }

    #[test]
    fn works_on_models() {
        // structural smoke test on a real model shape
        use ramiel_ir::validate::validate;
        let g = {
            let mut b = GraphBuilder::new("m");
            let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
            let c1 = b.conv_relu(&x, 3, 4, 3, 1, 1);
            let e1 = b.conv_relu(&c1, 4, 4, 1, 1, 0);
            let e3 = b.conv_relu(&c1, 4, 4, 3, 1, 1);
            let cat = b.op("cat", OpKind::Concat { axis: 1 }, vec![e1, e3]);
            b.output(&cat);
            b.finish().unwrap()
        };
        validate(&g).unwrap();
        let c = dsc_clustering(&g, &StaticCost);
        c.check_partition(&g).unwrap();
        c.check_internal_order(&g).unwrap();
    }
}
