//! Conversions from this crate's clustering types to the verifier's
//! [`ScheduleView`]. They live here (not in `ramiel-verify`) so the verifier
//! can stay a leaf crate that this one is allowed to call back into as a
//! debug-assertion harness.
//!
//! Policy mapping:
//! - [`Clustering`] and *plain* [`HyperClustering`] replay strictly in
//!   order (clusters are kept in decreasing distance-to-end order, and the
//!   plain batch interleave preserves that monotonicity), so they get
//!   [`ExecPolicy::InOrder`] — the stricter check.
//! - *Switched* hyperclusters interleave ops from different source clusters,
//!   whose positions are not distance-monotone across batches; the runtime
//!   replays them with its message-driven first-ready loop, so they are
//!   verified under [`ExecPolicy::FirstReady`].

use crate::hyper::HyperClustering;
use crate::types::Clustering;
use ramiel_verify::{ExecPolicy, Op, ScheduleView};

/// Batch-1 in-order view of a clustering.
pub fn clustering_view(c: &Clustering) -> ScheduleView {
    ScheduleView::single_batch(
        c.clusters.iter().map(|cl| cl.nodes.clone()).collect(),
        ExecPolicy::InOrder,
    )
}

/// View of a hyperclustering under the policy the runtime will use.
pub fn hyper_view(hc: &HyperClustering) -> ScheduleView {
    ScheduleView {
        batch: hc.batch.max(1),
        workers: hc
            .hyperclusters
            .iter()
            .map(|h| {
                h.iter()
                    .map(|op| Op {
                        batch: op.batch,
                        node: op.node,
                    })
                    .collect()
            })
            .collect(),
        policy: if hc.switched && hc.batch > 1 {
            ExecPolicy::FirstReady
        } else {
            ExecPolicy::InOrder
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::{hypercluster, switched_hypercluster};
    use crate::types::Cluster;

    fn clustering() -> Clustering {
        Clustering::new(vec![Cluster::new(vec![0, 1, 2]), Cluster::new(vec![3])])
    }

    #[test]
    fn clustering_view_is_in_order_batch1() {
        let v = clustering_view(&clustering());
        assert_eq!(v.batch, 1);
        assert_eq!(v.policy, ExecPolicy::InOrder);
        assert_eq!(v.workers[0].len(), 3);
        assert_eq!(v.workers[1][0], Op { batch: 0, node: 3 });
    }

    #[test]
    fn hyper_views_pick_the_runtime_policy() {
        let c = clustering();
        let plain = hyper_view(&hypercluster(&c, 4));
        assert_eq!(plain.policy, ExecPolicy::InOrder);
        assert_eq!(plain.batch, 4);
        assert_eq!(plain.num_ops(), 16);
        let switched = hyper_view(&switched_hypercluster(&c, 4));
        assert_eq!(switched.policy, ExecPolicy::FirstReady);
        // switched with batch 1 degenerates to the plain clustering
        let s1 = hyper_view(&switched_hypercluster(&c, 1));
        assert_eq!(s1.policy, ExecPolicy::InOrder);
    }
}
