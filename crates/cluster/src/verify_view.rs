//! Conversions from this crate's clustering types to the verifier's
//! [`ScheduleView`]. They live here (not in `ramiel-verify`) so the verifier
//! can stay a leaf crate that this one is allowed to call back into as a
//! debug-assertion harness.
//!
//! Policy mapping:
//! - [`Clustering`] and *plain* [`HyperClustering`] replay strictly in
//!   order (clusters are kept in decreasing distance-to-end order, and the
//!   plain batch interleave preserves that monotonicity), so they get
//!   [`ExecPolicy::InOrder`] — the stricter check.
//! - *Switched* hyperclusters interleave ops from different source clusters,
//!   whose positions are not distance-monotone across batches; the runtime
//!   replays them with its message-driven first-ready loop, so they are
//!   verified under [`ExecPolicy::FirstReady`].
//! - The *work-stealing* executor has no static schedule at all: the order
//!   is decided at runtime by readiness and steal order. Its view collapses
//!   to a single first-ready worker holding every op, which keeps the
//!   memory bound sound (resident-sum over all charges) while making the
//!   channel lints vacuously inapplicable — there are no channels.

use crate::hyper::HyperClustering;
use crate::types::Clustering;
use ramiel_ir::Graph;
use ramiel_verify::{ExecPolicy, Op, ScheduleView};

/// Batch-1 in-order view of a clustering.
pub fn clustering_view(c: &Clustering) -> ScheduleView {
    ScheduleView::single_batch(
        c.clusters.iter().map(|cl| cl.nodes.clone()).collect(),
        ExecPolicy::InOrder,
    )
}

/// View of a hyperclustering under the policy the runtime will use.
pub fn hyper_view(hc: &HyperClustering) -> ScheduleView {
    ScheduleView {
        batch: hc.batch.max(1),
        workers: hc
            .hyperclusters
            .iter()
            .map(|h| {
                h.iter()
                    .map(|op| Op {
                        batch: op.batch,
                        node: op.node,
                    })
                    .collect()
            })
            .collect(),
        policy: if hc.switched && hc.batch > 1 {
            ExecPolicy::FirstReady
        } else {
            ExecPolicy::InOrder
        },
    }
}

/// View of a work-stealing run over `graph` at `batch`: one first-ready
/// worker holding every (batch, node) op. Work stealing schedules nothing
/// statically — any ready task may run on any worker in any steal order —
/// so this is deliberately an *estimate-only* view: the memory estimator's
/// first-ready path degrades to the resident-sum bound (sound for every
/// interleaving, `exact == false`), and the channel/happens-before lints
/// see no cross-worker edges to lint, because the executor has none.
pub fn stealing_view(graph: &Graph, batch: usize) -> ScheduleView {
    let batch = batch.max(1);
    ScheduleView {
        batch,
        workers: vec![(0..batch)
            .flat_map(|b| (0..graph.nodes.len()).map(move |n| Op { batch: b, node: n }))
            .collect()],
        policy: ExecPolicy::FirstReady,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::{hypercluster, switched_hypercluster};
    use crate::types::Cluster;

    fn clustering() -> Clustering {
        Clustering::new(vec![Cluster::new(vec![0, 1, 2]), Cluster::new(vec![3])])
    }

    #[test]
    fn clustering_view_is_in_order_batch1() {
        let v = clustering_view(&clustering());
        assert_eq!(v.batch, 1);
        assert_eq!(v.policy, ExecPolicy::InOrder);
        assert_eq!(v.workers[0].len(), 3);
        assert_eq!(v.workers[1][0], Op { batch: 0, node: 3 });
    }

    #[test]
    fn hyper_views_pick_the_runtime_policy() {
        let c = clustering();
        let plain = hyper_view(&hypercluster(&c, 4));
        assert_eq!(plain.policy, ExecPolicy::InOrder);
        assert_eq!(plain.batch, 4);
        assert_eq!(plain.num_ops(), 16);
        let switched = hyper_view(&switched_hypercluster(&c, 4));
        assert_eq!(switched.policy, ExecPolicy::FirstReady);
        // switched with batch 1 degenerates to the plain clustering
        let s1 = hyper_view(&switched_hypercluster(&c, 1));
        assert_eq!(s1.policy, ExecPolicy::InOrder);
    }
}
