//! Algorithm 1: Recursive Critical-Path-based Linear Clustering.
//!
//! Repeatedly peels the current critical path off the graph:
//!
//! 1. among ready nodes (in-degree 0 in the remainder graph) pick the one
//!    with the largest `distance_to_end`;
//! 2. extend the path by always stepping to the remaining successor with the
//!    largest `distance_to_end`;
//! 3. while stepping, delete the other outgoing edges of the current node
//!    and all incoming edges of the chosen successor, so the remainder graph
//!    only connects still-unclustered nodes;
//! 4. the peeled path becomes a cluster; iterate until no nodes remain.
//!
//! Every cluster is a *linear* path of the original graph, and the clusters
//! partition the node set (the properties the proptest suite pins down).

use crate::types::{Cluster, Clustering};
use ramiel_ir::{Graph, NodeId};

/// Run Linear Clustering. `dist` is the distance-to-end table from
/// [`crate::distance::distance_to_end`].
pub fn linear_clustering(graph: &Graph, dist: &[u64]) -> Clustering {
    let n = graph.num_nodes();
    assert_eq!(dist.len(), n, "distance table size mismatch");
    let adj = graph.adjacency();
    // Mutable remainder-graph adjacency. Vec<bool> edge presence keyed by
    // (u, index into adj.succs[u]) keeps this O(V+E) overall.
    let mut out_alive: Vec<Vec<bool>> = adj.succs.iter().map(|s| vec![true; s.len()]).collect();
    let mut indegree: Vec<usize> = adj.preds.iter().map(|p| p.len()).collect();
    let mut clustered = vec![false; n];
    let mut remaining = n;
    let mut clusters = Vec::new();

    // Position of u in adj.preds[v], to decrement indegree when edges die.
    let pred_index = |u: NodeId, v: NodeId| -> usize {
        adj.preds[v]
            .iter()
            .position(|&p| p == u)
            .expect("edge bookkeeping out of sync")
    };
    let _ = pred_index; // (kept for clarity; indegree is tracked directly)

    while remaining > 0 {
        // readyL ← unclustered nodes with no incoming live edges.
        let c_node = (0..n)
            .filter(|&i| !clustered[i] && indegree[i] == 0)
            .max_by_key(|&i| (dist[i], std::cmp::Reverse(i)))
            .expect("acyclic remainder graph must have a ready node");

        let mut cluster = vec![c_node];
        clustered[c_node] = true;
        remaining -= 1;
        let mut cur = c_node;

        loop {
            // Remaining successors of cur.
            let next = adj.succs[cur]
                .iter()
                .enumerate()
                .filter(|(ei, &v)| out_alive[cur][*ei] && !clustered[v])
                .map(|(_, &v)| v)
                .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)));
            let Some(s_node) = next else { break };

            // Remove all outgoing edges of cur (including the chosen one —
            // it is now internal to the cluster).
            for (ei, &v) in adj.succs[cur].iter().enumerate() {
                if out_alive[cur][ei] {
                    out_alive[cur][ei] = false;
                    indegree[v] -= 1;
                }
            }
            // Remove all incoming edges of s_node from the remainder graph.
            for &p in &adj.preds[s_node] {
                if let Some(ei) = adj.succs[p].iter().position(|&v| v == s_node) {
                    if out_alive[p][ei] {
                        out_alive[p][ei] = false;
                        indegree[s_node] -= 1;
                    }
                }
            }
            cluster.push(s_node);
            clustered[s_node] = true;
            remaining -= 1;
            cur = s_node;
        }

        // Drop any leftover outgoing edges of the path's tail so downstream
        // nodes become ready.
        for (ei, &v) in adj.succs[cur].iter().enumerate() {
            if out_alive[cur][ei] {
                out_alive[cur][ei] = false;
                indegree[v] -= 1;
            }
        }

        clusters.push(Cluster::new(cluster));
    }

    Clustering::new(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StaticCost;
    use crate::distance::distance_to_end;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn cluster(g: &Graph) -> Clustering {
        let dist = distance_to_end(g, &StaticCost);
        linear_clustering(g, &dist)
    }

    #[test]
    fn chain_is_one_cluster() {
        let mut b = GraphBuilder::new("chain");
        let mut t = b.input("x", DType::F32, vec![4]);
        for i in 0..6 {
            t = b.op(&format!("r{i}"), OpKind::Relu, vec![t]);
        }
        b.output(&t);
        let g = b.finish().unwrap();
        let c = cluster(&g);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.clusters[0].nodes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn diamond_peels_heavy_path_first() {
        let mut b = GraphBuilder::new("d");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let a = b.op("a", OpKind::Relu, vec![x]); // 0
        let light = b.op("light", OpKind::Relu, vec![a.clone()]); // 1
        let heavy = b.conv(&a, 4, 4, (3, 3), (1, 1), (1, 1), 1); // 2
        let j = b.op("j", OpKind::Add, vec![light, heavy]); // 3
        b.output(&j);
        let g = b.finish().unwrap();
        let c = cluster(&g);
        assert_eq!(c.num_clusters(), 2);
        // critical path a → conv → join
        assert_eq!(c.clusters[0].nodes, vec![0, 2, 3]);
        assert_eq!(c.clusters[1].nodes, vec![1]);
        c.check_partition(&g).unwrap();
        c.check_internal_order(&g).unwrap();
    }

    #[test]
    fn two_independent_chains_become_two_clusters() {
        let mut b = GraphBuilder::new("two");
        let x = b.input("x", DType::F32, vec![4]);
        let y = b.input("y", DType::F32, vec![4]);
        let mut t1 = x;
        let mut t2 = y;
        for i in 0..3 {
            t1 = b.op(&format!("a{i}"), OpKind::Relu, vec![t1]);
            t2 = b.op(&format!("b{i}"), OpKind::Sigmoid, vec![t2]);
        }
        b.output(&t1);
        b.output(&t2);
        let g = b.finish().unwrap();
        let c = cluster(&g);
        assert_eq!(c.num_clusters(), 2);
        c.check_partition(&g).unwrap();
    }

    #[test]
    fn clusters_are_linear_paths_of_the_graph() {
        // fork-join with 3 branches of different lengths
        let mut b = GraphBuilder::new("fj");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        let mut outs = Vec::new();
        for n in 1..=3usize {
            let mut t = root.clone();
            for _ in 0..n {
                t = b.conv(&t, 4, 4, (3, 3), (1, 1), (1, 1), 1);
            }
            outs.push(t);
        }
        let j = b.op("join", OpKind::Concat { axis: 1 }, outs);
        b.output(&j);
        let g = b.finish().unwrap();
        let c = cluster(&g);
        c.check_partition(&g).unwrap();
        // every cluster must be a path: consecutive nodes connected by edges
        let adj = g.adjacency();
        for cl in &c.clusters {
            for w in cl.nodes.windows(2) {
                assert!(
                    adj.succs[w[0]].contains(&w[1]),
                    "cluster nodes {w:?} not an edge"
                );
            }
        }
    }
}
