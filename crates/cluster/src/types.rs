//! Clustering result types and their invariants.

use ramiel_ir::{Graph, NodeId};
use serde::Serialize;
use std::collections::HashMap;

/// One cluster: an ordered list of node ids executed sequentially on one
/// worker. Linear Clustering produces paths; merging produces unions of
/// paths kept in decreasing `distance_to_end` order (a valid topological
/// order, since distance strictly decreases along dependence edges).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Cluster {
    pub nodes: Vec<NodeId>,
}

impl Cluster {
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Cluster { nodes }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// First node — the one with the largest distance-to-end.
    pub fn entry(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node — the one with the smallest distance-to-end.
    pub fn exit(&self) -> NodeId {
        *self.nodes.last().expect("clusters are non-empty")
    }
}

/// A complete clustering: a partition of the graph's nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Clustering {
    pub clusters: Vec<Cluster>,
}

impl Clustering {
    pub fn new(clusters: Vec<Cluster>) -> Self {
        Clustering { clusters }
    }

    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// node id → cluster index.
    pub fn assignment(&self) -> HashMap<NodeId, usize> {
        let mut m = HashMap::new();
        for (ci, c) in self.clusters.iter().enumerate() {
            for &n in &c.nodes {
                m.insert(n, ci);
            }
        }
        m
    }

    /// Check the partition invariant: every node of `graph` appears in
    /// exactly one cluster. Returns an error message on violation.
    pub fn check_partition(&self, graph: &Graph) -> Result<(), String> {
        let mut seen = vec![false; graph.num_nodes()];
        for c in &self.clusters {
            if c.is_empty() {
                return Err("empty cluster".into());
            }
            for &n in &c.nodes {
                if n >= seen.len() {
                    return Err(format!("cluster references unknown node {n}"));
                }
                if seen[n] {
                    return Err(format!("node {n} appears in two clusters"));
                }
                seen[n] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("node {missing} missing from all clusters"));
        }
        Ok(())
    }

    /// Check that every cluster's node order respects the graph's dependence
    /// edges *within the cluster* (required for sequential replay).
    pub fn check_internal_order(&self, graph: &Graph) -> Result<(), String> {
        let adj = graph.adjacency();
        for (ci, c) in self.clusters.iter().enumerate() {
            let pos: HashMap<NodeId, usize> =
                c.nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for &u in &c.nodes {
                for &v in &adj.succs[u] {
                    if let (Some(&pu), Some(&pv)) = (pos.get(&u), pos.get(&v)) {
                        if pu >= pv {
                            return Err(format!(
                                "cluster {ci} orders node {v} before its producer {u}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Count of cross-cluster dependence edges (each becomes a message in
    /// the generated parallel code).
    pub fn cross_cluster_edges(&self, graph: &Graph) -> usize {
        let assign = self.assignment();
        graph
            .edges()
            .iter()
            .filter(|(u, v, _)| assign.get(u) != assign.get(v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Relu, vec![a.clone()]);
        let q = b.op("q", OpKind::Relu, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        b.finish().unwrap()
    }

    #[test]
    fn partition_check_accepts_valid() {
        let g = diamond();
        let c = Clustering::new(vec![Cluster::new(vec![0, 1, 3]), Cluster::new(vec![2])]);
        c.check_partition(&g).unwrap();
        c.check_internal_order(&g).unwrap();
        assert_eq!(c.cross_cluster_edges(&g), 2); // a→q and q→j
    }

    #[test]
    fn partition_check_rejects_duplicates_and_missing() {
        let g = diamond();
        let dup = Clustering::new(vec![Cluster::new(vec![0, 1, 3]), Cluster::new(vec![1, 2])]);
        assert!(dup.check_partition(&g).is_err());
        let missing = Clustering::new(vec![Cluster::new(vec![0, 1, 3])]);
        assert!(missing.check_partition(&g).is_err());
    }

    #[test]
    fn internal_order_check_rejects_reversed_deps() {
        let g = diamond();
        let bad = Clustering::new(vec![
            Cluster::new(vec![1, 0, 3]), // p before its producer a
            Cluster::new(vec![2]),
        ]);
        assert!(bad.check_internal_order(&g).is_err());
    }

    #[test]
    fn assignment_maps_every_node() {
        let c = Clustering::new(vec![Cluster::new(vec![0, 2]), Cluster::new(vec![1])]);
        let a = c.assignment();
        assert_eq!(a[&0], 0);
        assert_eq!(a[&1], 1);
        assert_eq!(a[&2], 0);
    }
}
