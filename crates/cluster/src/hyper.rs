//! Hyperclustering (Section III-E): batch-size > 1 schedules that fill
//! cross-cluster communication slack with work from other in-flight samples,
//! the way hyperthreading fills pipeline stalls.
//!
//! - **Plain hyperclustering** (Fig. 8): hypercluster `HYC_i` carries
//!   cluster `i`'s operations for *every* batch element, interleaved
//!   round-robin at operation granularity — while sample 0 waits on a
//!   message, sample 1's operations keep the worker busy.
//! - **Switched hyperclustering** (Fig. 9): `SHYC_i` takes batch `b`'s
//!   operations from cluster `(i + b) mod k` instead of always cluster `i`,
//!   rotating heavy and light clusters across workers so total work per
//!   hypercluster evens out.

use crate::types::Clustering;
use ramiel_ir::NodeId;
use serde::Serialize;

/// One schedule entry: execute `node` for batch element `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HyperOp {
    pub batch: usize,
    pub node: NodeId,
}

/// A batch-aware clustering: each hypercluster is an ordered op list over
/// (batch, node) pairs, executed sequentially on one worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HyperClustering {
    pub batch: usize,
    pub hyperclusters: Vec<Vec<HyperOp>>,
    /// True if built by the switched variant.
    pub switched: bool,
}

impl HyperClustering {
    pub fn num_hyperclusters(&self) -> usize {
        self.hyperclusters.len()
    }

    /// Total weighted cost per hypercluster under a node-cost table.
    pub fn costs(&self, node_cost: &[u64]) -> Vec<u64> {
        self.hyperclusters
            .iter()
            .map(|h| h.iter().map(|op| node_cost[op.node]).sum())
            .collect()
    }

    /// Load imbalance: max hypercluster cost / mean hypercluster cost
    /// (1.0 = perfectly balanced).
    pub fn load_imbalance(&self, node_cost: &[u64]) -> f64 {
        let costs = self.costs(node_cost);
        let max = *costs.iter().max().unwrap_or(&0) as f64;
        let mean = costs.iter().sum::<u64>() as f64 / costs.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Check that every (batch, node) pair appears exactly once across all
    /// hyperclusters, for `num_nodes` graph nodes.
    pub fn check_coverage(&self, num_nodes: usize) -> Result<(), String> {
        let mut seen = vec![false; num_nodes * self.batch];
        for h in &self.hyperclusters {
            for op in h {
                if op.node >= num_nodes || op.batch >= self.batch {
                    return Err(format!("op out of range: {op:?}"));
                }
                let key = op.batch * num_nodes + op.node;
                if seen[key] {
                    return Err(format!("duplicate op {op:?}"));
                }
                seen[key] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "missing op: batch {} node {}",
                missing / num_nodes,
                missing % num_nodes
            ));
        }
        Ok(())
    }
}

/// Interleave one cluster's node list across `batch` samples, round-robin at
/// op granularity: `(b0,n0), (b1,n0), …, (b0,n1), (b1,n1), …`.
fn interleave(nodes: &[NodeId], batch: usize) -> Vec<HyperOp> {
    let mut out = Vec::with_capacity(nodes.len() * batch);
    for &node in nodes {
        for b in 0..batch {
            out.push(HyperOp { batch: b, node });
        }
    }
    out
}

/// Plain hyperclustering (Fig. 8): `HYC_i` = cluster `i` replicated over all
/// batch elements, interleaved.
pub fn hypercluster(clustering: &Clustering, batch: usize) -> HyperClustering {
    assert!(batch >= 1, "batch size must be >= 1");
    HyperClustering {
        batch,
        hyperclusters: clustering
            .clusters
            .iter()
            .map(|c| interleave(&c.nodes, batch))
            .collect(),
        switched: false,
    }
}

/// Switched hyperclustering (Fig. 9): `SHYC_i` takes batch `b`'s copy of
/// cluster `(i + b) mod k`. Within the hypercluster, ops are ordered by
/// position-in-cluster first so the samples stay interleaved.
pub fn switched_hypercluster(clustering: &Clustering, batch: usize) -> HyperClustering {
    assert!(batch >= 1, "batch size must be >= 1");
    let k = clustering.clusters.len().max(1);
    let longest = clustering
        .clusters
        .iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(0);
    let mut hyperclusters = Vec::with_capacity(k);
    for i in 0..clustering.clusters.len() {
        let mut ops = Vec::new();
        // Interleave by op position so each sample makes forward progress.
        for pos in 0..longest {
            for b in 0..batch {
                let source = &clustering.clusters[(i + b) % k];
                if let Some(&node) = source.nodes.get(pos) {
                    ops.push(HyperOp { batch: b, node });
                }
            }
        }
        hyperclusters.push(ops);
    }
    HyperClustering {
        batch,
        hyperclusters,
        switched: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Cluster;

    fn two_clusters() -> Clustering {
        // cluster sizes 5 and 2 — the paper's SqueezeNet example shape
        Clustering::new(vec![
            Cluster::new(vec![0, 1, 2, 3, 4]),
            Cluster::new(vec![5, 6]),
        ])
    }

    #[test]
    fn plain_hypercluster_replicates_per_batch() {
        let hc = hypercluster(&two_clusters(), 2);
        assert_eq!(hc.num_hyperclusters(), 2);
        assert_eq!(hc.hyperclusters[0].len(), 10);
        assert_eq!(hc.hyperclusters[1].len(), 4);
        hc.check_coverage(7).unwrap();
        // interleaved: same node for both batches adjacently
        assert_eq!(hc.hyperclusters[0][0], HyperOp { batch: 0, node: 0 });
        assert_eq!(hc.hyperclusters[0][1], HyperOp { batch: 1, node: 0 });
    }

    #[test]
    fn switched_hypercluster_balances_load() {
        let c = two_clusters();
        let node_cost = vec![1u64; 7];
        let plain = hypercluster(&c, 2);
        let switched = switched_hypercluster(&c, 2);
        switched.check_coverage(7).unwrap();
        // plain: costs [10, 4] → imbalance 10/7; switched: [7, 7] → 1.0
        assert!(switched.load_imbalance(&node_cost) < plain.load_imbalance(&node_cost));
        assert_eq!(switched.costs(&node_cost), vec![7, 7]);
    }

    #[test]
    fn switched_with_batch_equal_one_is_the_original_clustering() {
        let c = two_clusters();
        let s = switched_hypercluster(&c, 1);
        let nodes0: Vec<usize> = s.hyperclusters[0].iter().map(|o| o.node).collect();
        assert_eq!(nodes0, vec![0, 1, 2, 3, 4]);
        s.check_coverage(7).unwrap();
    }

    #[test]
    fn coverage_detects_missing_and_duplicate() {
        let mut hc = hypercluster(&two_clusters(), 2);
        let dropped = hc.hyperclusters[1].pop().unwrap();
        assert!(hc.check_coverage(7).is_err());
        hc.hyperclusters[1].push(dropped);
        hc.hyperclusters[1].push(dropped);
        assert!(hc.check_coverage(7).is_err());
    }

    #[test]
    fn larger_batches_cover_all_samples() {
        let c = two_clusters();
        for batch in [2, 4, 8, 12] {
            hypercluster(&c, batch).check_coverage(7).unwrap();
            switched_hypercluster(&c, batch).check_coverage(7).unwrap();
        }
    }

    #[test]
    fn three_cluster_rotation() {
        let c = Clustering::new(vec![
            Cluster::new(vec![0, 1]),
            Cluster::new(vec![2]),
            Cluster::new(vec![3, 4, 5]),
        ]);
        let s = switched_hypercluster(&c, 3);
        s.check_coverage(6).unwrap();
        // every hypercluster draws one sample from each cluster ⇒ equal cost
        let costs = s.costs(&[1; 6]);
        assert_eq!(costs, vec![6, 6, 6]);
    }
}
