//! Baseline clustering strategies, used by the ablation benches to quantify
//! what the critical-path structure of Linear Clustering actually buys over
//! naive partitions.
//!
//! All baselines produce valid [`Clustering`]s (partition + internally
//! topologically ordered), so they run on the same executor and simulator.

use crate::types::{Cluster, Clustering};
use ramiel_ir::topo::{levels, topo_sort};
use ramiel_ir::Graph;

/// Everything in one cluster — the sequential schedule.
pub fn single_cluster(graph: &Graph) -> Clustering {
    let order = topo_sort(graph).expect("acyclic graph required");
    Clustering::new(vec![Cluster::new(order)])
}

/// Topological-order round-robin over `k` workers: node `i` of the topo
/// order goes to worker `i mod k`. Maximally communication-oblivious.
pub fn round_robin(graph: &Graph, k: usize) -> Clustering {
    let k = k.max(1);
    let order = topo_sort(graph).expect("acyclic graph required");
    let lanes = k.min(order.len().max(1));
    let mut clusters = vec![Vec::new(); lanes];
    for (i, n) in order.into_iter().enumerate() {
        clusters[i % lanes].push(n);
    }
    Clustering::new(
        clusters
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(Cluster::new)
            .collect(),
    )
}

/// Level-based (wavefront) clustering: nodes are assigned to `k` workers
/// round-robin *within each ASAP level*, the way stage schedulers split
/// independent work. Respects dependences by construction (levels ascend).
pub fn level_clustering(graph: &Graph, k: usize) -> Clustering {
    let k = k.max(1);
    let lvl = levels(graph).expect("acyclic graph required");
    let max_level = lvl.iter().copied().max().unwrap_or(0);
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (n, &l) in lvl.iter().enumerate() {
        by_level[l].push(n);
    }
    let mut clusters = vec![Vec::new(); k];
    for level in by_level {
        for (i, n) in level.into_iter().enumerate() {
            clusters[i % k].push(n);
        }
    }
    Clustering::new(
        clusters
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(Cluster::new)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn fork(branches: usize) -> Graph {
        let mut b = GraphBuilder::new("f");
        let x = b.input("x", DType::F32, vec![4]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        let outs: Vec<String> = (0..branches)
            .map(|_| b.op("br", OpKind::Sigmoid, vec![root.clone()]))
            .collect();
        let mut acc = outs[0].clone();
        for o in &outs[1..] {
            acc = b.op("j", OpKind::Add, vec![acc, o.clone()]);
        }
        b.output(&acc);
        b.finish().unwrap()
    }

    #[test]
    fn all_baselines_are_valid_partitions() {
        let g = fork(5);
        for c in [
            single_cluster(&g),
            round_robin(&g, 3),
            level_clustering(&g, 3),
        ] {
            c.check_partition(&g).unwrap();
            c.check_internal_order(&g).unwrap();
        }
    }

    #[test]
    fn single_cluster_has_no_messages() {
        let g = fork(4);
        let c = single_cluster(&g);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.cross_cluster_edges(&g), 0);
    }

    #[test]
    fn round_robin_spreads_nodes_evenly() {
        let g = fork(6);
        let c = round_robin(&g, 4);
        let sizes: Vec<usize> = c.clusters.iter().map(Cluster::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn round_robin_creates_many_more_messages_than_lc() {
        let g = fork(6);
        let lc = crate::cluster_graph(&g, &crate::StaticCost);
        let rr = round_robin(&g, lc.num_clusters().max(2));
        assert!(
            rr.cross_cluster_edges(&g) > lc.cross_cluster_edges(&g),
            "rr {} vs lc {}",
            rr.cross_cluster_edges(&g),
            lc.cross_cluster_edges(&g)
        );
    }

    #[test]
    fn level_clustering_respects_worker_bound() {
        let g = fork(9);
        let c = level_clustering(&g, 3);
        assert!(c.num_clusters() <= 3);
        c.check_partition(&g).unwrap();
    }
}
