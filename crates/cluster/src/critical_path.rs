//! Critical path extraction and the paper's *potential parallelism* factor.
//!
//! `Parallelism = Wt.Cost of Nodes / Wt.Cost of Critical Path` (Section
//! III-A). The critical-path cost includes one edge cost per traversed edge,
//! which is why graphs with long dependency chains (SqueezeNet) can come out
//! below 1×.

use crate::cost::CostModel;
use crate::distance::distance_to_end;
use ramiel_ir::{Graph, NodeId};
use serde::Serialize;

/// Extract one critical path (node ids, source → sink) and its weighted cost.
pub fn critical_path(graph: &Graph, cost: &dyn CostModel) -> (Vec<NodeId>, u64) {
    let dist = distance_to_end(graph, cost);
    critical_path_from_distances(graph, cost, &dist)
}

/// Critical path given precomputed distances (avoids recomputing them).
pub fn critical_path_from_distances(
    graph: &Graph,
    cost: &dyn CostModel,
    dist: &[u64],
) -> (Vec<NodeId>, u64) {
    if graph.num_nodes() == 0 {
        return (Vec::new(), 0);
    }
    let adj = graph.adjacency();
    // Start at the source-like node with the largest distance. (Non-source
    // nodes never have a larger distance than their ancestors.)
    let mut cur = (0..graph.num_nodes())
        .max_by_key(|&i| (dist[i], std::cmp::Reverse(i)))
        .expect("non-empty graph");
    let mut path = vec![cur];
    loop {
        let next = adj.succs[cur]
            .iter()
            .copied()
            .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)));
        match next {
            Some(v)
                if dist[cur]
                    == cost.node_cost(graph, &graph.nodes[cur]) + cost.edge_cost() + dist[v] =>
            {
                path.push(v);
                cur = v;
            }
            _ => break,
        }
    }
    let total = dist[path[0]];
    (path, total)
}

/// The Table I row for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelismReport {
    pub model: String,
    pub num_nodes: usize,
    pub num_edges: usize,
    /// `Wt.Cost of Nodes`.
    pub total_node_cost: u64,
    /// `Wt.Cost of Critical Path` (node costs + 1 per edge).
    pub critical_path_cost: u64,
    /// `total_node_cost / critical_path_cost`.
    pub parallelism: f64,
}

/// Compute the paper's Table I metrics for a graph.
pub fn parallelism_report(graph: &Graph, cost: &dyn CostModel) -> ParallelismReport {
    let total = cost.total_cost(graph);
    let (_, cp) = critical_path(graph, cost);
    ParallelismReport {
        model: graph.name.clone(),
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        total_node_cost: total,
        critical_path_cost: cp,
        parallelism: total as f64 / cp.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StaticCost;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    #[test]
    fn pure_chain_parallelism_below_one() {
        // A chain's CP includes edge costs, so parallelism < 1 (the paper's
        // SqueezeNet effect).
        let mut b = GraphBuilder::new("chain");
        let mut t = b.input("x", DType::F32, vec![4]);
        for i in 0..5 {
            t = b.op(&format!("r{i}"), OpKind::Relu, vec![t]);
        }
        b.output(&t);
        let g = b.finish().unwrap();
        let rep = parallelism_report(&g, &StaticCost);
        assert_eq!(rep.total_node_cost, 5);
        assert_eq!(rep.critical_path_cost, 9); // 5 nodes + 4 edges
        assert!(rep.parallelism < 1.0);
    }

    #[test]
    fn wide_fork_parallelism_above_one() {
        // 4 parallel heavy branches from one root.
        let mut b = GraphBuilder::new("fork");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        let mut branches = Vec::new();
        for _ in 0..4 {
            let c = b.conv(&root, 4, 4, (3, 3), (1, 1), (1, 1), 1);
            branches.push(c);
        }
        let join = b.op("join", OpKind::Concat { axis: 1 }, branches);
        b.output(&join);
        let g = b.finish().unwrap();
        let rep = parallelism_report(&g, &StaticCost);
        // total = 1 + 4·8 + 1 = 34 ; CP = 1 +1+ 8 +1+ 1 = 12
        assert_eq!(rep.total_node_cost, 34);
        assert_eq!(rep.critical_path_cost, 12);
        assert!(rep.parallelism > 2.0);
    }

    #[test]
    fn critical_path_follows_heaviest_branch() {
        let mut b = GraphBuilder::new("fork");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        let light = b.op("light", OpKind::Relu, vec![root.clone()]);
        let heavy = b.conv(&root, 4, 4, (5, 5), (1, 1), (2, 2), 1);
        let join = b.op("join", OpKind::Add, vec![light, heavy]);
        b.output(&join);
        let g = b.finish().unwrap();
        let (path, total) = critical_path(&g, &StaticCost);
        // root(0) → conv(2) → join(3)
        assert_eq!(path, vec![0, 2, 3]);
        assert_eq!(total, 1 + 1 + 14 + 1 + 1);
    }

    #[test]
    fn empty_graph_cp_is_zero() {
        let g = Graph::new("empty");
        let (path, cost) = critical_path(&g, &StaticCost);
        assert!(path.is_empty());
        assert_eq!(cost, 0);
    }
}
