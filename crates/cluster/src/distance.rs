//! The paper's *Distance pass*: weighted distance of every node to the end
//! of the graph.
//!
//! `distance_to_end(n)` is the cost of the most expensive path from `n` to
//! any sink, counting node costs plus one `edge_cost` per traversed edge
//! (the paper's tensor-dependence overhead). It is the key potential
//! function: it strictly decreases along every dependence edge, which is
//! what lets merged clusters be replayed in distance order (see
//! [`crate::merge`]).

use crate::cost::CostModel;
use ramiel_ir::topo::topo_sort;
use ramiel_ir::Graph;

/// Distance from each node to the end of the graph (indexed by node id).
pub fn distance_to_end(graph: &Graph, cost: &dyn CostModel) -> Vec<u64> {
    let adj = graph.adjacency();
    let order = topo_sort(graph).expect("distance pass requires an acyclic graph");
    let mut dist = vec![0u64; graph.num_nodes()];
    for &u in order.iter().rev() {
        let own = cost.node_cost(graph, &graph.nodes[u]);
        let best_succ = adj.succs[u]
            .iter()
            .map(|&v| dist[v] + cost.edge_cost())
            .max()
            .unwrap_or(0);
        dist[u] = own + best_succ;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StaticCost;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    #[test]
    fn chain_distances_accumulate_with_edge_costs() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("b", OpKind::Relu, vec![a]);
        let d = b.op("c", OpKind::Relu, vec![c]);
        b.output(&d);
        let g = b.finish().unwrap();
        let dist = distance_to_end(&g, &StaticCost);
        // sink: 1; middle: 1 + 1(edge) + 1; head: 1 + 1 + 3
        assert_eq!(dist, vec![5, 3, 1]);
    }

    #[test]
    fn fork_takes_the_heavier_branch() {
        let mut b = GraphBuilder::new("fork");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let root = b.op("root", OpKind::Relu, vec![x]);
        // light branch: relu ; heavy branch: 3x3 conv (cost 8)
        let light = b.op("light", OpKind::Relu, vec![root.clone()]);
        let heavy = b.conv(&root, 4, 4, (3, 3), (1, 1), (1, 1), 1);
        let join = b.op("join", OpKind::Add, vec![light, heavy]);
        b.output(&join);
        let g = b.finish().unwrap();
        let dist = distance_to_end(&g, &StaticCost);
        let root_id = 0;
        let light_id = 1;
        let heavy_id = 2;
        let join_id = 3;
        assert_eq!(dist[join_id], 1);
        assert_eq!(dist[light_id], 1 + 1 + 1);
        assert_eq!(dist[heavy_id], 8 + 1 + 1);
        // root goes through the conv branch
        assert_eq!(dist[root_id], 1 + 1 + dist[heavy_id]);
    }

    #[test]
    fn distance_strictly_decreases_along_edges() {
        let mut b = GraphBuilder::new("mix");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let c1 = b.conv_relu(&x, 3, 4, 3, 1, 1);
        let c2 = b.conv_relu(&c1, 4, 4, 1, 1, 0);
        let cat = b.op("cat", OpKind::Concat { axis: 1 }, vec![c1.clone(), c2]);
        b.output(&cat);
        let g = b.finish().unwrap();
        let dist = distance_to_end(&g, &StaticCost);
        let adj = g.adjacency();
        for u in 0..g.num_nodes() {
            for &v in &adj.succs[u] {
                assert!(dist[u] > dist[v], "distance must decrease along {u}->{v}");
            }
        }
    }
}
