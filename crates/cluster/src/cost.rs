//! Operator cost models.
//!
//! The paper prices nodes with *static weights*: "heavy DL operations like
//! Conv, Matmul etc. having higher cost than simpler ones. Also a Conv using
//! a bigger kernel of size 7×7 or 5×5 is assigned a higher cost compared to
//! those of size 3×3 or 1×1. Elementwise operations like Relu are assigned a
//! cost of 1." Each graph edge additionally costs 1 when computing the
//! critical path, modelling tensor-dependence overhead.
//!
//! [`StaticCost`] reproduces that scheme. [`FlopCost`] is a shape-aware
//! refinement (FLOPs scaled to the same unit system) used by the discrete-
//! event simulator and the ablation benches; it needs `value_info` to be
//! populated by shape inference.

use ramiel_ir::{Graph, Node, OpKind};
use std::collections::HashMap;

/// Prices a node and an edge. Costs are `u64` "work units".
pub trait CostModel: Sync {
    /// Weighted cost of executing `node` within `graph`.
    fn node_cost(&self, graph: &Graph, node: &Node) -> u64;

    /// Cost added per dependence edge on the critical path (the paper uses 1).
    ///
    /// This prices *scheduling* overhead — enqueueing, waking the consumer,
    /// cache effects of the handoff — not byte transfer: the runtime's
    /// channel sends move Arc-shared buffers (a header copy, independent of
    /// tensor size), so a size-proportional edge cost would model a
    /// serializing transport this runtime doesn't have.
    fn edge_cost(&self) -> u64 {
        1
    }

    /// Total weighted cost of all nodes (the paper's `Wt.Cost of Nodes`).
    fn total_cost(&self, graph: &Graph) -> u64 {
        graph.nodes.iter().map(|n| self.node_cost(graph, n)).sum()
    }
}

/// The paper's static per-operator weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticCost;

impl CostModel for StaticCost {
    fn node_cost(&self, _graph: &Graph, node: &Node) -> u64 {
        match &node.op {
            OpKind::Conv { kernel, .. } => match kernel.0.max(kernel.1) {
                0..=1 => 4,
                2..=3 => 8,
                4..=5 => 14,
                _ => 24,
            },
            // Transformer-scale matrix products dominate everything else in
            // the graphs that carry them (BERT's per-node cost in the
            // paper's Table I averages ≈22 units).
            OpKind::MatMul | OpKind::Gemm { .. } => 40,
            OpKind::MaxPool(_) | OpKind::AveragePool(_) | OpKind::GlobalAveragePool => 2,
            OpKind::BatchNorm { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::Softmax { .. }
            | OpKind::ReduceMean { .. } => 2,
            OpKind::Resize { .. } => 2,
            op if op.is_elementwise() => 1,
            op if op.is_shape_op() => 1,
            _ => 1,
        }
    }
}

/// Shape-aware FLOP-derived cost (1 unit ≈ 250k FLOPs, floor 1), used by the
/// schedule simulator so that simulated makespans track real kernel times.
#[derive(Debug, Clone, Copy)]
pub struct FlopCost {
    /// FLOPs per cost unit.
    pub flops_per_unit: f64,
}

impl Default for FlopCost {
    fn default() -> Self {
        FlopCost {
            flops_per_unit: 250_000.0,
        }
    }
}

impl FlopCost {
    /// Approximate FLOPs of a node (0 for pure data movement).
    pub fn flops(&self, graph: &Graph, node: &Node) -> f64 {
        let out_numel = |i: usize| -> f64 {
            node.outputs
                .get(i)
                .and_then(|t| graph.value_info.get(t))
                .map(|v| v.numel() as f64)
                .unwrap_or(0.0)
        };
        let in_numel = |i: usize| -> f64 {
            node.inputs
                .get(i)
                .and_then(|t| graph.tensor_info(t))
                .map(|v| v.numel() as f64)
                .unwrap_or(0.0)
        };
        match &node.op {
            OpKind::Conv { kernel, groups, .. } => {
                // 2 · out_elems · (C/g) · kh · kw
                let cin = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.get(1).copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * (cin / *groups as f64) * (kernel.0 * kernel.1) as f64
            }
            OpKind::MatMul => {
                // 2 · out_elems · k
                let k = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.last().copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * k
            }
            OpKind::Gemm { .. } => {
                let k = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.last().copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * k
            }
            OpKind::MaxPool(p) | OpKind::AveragePool(p) => {
                out_numel(0) * (p.kernel.0 * p.kernel.1) as f64
            }
            OpKind::GlobalAveragePool => in_numel(0),
            OpKind::BatchNorm { .. } => 2.0 * in_numel(0),
            OpKind::LayerNorm { .. } => 8.0 * in_numel(0),
            OpKind::Softmax { .. } => 5.0 * in_numel(0),
            OpKind::ReduceMean { .. } => in_numel(0),
            op if op.is_elementwise() => in_numel(0),
            op if op.is_shape_op() => in_numel(0) * 0.25, // copy traffic
            _ => in_numel(0),
        }
    }
}

impl CostModel for FlopCost {
    fn node_cost(&self, graph: &Graph, node: &Node) -> u64 {
        (self.flops(graph, node) / self.flops_per_unit)
            .ceil()
            .max(1.0) as u64
    }
}

/// Profile-guided cost model: prices nodes by *measured* execution time
/// instead of static weights or FLOP estimates, closing the paper's Fig. 10
/// loop (run → Profile DB → recluster). Built from per-node nanosecond
/// samples (see `ProfileDb::measured_cost` in ramiel-runtime); nodes the
/// profile never executed fall back to the mean of their op kind, then to
/// [`StaticCost`].
///
/// Nanoseconds are rescaled so the median sampled node costs ~8 units —
/// the same magnitude [`StaticCost`] gives a 3×3 conv — keeping edge costs
/// and merge thresholds meaningful without retuning.
#[derive(Debug, Clone)]
pub struct MeasuredCost {
    /// Cost units per node id; `None` where the profile has no sample.
    per_node: Vec<Option<u64>>,
    /// Mean cost units per op kind, for unsampled nodes.
    per_kind: HashMap<String, u64>,
    /// Nanoseconds represented by one cost unit.
    ns_per_unit: u64,
    /// Kernel backend the samples were measured under (`"scalar"`,
    /// `"simd"`, `"quant-i8"`), as a plain label so this crate stays free
    /// of a tensor dependency. Per-node times shift by different ratios
    /// across backends (SIMD accelerates Gemm-heavy nodes far more than
    /// elementwise ones), so a clustering tuned from one backend's profile
    /// is stale for another; carrying the label makes the mismatch
    /// detectable instead of silent.
    backend: Option<String>,
    fallback: StaticCost,
}

/// Median sampled node is pinned to this many units (≈ StaticCost's 3×3
/// conv), fixing the ns→unit exchange rate.
const MEASURED_MEDIAN_UNITS: u64 = 8;

impl MeasuredCost {
    /// Build from `(node id, mean busy nanoseconds)` samples over `graph`.
    pub fn from_node_ns(graph: &Graph, samples: &[(usize, u64)]) -> MeasuredCost {
        let mut ns_sorted: Vec<u64> = samples.iter().map(|&(_, ns)| ns).collect();
        ns_sorted.sort_unstable();
        let median_ns = ns_sorted.get(ns_sorted.len() / 2).copied().unwrap_or(0);
        let ns_per_unit = (median_ns / MEASURED_MEDIAN_UNITS).max(1);

        let to_units = |ns: u64| -> u64 { (ns / ns_per_unit).max(1) };
        let mut per_node: Vec<Option<u64>> = vec![None; graph.num_nodes()];
        let mut kind_sum: HashMap<String, (u64, u64)> = HashMap::new();
        for &(node, ns) in samples {
            if let Some(n) = graph.nodes.get(node) {
                per_node[node] = Some(to_units(ns));
                let e = kind_sum.entry(n.op.name().to_string()).or_insert((0, 0));
                e.0 += ns;
                e.1 += 1;
            }
        }
        let per_kind = kind_sum
            .into_iter()
            .map(|(k, (sum, cnt))| (k, to_units(sum / cnt.max(1))))
            .collect();
        MeasuredCost {
            per_node,
            per_kind,
            ns_per_unit,
            backend: None,
            fallback: StaticCost,
        }
    }

    /// Label the samples with the kernel backend they were measured under.
    pub fn with_backend(mut self, name: impl Into<String>) -> MeasuredCost {
        self.backend = Some(name.into());
        self
    }

    /// Kernel backend the profile was measured under, if recorded.
    pub fn backend(&self) -> Option<&str> {
        self.backend.as_deref()
    }

    /// Nanoseconds represented by one cost unit.
    pub fn ns_per_unit(&self) -> u64 {
        self.ns_per_unit
    }

    /// How many nodes carry a direct measurement.
    pub fn sampled_nodes(&self) -> usize {
        self.per_node.iter().filter(|s| s.is_some()).count()
    }
}

impl CostModel for MeasuredCost {
    fn node_cost(&self, graph: &Graph, node: &Node) -> u64 {
        if let Some(Some(units)) = self.per_node.get(node.id) {
            return *units;
        }
        if let Some(units) = self.per_kind.get(node.op.name()) {
            return *units;
        }
        self.fallback.node_cost(graph, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("c");
        let x = b.input("x", DType::F32, vec![1, 3, 16, 16]);
        let c1 = b.conv(&x, 3, 8, (1, 1), (1, 1), (0, 0), 1);
        let c3 = b.conv(&c1, 8, 8, (3, 3), (1, 1), (1, 1), 1);
        let c5 = b.conv(&c3, 8, 8, (5, 5), (1, 1), (2, 2), 1);
        let c7 = b.conv(&c5, 8, 8, (7, 7), (1, 1), (3, 3), 1);
        let r = b.op("r", ramiel_ir::OpKind::Relu, vec![c7]);
        b.output(&r);
        b.finish().unwrap()
    }

    #[test]
    fn static_cost_ranks_kernels() {
        let g = conv_graph();
        let sc = StaticCost;
        let costs: Vec<u64> = g.nodes.iter().map(|n| sc.node_cost(&g, n)).collect();
        // conv1x1 < conv3x3 < conv5x5 < conv7x7, relu == 1
        assert_eq!(costs, vec![4, 8, 14, 24, 1]);
        assert_eq!(sc.total_cost(&g), 51);
        assert_eq!(sc.edge_cost(), 1);
    }

    #[test]
    fn flop_cost_monotone_in_kernel_size() {
        let g = conv_graph();
        let fc = FlopCost::default();
        let costs: Vec<u64> = g.nodes.iter().map(|n| fc.node_cost(&g, n)).collect();
        assert!(costs[1] > costs[0]);
        assert!(costs[2] > costs[1]);
        assert!(costs[3] > costs[2]);
        assert!(costs[4] >= 1); // elementwise floors at 1
    }

    #[test]
    fn measured_cost_prefers_samples_then_kind_then_static() {
        // nodes: [matmul, matmul, relu, softmax]; sample the first matmul
        // (expensive in this fiction) and the relu.
        let mut b = GraphBuilder::new("mm");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let m1 = b.op("m1", ramiel_ir::OpKind::MatMul, vec![x.clone(), x.clone()]);
        let m2 = b.op("m2", ramiel_ir::OpKind::MatMul, vec![m1, x]);
        let r = b.op("r", ramiel_ir::OpKind::Relu, vec![m2]);
        let s = b.op("s", ramiel_ir::OpKind::Softmax { axis: -1 }, vec![r]);
        b.output(&s);
        let g = b.finish().unwrap();
        let mc = MeasuredCost::from_node_ns(&g, &[(0, 8_000), (2, 1_000)]);
        assert_eq!(mc.ns_per_unit(), 1_000); // median 8000ns pinned to 8 units
        assert_eq!(mc.sampled_nodes(), 2);
        assert_eq!(mc.node_cost(&g, &g.nodes[0]), 8); // direct sample
        assert_eq!(mc.node_cost(&g, &g.nodes[2]), 1); // direct sample
                                                      // unsampled matmul falls back to the MatMul-kind mean (8000ns → 8)
        assert_eq!(mc.node_cost(&g, &g.nodes[1]), 8);
        // a kind the profile never saw falls back to StaticCost
        assert_eq!(mc.node_cost(&g, &g.nodes[3]), 2);
    }

    #[test]
    fn measured_cost_empty_profile_is_static() {
        let g = conv_graph();
        let mc = MeasuredCost::from_node_ns(&g, &[]);
        for n in &g.nodes {
            assert_eq!(mc.node_cost(&g, n), StaticCost.node_cost(&g, n));
        }
    }

    #[test]
    fn flop_cost_conv_formula() {
        let g = conv_graph();
        let fc = FlopCost::default();
        // node 1 is the 3x3 conv: out 1×8×16×16, cin 8, so 2·2048·8·9 FLOPs
        let flops = fc.flops(&g, &g.nodes[1]);
        assert_eq!(flops, 2.0 * 2048.0 * 8.0 * 9.0);
    }
}
