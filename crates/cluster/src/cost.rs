//! Operator cost models.
//!
//! The paper prices nodes with *static weights*: "heavy DL operations like
//! Conv, Matmul etc. having higher cost than simpler ones. Also a Conv using
//! a bigger kernel of size 7×7 or 5×5 is assigned a higher cost compared to
//! those of size 3×3 or 1×1. Elementwise operations like Relu are assigned a
//! cost of 1." Each graph edge additionally costs 1 when computing the
//! critical path, modelling tensor-dependence overhead.
//!
//! [`StaticCost`] reproduces that scheme. [`FlopCost`] is a shape-aware
//! refinement (FLOPs scaled to the same unit system) used by the discrete-
//! event simulator and the ablation benches; it needs `value_info` to be
//! populated by shape inference.

use ramiel_ir::{Graph, Node, OpKind};

/// Prices a node and an edge. Costs are `u64` "work units".
pub trait CostModel: Sync {
    /// Weighted cost of executing `node` within `graph`.
    fn node_cost(&self, graph: &Graph, node: &Node) -> u64;

    /// Cost added per dependence edge on the critical path (the paper uses 1).
    fn edge_cost(&self) -> u64 {
        1
    }

    /// Total weighted cost of all nodes (the paper's `Wt.Cost of Nodes`).
    fn total_cost(&self, graph: &Graph) -> u64 {
        graph.nodes.iter().map(|n| self.node_cost(graph, n)).sum()
    }
}

/// The paper's static per-operator weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticCost;

impl CostModel for StaticCost {
    fn node_cost(&self, _graph: &Graph, node: &Node) -> u64 {
        match &node.op {
            OpKind::Conv { kernel, .. } => match kernel.0.max(kernel.1) {
                0..=1 => 4,
                2..=3 => 8,
                4..=5 => 14,
                _ => 24,
            },
            // Transformer-scale matrix products dominate everything else in
            // the graphs that carry them (BERT's per-node cost in the
            // paper's Table I averages ≈22 units).
            OpKind::MatMul | OpKind::Gemm { .. } => 40,
            OpKind::MaxPool(_) | OpKind::AveragePool(_) | OpKind::GlobalAveragePool => 2,
            OpKind::BatchNorm { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::Softmax { .. }
            | OpKind::ReduceMean { .. } => 2,
            OpKind::Resize { .. } => 2,
            op if op.is_elementwise() => 1,
            op if op.is_shape_op() => 1,
            _ => 1,
        }
    }
}

/// Shape-aware FLOP-derived cost (1 unit ≈ 250k FLOPs, floor 1), used by the
/// schedule simulator so that simulated makespans track real kernel times.
#[derive(Debug, Clone, Copy)]
pub struct FlopCost {
    /// FLOPs per cost unit.
    pub flops_per_unit: f64,
}

impl Default for FlopCost {
    fn default() -> Self {
        FlopCost {
            flops_per_unit: 250_000.0,
        }
    }
}

impl FlopCost {
    /// Approximate FLOPs of a node (0 for pure data movement).
    pub fn flops(&self, graph: &Graph, node: &Node) -> f64 {
        let out_numel = |i: usize| -> f64 {
            node.outputs
                .get(i)
                .and_then(|t| graph.value_info.get(t))
                .map(|v| v.numel() as f64)
                .unwrap_or(0.0)
        };
        let in_numel = |i: usize| -> f64 {
            node.inputs
                .get(i)
                .and_then(|t| graph.tensor_info(t))
                .map(|v| v.numel() as f64)
                .unwrap_or(0.0)
        };
        match &node.op {
            OpKind::Conv { kernel, groups, .. } => {
                // 2 · out_elems · (C/g) · kh · kw
                let cin = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.get(1).copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * (cin / *groups as f64) * (kernel.0 * kernel.1) as f64
            }
            OpKind::MatMul => {
                // 2 · out_elems · k
                let k = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.last().copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * k
            }
            OpKind::Gemm { .. } => {
                let k = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .and_then(|v| v.shape.last().copied())
                    .unwrap_or(1) as f64;
                2.0 * out_numel(0) * k
            }
            OpKind::MaxPool(p) | OpKind::AveragePool(p) => {
                out_numel(0) * (p.kernel.0 * p.kernel.1) as f64
            }
            OpKind::GlobalAveragePool => in_numel(0),
            OpKind::BatchNorm { .. } => 2.0 * in_numel(0),
            OpKind::LayerNorm { .. } => 8.0 * in_numel(0),
            OpKind::Softmax { .. } => 5.0 * in_numel(0),
            OpKind::ReduceMean { .. } => in_numel(0),
            op if op.is_elementwise() => in_numel(0),
            op if op.is_shape_op() => in_numel(0) * 0.25, // copy traffic
            _ => in_numel(0),
        }
    }
}

impl CostModel for FlopCost {
    fn node_cost(&self, graph: &Graph, node: &Node) -> u64 {
        (self.flops(graph, node) / self.flops_per_unit)
            .ceil()
            .max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("c");
        let x = b.input("x", DType::F32, vec![1, 3, 16, 16]);
        let c1 = b.conv(&x, 3, 8, (1, 1), (1, 1), (0, 0), 1);
        let c3 = b.conv(&c1, 8, 8, (3, 3), (1, 1), (1, 1), 1);
        let c5 = b.conv(&c3, 8, 8, (5, 5), (1, 1), (2, 2), 1);
        let c7 = b.conv(&c5, 8, 8, (7, 7), (1, 1), (3, 3), 1);
        let r = b.op("r", ramiel_ir::OpKind::Relu, vec![c7]);
        b.output(&r);
        b.finish().unwrap()
    }

    #[test]
    fn static_cost_ranks_kernels() {
        let g = conv_graph();
        let sc = StaticCost;
        let costs: Vec<u64> = g.nodes.iter().map(|n| sc.node_cost(&g, n)).collect();
        // conv1x1 < conv3x3 < conv5x5 < conv7x7, relu == 1
        assert_eq!(costs, vec![4, 8, 14, 24, 1]);
        assert_eq!(sc.total_cost(&g), 51);
        assert_eq!(sc.edge_cost(), 1);
    }

    #[test]
    fn flop_cost_monotone_in_kernel_size() {
        let g = conv_graph();
        let fc = FlopCost::default();
        let costs: Vec<u64> = g.nodes.iter().map(|n| fc.node_cost(&g, n)).collect();
        assert!(costs[1] > costs[0]);
        assert!(costs[2] > costs[1]);
        assert!(costs[3] > costs[2]);
        assert!(costs[4] >= 1); // elementwise floors at 1
    }

    #[test]
    fn flop_cost_conv_formula() {
        let g = conv_graph();
        let fc = FlopCost::default();
        // node 1 is the 3x3 conv: out 1×8×16×16, cin 8, so 2·2048·8·9 FLOPs
        let flops = fc.flops(&g, &g.nodes[1]);
        assert_eq!(flops, 2.0 * 2048.0 * 8.0 * 9.0);
    }
}
