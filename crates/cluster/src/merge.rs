//! Algorithms 2 & 3: Cluster Merging.
//!
//! Linear Clustering leaves behind many short side clusters because zeroing
//! the critical path disconnects the graph. Merging combines clusters whose
//! *spans* do not overlap, where a cluster's span in distance-to-end space is
//! the interval `[eSpan, sSpan]`:
//!
//! - `sSpan(cl)` = `distance_to_end(entry_node(cl))`
//! - `eSpan(cl)` = `distance_to_end(exit_node(cl))`
//!
//! Two clusters merge when `sSpan(cl1) < eSpan(cl2) || sSpan(cl2) <
//! eSpan(cl1)` — one finishes (in schedule potential) strictly before the
//! other starts, so a single worker can run both without serializing any
//! parallelism. [`merge_clusters_once`] is Algorithm 2 (one pass);
//! [`merge_clusters_fixpoint`] is Algorithm 3 (iterate until no merge
//! happens).
//!
//! The merged node list is kept sorted by decreasing `distance_to_end`.
//! Because distance strictly decreases along every dependence edge, this
//! order is always a valid sequential execution order for the merged
//! cluster.

use crate::types::{Cluster, Clustering};

fn s_span(c: &Cluster, dist: &[u64]) -> u64 {
    dist[c.entry()]
}

fn e_span(c: &Cluster, dist: &[u64]) -> u64 {
    dist[c.exit()]
}

fn spans_disjoint(a: &Cluster, b: &Cluster, dist: &[u64]) -> bool {
    s_span(a, dist) < e_span(b, dist) || s_span(b, dist) < e_span(a, dist)
}

fn union(a: &Cluster, b: &Cluster, dist: &[u64]) -> Cluster {
    let mut nodes: Vec<usize> = a.nodes.iter().chain(&b.nodes).copied().collect();
    // Decreasing distance; ties broken by node id for determinism (tied
    // nodes are never dependent, so any tie order is execution-safe).
    nodes.sort_by_key(|&n| (std::cmp::Reverse(dist[n]), n));
    Cluster::new(nodes)
}

/// Algorithm 2: one merging sweep. Returns the merged clustering and
/// whether any merge happened.
pub fn merge_clusters_once(clustering: &Clustering, dist: &[u64]) -> (Clustering, bool) {
    let clusters = &clustering.clusters;
    let k = clusters.len();
    let mut skip = vec![false; k];
    let mut merged = Vec::with_capacity(k);
    let mut merge_done = false;
    for i in 0..k {
        if skip[i] {
            continue;
        }
        let partner = (0..k)
            .find(|&j| j != i && !skip[j] && spans_disjoint(&clusters[i], &clusters[j], dist));
        match partner {
            Some(j) => {
                merged.push(union(&clusters[i], &clusters[j], dist));
                skip[i] = true;
                skip[j] = true;
                merge_done = true;
            }
            None => merged.push(clusters[i].clone()),
        }
    }
    (Clustering::new(merged), merge_done)
}

/// Algorithm 3: iterate [`merge_clusters_once`] until a fixed point.
pub fn merge_clusters_fixpoint(clustering: &Clustering, dist: &[u64]) -> Clustering {
    let mut current = clustering.clone();
    loop {
        let (next, merge_done) = merge_clusters_once(&current, dist);
        current = next;
        if !merge_done {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StaticCost;
    use crate::distance::distance_to_end;
    use crate::lc::linear_clustering;
    use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};

    /// Fire-module-style graph: repeated fork-join pairs like SqueezeNet's
    /// Fig. 5, where LC produces one long cluster and several one-node side
    /// clusters that merging should coalesce.
    fn squeeze_like(num_fires: usize) -> Graph {
        let mut b = GraphBuilder::new("squeeze-like");
        let mut t = b.input("x", DType::F32, vec![1, 8, 16, 16]);
        t = b.conv_relu(&t, 8, 8, 3, 1, 1);
        for _ in 0..num_fires {
            let sq = b.conv_relu(&t, 8, 4, 1, 1, 0);
            let e1 = b.conv_relu(&sq, 4, 4, 1, 1, 0);
            let e3 = b.conv_relu(&sq, 4, 4, 3, 1, 1);
            t = b.op("cat", OpKind::Concat { axis: 1 }, vec![e1, e3]);
        }
        b.output(&t);
        b.finish().unwrap()
    }

    #[test]
    fn merging_reduces_side_clusters() {
        let g = squeeze_like(4);
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        let merged = merge_clusters_fixpoint(&lc, &dist);
        assert!(lc.num_clusters() > merged.num_clusters());
        // Fig 5: side clusters C2..C4 merge into one ⇒ exactly 2 remain.
        assert_eq!(merged.num_clusters(), 2);
        merged.check_partition(&g).unwrap();
        merged.check_internal_order(&g).unwrap();
    }

    #[test]
    fn merge_preserves_partition_invariants() {
        let g = squeeze_like(6);
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        lc.check_partition(&g).unwrap();
        let merged = merge_clusters_fixpoint(&lc, &dist);
        merged.check_partition(&g).unwrap();
        merged.check_internal_order(&g).unwrap();
    }

    #[test]
    fn disjoint_spans_merge_overlapping_do_not() {
        // dist values chosen by hand
        let dist = vec![10, 8, 5, 4, 2];
        let a = Cluster::new(vec![0, 1]); // span [8, 10]
        let b = Cluster::new(vec![2, 3]); // span [4, 5]
        let c = Cluster::new(vec![4]); // span [2, 2]
        assert!(spans_disjoint(&a, &b, &dist)); // 5 < 8
        assert!(spans_disjoint(&b, &c, &dist));
        let overlapping = Cluster::new(vec![1, 3]); // span [4, 8]
        assert!(!spans_disjoint(&a, &overlapping, &dist)); // 8 !< 8 and 10 !< 4
    }

    #[test]
    fn union_orders_by_decreasing_distance() {
        let dist = vec![10, 8, 5, 4, 2];
        let a = Cluster::new(vec![0, 1]);
        let b = Cluster::new(vec![2, 4]);
        let u = union(&a, &b, &dist);
        assert_eq!(u.nodes, vec![0, 1, 2, 4]);
        let u2 = union(&b, &a, &dist);
        assert_eq!(u2.nodes, vec![0, 1, 2, 4]); // symmetric
    }

    #[test]
    fn fixpoint_reaches_stability() {
        let g = squeeze_like(5);
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        let m1 = merge_clusters_fixpoint(&lc, &dist);
        let (m2, merged_again) = merge_clusters_once(&m1, &dist);
        assert!(!merged_again);
        assert_eq!(m1, m2);
    }

    #[test]
    fn single_cluster_is_untouched() {
        let c = Clustering::new(vec![Cluster::new(vec![0, 1, 2])]);
        let dist = vec![5, 3, 1];
        let (m, done) = merge_clusters_once(&c, &dist);
        assert!(!done);
        assert_eq!(m, c);
    }
}
