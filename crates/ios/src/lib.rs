//! # ramiel-ios
//!
//! A reimplementation of **IOS — Inter-Operator Scheduler** (Ding et al.,
//! MLSys 2021), the system the paper compares against in Table VIII.
//!
//! IOS schedules a CNN graph as a sequence of *stages*; each stage is a set
//! of operators executed concurrently. The schedule is found by dynamic
//! programming over topologically-closed subsets ("ending sets"), which is
//! what makes IOS accurate *and* slow — the paper reports ~90 minutes of
//! compile time for NASNet, versus seconds for Ramiel's linear clustering.
//!
//! Like the original (which prunes with a max stage width `r` and window
//! `s`), this implementation bounds the DP three ways to stay finite on
//! 1400-node graphs:
//!
//! 1. the graph is first split into *blocks* at narrow points / level
//!    boundaries (IOS does the same per-block scheduling);
//! 2. within a block the DP memoizes on the exact scheduled subset (a
//!    bitset), bounded by `dp_node_limit ≤ 64` nodes per block;
//! 3. candidate stages are subsets of the ready set of size ≤
//!    `max_stage_width`.
//!
//! The asymptotics — and therefore the compile-time gap against LC that
//! Table VIII exists to show — are preserved: the DP visits thousands to
//! millions of states where LC does a couple of linear passes.

use ramiel_cluster::cost::CostModel;
use ramiel_ir::topo::{levels, topo_sort};
use ramiel_ir::{Graph, NodeId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// IOS pruning and hardware parameters.
#[derive(Debug, Clone, Copy)]
pub struct IosConfig {
    /// Parallel execution lanes within a stage (CPU cores).
    pub cores: usize,
    /// Max operators per stage candidate (IOS's `r` pruning).
    pub max_stage_width: usize,
    /// Max nodes per DP block; larger blocks are split at level boundaries.
    pub dp_node_limit: usize,
    /// Fixed cost added per stage (kernel-launch / sync overhead).
    pub stage_overhead: u64,
}

impl Default for IosConfig {
    fn default() -> Self {
        IosConfig {
            cores: 8,
            max_stage_width: 4,
            dp_node_limit: 18,
            stage_overhead: 1,
        }
    }
}

/// A complete IOS schedule: stages execute in order, operators within a
/// stage run concurrently.
#[derive(Debug, Clone)]
pub struct IosSchedule {
    pub stages: Vec<Vec<NodeId>>,
}

/// Search statistics (compile-time evidence for Table VIII).
#[derive(Debug, Clone)]
pub struct IosStats {
    pub compile_time: Duration,
    pub dp_states: usize,
    pub blocks: usize,
}

/// Longest-processing-time makespan of a stage's costs over `cores` lanes.
fn stage_latency(costs: &mut [u64], cores: usize, overhead: u64) -> u64 {
    costs.sort_unstable_by(|a, b| b.cmp(a));
    let lanes = cores.max(1).min(costs.len().max(1));
    let mut lane_load = vec![0u64; lanes];
    for &c in costs.iter() {
        let min = lane_load
            .iter_mut()
            .min()
            .expect("at least one lane exists");
        *min += c;
    }
    lane_load.into_iter().max().unwrap_or(0) + overhead
}

/// Split the graph into DP blocks: contiguous level ranges holding at most
/// `dp_node_limit` nodes (a narrow point always closes a block).
fn blocks(graph: &Graph, limit: usize) -> Vec<Vec<NodeId>> {
    let lvl = levels(graph).expect("acyclic graph required");
    let max_level = lvl.iter().copied().max().unwrap_or(0);
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); max_level + 1];
    for (n, &l) in lvl.iter().enumerate() {
        by_level[l].push(n);
    }
    let mut out = Vec::new();
    let mut cur: Vec<NodeId> = Vec::new();
    for mut level in by_level {
        if cur.len() + level.len() > limit && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        // A single level wider than the limit is chunked: nodes at the same
        // level are mutually independent, so any split is dependence-safe.
        while level.len() > limit.max(1) {
            let rest = level.split_off(limit.max(1));
            out.push(std::mem::replace(&mut level, rest));
        }
        let narrow = level.len() == 1;
        cur.extend(level);
        if narrow && cur.len() > 1 {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// DP over one block. Returns (stages, visited-state count).
fn dp_block(
    graph: &Graph,
    block: &[NodeId],
    cost: &dyn CostModel,
    cfg: &IosConfig,
) -> (Vec<Vec<NodeId>>, usize) {
    let n = block.len();
    assert!(n <= 64, "block exceeds bitset width");
    let index: HashMap<NodeId, usize> = block.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let adj = graph.adjacency();
    // per-node predecessor mask within the block
    let pred_mask: Vec<u64> = block
        .iter()
        .map(|&v| {
            adj.preds[v]
                .iter()
                .filter_map(|p| index.get(p))
                .fold(0u64, |m, &i| m | (1 << i))
        })
        .collect();
    let node_cost: Vec<u64> = block
        .iter()
        .map(|&v| cost.node_cost(graph, &graph.nodes[v]))
        .collect();
    let full: u64 = if n == 64 { !0 } else { (1 << n) - 1 };

    // memo: scheduled-set → (best remaining cost, chosen next stage)
    let mut memo: HashMap<u64, (u64, u64)> = HashMap::new();

    fn solve(
        scheduled: u64,
        full: u64,
        pred_mask: &[u64],
        node_cost: &[u64],
        cfg: &IosConfig,
        memo: &mut HashMap<u64, (u64, u64)>,
    ) -> u64 {
        if scheduled == full {
            return 0;
        }
        if let Some(&(c, _)) = memo.get(&scheduled) {
            return c;
        }
        // ready set: unscheduled nodes whose in-block preds are scheduled
        let mut ready: Vec<usize> = Vec::new();
        for (i, &pm) in pred_mask.iter().enumerate() {
            if scheduled & (1 << i) == 0 && pm & !scheduled == 0 {
                ready.push(i);
            }
        }
        // enumerate non-empty subsets of `ready` up to max_stage_width
        let mut best = (u64::MAX, 0u64);
        let r = ready.len();
        let width = cfg.max_stage_width.min(r);
        // iterative subset enumeration by size
        let mut stack: Vec<(usize, u64, Vec<u64>)> = vec![(0, 0, Vec::new())];
        while let Some((start, mask, costs)) = stack.pop() {
            if mask != 0 {
                let mut cvec = costs.clone();
                let lat = stage_latency(&mut cvec, cfg.cores, cfg.stage_overhead);
                let rest = solve(scheduled | mask, full, pred_mask, node_cost, cfg, memo);
                let total = lat.saturating_add(rest);
                if total < best.0 {
                    best = (total, mask);
                }
            }
            if costs.len() < width {
                for i in start..r {
                    let bit = 1u64 << ready[i];
                    let mut nc = costs.clone();
                    nc.push(node_cost[ready[i]]);
                    stack.push((i + 1, mask | bit, nc));
                }
            }
        }
        memo.insert(scheduled, (best.0, best.1));
        best.0
    }

    solve(0, full, &pred_mask, &node_cost, cfg, &mut memo);

    // reconstruct stages
    let mut stages = Vec::new();
    let mut scheduled = 0u64;
    while scheduled != full {
        let (_, stage_mask) = memo[&scheduled];
        let stage: Vec<NodeId> = (0..n)
            .filter(|&i| stage_mask & (1 << i) != 0)
            .map(|i| block[i])
            .collect();
        assert!(!stage.is_empty(), "DP reconstruction stalled");
        scheduled |= stage_mask;
        stages.push(stage);
    }
    (stages, memo.len())
}

/// Run the IOS scheduler over a whole graph.
pub fn ios_schedule(
    graph: &Graph,
    cost: &dyn CostModel,
    cfg: &IosConfig,
) -> (IosSchedule, IosStats) {
    let start = Instant::now();
    let _ = topo_sort(graph).expect("acyclic graph required");
    let blocks = blocks(graph, cfg.dp_node_limit.min(64));
    let mut stages = Vec::new();
    let mut dp_states = 0;
    for block in &blocks {
        let (s, states) = dp_block(graph, block, cost, cfg);
        dp_states += states;
        stages.extend(s);
    }
    (
        IosSchedule { stages },
        IosStats {
            compile_time: start.elapsed(),
            dp_states,
            blocks: blocks.len(),
        },
    )
}

/// Simulated makespan of an IOS schedule under the cost model.
pub fn ios_makespan(
    graph: &Graph,
    sched: &IosSchedule,
    cost: &dyn CostModel,
    cfg: &IosConfig,
) -> u64 {
    sched
        .stages
        .iter()
        .map(|stage| {
            let mut costs: Vec<u64> = stage
                .iter()
                .map(|&n| cost.node_cost(graph, &graph.nodes[n]))
                .collect();
            stage_latency(&mut costs, cfg.cores, cfg.stage_overhead)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_cluster::StaticCost;
    use ramiel_models::synthetic;

    fn check_schedule_valid(graph: &Graph, sched: &IosSchedule) {
        // every node exactly once
        let mut seen = vec![false; graph.num_nodes()];
        for stage in &sched.stages {
            for &n in stage {
                assert!(!seen[n], "node {n} scheduled twice");
                seen[n] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "node missing from schedule");
        // dependences respect stage order
        let mut stage_of = vec![0usize; graph.num_nodes()];
        for (si, stage) in sched.stages.iter().enumerate() {
            for &n in stage {
                stage_of[n] = si;
            }
        }
        let adj = graph.adjacency();
        for u in 0..graph.num_nodes() {
            for &v in &adj.succs[u] {
                assert!(stage_of[u] < stage_of[v], "dep {u}->{v} violated");
            }
        }
    }

    #[test]
    fn schedules_chain_as_singleton_stages() {
        let g = synthetic::chain(6);
        let (sched, stats) = ios_schedule(&g, &StaticCost, &IosConfig::default());
        check_schedule_valid(&g, &sched);
        assert_eq!(sched.stages.len(), 6);
        assert!(stats.dp_states > 0);
    }

    #[test]
    fn fork_join_packs_parallel_branches_into_stages() {
        let g = synthetic::fork_join(3, 2, 1);
        let (sched, _) = ios_schedule(&g, &StaticCost, &IosConfig::default());
        check_schedule_valid(&g, &sched);
        // some stage must hold more than one node (the parallel branches)
        assert!(sched.stages.iter().any(|s| s.len() > 1));
        // and the schedule beats the sequential sum
        let mk = ios_makespan(&g, &sched, &StaticCost, &IosConfig::default());
        let seq: u64 = StaticCost.total_cost(&g)
            + sched.stages.len() as u64 * IosConfig::default().stage_overhead;
        assert!(mk < seq);
    }

    #[test]
    fn dp_explores_more_states_than_lc_would() {
        // compile-time asymmetry: the DP state count grows with graph
        // parallelism — the effect Table VIII measures
        let small = synthetic::fork_join(2, 2, 1);
        let big = synthetic::fork_join(4, 3, 2);
        let (_, s1) = ios_schedule(&small, &StaticCost, &IosConfig::default());
        let (_, s2) = ios_schedule(&big, &StaticCost, &IosConfig::default());
        assert!(s2.dp_states > s1.dp_states);
    }

    #[test]
    fn stage_latency_is_lpt_makespan() {
        let mut costs = vec![4, 3, 3, 2];
        // 2 cores: lanes {4,2}, {3,3} → 6; +1 overhead
        assert_eq!(stage_latency(&mut costs, 2, 1), 7);
        let mut single = vec![5];
        assert_eq!(stage_latency(&mut single, 8, 0), 5);
    }

    #[test]
    fn blocks_respect_limit() {
        let g = synthetic::fork_join(4, 4, 3);
        let bs = blocks(&g, 10);
        assert!(bs.iter().all(|b| b.len() <= 10 + 4)); // a level may overflow slightly
        let total: usize = bs.iter().map(|b| b.len()).sum();
        assert_eq!(total, g.num_nodes());
    }
}
