//! Work-stealing dataflow executor.
//!
//! The sixth executor, and the first whose schedule is *dynamic*: instead of
//! assigning each cluster to a dedicated thread with channels on every
//! cross-cluster edge (the paper's model, [`crate::parallel`]), graph nodes
//! are executed by dependency-count readiness on a **persistent pool** of
//! worker threads with per-worker Chase-Lev-style deques and a global
//! injector:
//!
//! - each worker owns a deque: it pushes newly-ready successor tasks to the
//!   *bottom* and pops from the bottom (LIFO — the just-produced tensor is
//!   cache-hot), while idle peers steal from the *top* (FIFO — the oldest,
//!   most parallelism-rich work migrates first);
//! - the submitting thread **participates**: it claims a deque slot and
//!   executes tasks alongside the pool, so batch-1 latency degenerates to
//!   roughly the sequential walk plus per-task bookkeeping instead of
//!   paying a thread handoff per node;
//! - cluster assignments are demoted to *initial-placement locality hints*:
//!   root tasks of cluster 0 seed the caller's own deque, other clusters
//!   spread round-robin over the workers, and from then on the steal
//!   discipline owns placement;
//! - there are **no per-edge channels**: produced tensors land in per-job
//!   slots and consumers are released by atomic dependency counters. This
//!   is why `ramiel analyze` reports the stealing variant as estimate-only
//!   (sound first-ready memory bound, no channel lints): there is no static
//!   per-edge structure for RA03xx/RA0401 to check, and no static schedule
//!   to replay.
//!
//! Schedules are therefore *not replayable*: which worker runs which node
//! depends on OS scheduling. Correctness rests on kernels being pure and
//! deterministic per node — the scheduling-conformance harness
//! (`tests/steal_conformance.rs`) drives thousands of seeded interleavings
//! through [`StealChaos`] stalls/placement permutations and asserts
//! bit-identical outputs and liveness.
//!
//! Everything the static executors honor is threaded through: RunOptions
//! (obs, fault injection, in-place reuse marks gated by `Arc::get_mut`,
//! shared `init_values`), MemGauge accounting identical to the
//! [`crate::reuse::Liveness`] model (so the analyze first-ready resident-sum
//! bound stays sound), supervisor retry/fallback
//! ([`crate::supervisor::run_stealing_supervised_opts`]), and batch
//! execution for serve. `FaultKind::DropMessage` is a no-op here, as in the
//! sequential executor: there are no channels to drop from.

use crate::fault::{panic_to_error, FaultInjector, FaultKind, InjectedPanic, INJECT_MARKER};
use crate::parallel::{default_recv_timeout, RunOptions};
use crate::reuse::charge_bytes;
use crate::{Env, Result, RuntimeError};
use parking_lot::Mutex;
use ramiel_cluster::hyper::HyperClustering;
use ramiel_cluster::Clustering;
use ramiel_ir::{Graph, OpKind};
use ramiel_obs::metrics::{render_histogram_text, Histogram, HistogramSnapshot, PeakGauge};
use ramiel_obs::Obs;
use ramiel_passes::{inplace_marks, InPlaceMarks};
use ramiel_tensor::{eval_op, eval_op_inplace, ExecCtx, MemGauge, Value};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Deterministic per-task hash for the scheduling adversary (and nothing
/// else — fault plans keep their own splitmix stream in [`crate::fault`]).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Scheduling adversary knobs for the conformance harness: a seed-derived
/// per-task stall plus placement permutations (rotated ready-successor
/// order, occasional diversion to the global injector). The *plan* is a
/// pure function of the seed; the resulting interleaving still varies with
/// OS scheduling, which is exactly what the harness wants to stress.
/// Ignored by every executor except [`run_stealing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealChaos {
    pub seed: u64,
    /// Upper bound for the per-task stall, in microseconds.
    pub max_stall_us: u64,
}

/// Where one input operand of a node comes from.
enum InSrc {
    /// Produced by another node: per-batch slot base index.
    Slot(u32),
    /// Graph input or initializer, fetched by name.
    External(String),
}

/// One graph node, pre-resolved for slot-based execution. Owns copies of
/// the op and names so tasks can outlive the borrowed `Graph` (a worker may
/// still be draining an abandoned job after its caller returned).
struct PlanNode {
    id: usize,
    name: String,
    op: OpKind,
    inputs: Vec<InSrc>,
    /// Base slot per produced output.
    out_slots: Vec<u32>,
    /// Number of slot-sourced input positions (the readiness count).
    preds: u32,
    /// Consumer node ids, one entry per consuming input position.
    succs: Vec<u32>,
}

/// A dependency-resolved execution plan for one (graph, batch) pair:
/// everything [`StealPool::run_plan`] needs, fully owned. Build once and
/// reuse across runs — construction converts the weights unless the run
/// supplies `RunOptions::init_values`.
pub struct StealPlan {
    batch: usize,
    nodes: Vec<PlanNode>,
    /// Per base slot: produced tensor name.
    slot_names: Vec<String>,
    /// Per base slot: remaining-read count (graph outputs carry one extra
    /// pin so they stay resident — and charged — to the end).
    slot_reads: Vec<u32>,
    slot_is_output: Vec<bool>,
    /// All graph output names (for the degenerate input-is-output backfill).
    graph_outputs: Vec<String>,
    /// Node ids with zero slot-sourced inputs.
    roots: Vec<u32>,
    /// Locality hint (cluster id) per task `b * nodes.len() + n`.
    hints: Vec<u32>,
    marks: InPlaceMarks,
    init_values: Arc<HashMap<String, Value>>,
}

impl StealPlan {
    /// Plan a batch-1..n run using a clustering's assignment as locality
    /// hints (the same hint for every batch element of a node).
    pub fn new(graph: &Graph, clustering: &Clustering, batch: usize) -> Result<StealPlan> {
        let assign = clustering.assignment();
        Self::build(graph, batch, |_, n| {
            assign.get(&n).map(|&c| c as u32).unwrap_or(u32::MAX)
        })
    }

    /// Plan from a hyperclustering: per-(batch, node) hints from the
    /// hypercluster worker assignment.
    pub fn from_hyper(graph: &Graph, hc: &HyperClustering) -> Result<StealPlan> {
        let mut owner: HashMap<(usize, usize), u32> = HashMap::new();
        for (w, ops) in hc.hyperclusters.iter().enumerate() {
            for op in ops {
                owner.insert((op.batch, op.node), w as u32);
            }
        }
        Self::build(graph, hc.batch.max(1), |b, n| {
            owner.get(&(b, n)).copied().unwrap_or(u32::MAX)
        })
    }

    fn build(graph: &Graph, batch: usize, hint: impl Fn(usize, usize) -> u32) -> Result<StealPlan> {
        if batch == 0 {
            return Err(RuntimeError::Setup("steal plan needs batch >= 1".into()));
        }
        let mut slot_of: HashMap<&str, u32> = HashMap::new();
        let mut slot_names = Vec::new();
        for node in &graph.nodes {
            for out in &node.outputs {
                if slot_of
                    .insert(out.as_str(), slot_names.len() as u32)
                    .is_some()
                {
                    return Err(RuntimeError::Setup(format!(
                        "tensor `{out}` has multiple producers"
                    )));
                }
                slot_names.push(out.clone());
            }
        }
        let mut slot_reads = vec![0u32; slot_names.len()];
        let mut slot_is_output = vec![false; slot_names.len()];
        for out in &graph.outputs {
            if let Some(&s) = slot_of.get(out.as_str()) {
                slot_is_output[s as usize] = true;
                slot_reads[s as usize] += 1; // the pin
            }
        }
        let mut nodes: Vec<PlanNode> = graph
            .nodes
            .iter()
            .map(|n| PlanNode {
                id: n.id,
                name: n.name.clone(),
                op: n.op.clone(),
                inputs: Vec::with_capacity(n.inputs.len()),
                out_slots: n.outputs.iter().map(|o| slot_of[o.as_str()]).collect(),
                preds: 0,
                succs: Vec::new(),
            })
            .collect();
        let adj = graph.adjacency();
        for (i, n) in graph.nodes.iter().enumerate() {
            for inp in &n.inputs {
                if let Some(&s) = slot_of.get(inp.as_str()) {
                    nodes[i].preds += 1;
                    slot_reads[s as usize] += 1;
                    let p = adj.producer_of[inp.as_str()];
                    nodes[p].succs.push(i as u32);
                } else {
                    nodes[i].inputs.push(InSrc::External(inp.clone()));
                }
            }
            // Re-walk to keep input positions in operator order (the loop
            // above appended only externals; rebuild properly).
            nodes[i].inputs.clear();
            for inp in &n.inputs {
                nodes[i].inputs.push(match slot_of.get(inp.as_str()) {
                    Some(&s) => InSrc::Slot(s),
                    None => InSrc::External(inp.clone()),
                });
            }
        }
        let roots = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.preds == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let hints = (0..batch)
            .flat_map(|b| (0..nodes.len()).map(move |n| (b, n)))
            .map(|(b, n)| hint(b, n))
            .collect();
        Ok(StealPlan {
            batch,
            nodes,
            slot_names,
            slot_reads,
            slot_is_output,
            graph_outputs: graph.outputs.clone(),
            roots,
            hints,
            marks: inplace_marks(graph),
            init_values: crate::initializer_values(graph)?,
        })
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    pub fn num_tasks(&self) -> usize {
        self.batch * self.nodes.len()
    }

    /// The plan's own pre-converted weight table (shared across runs unless
    /// the caller overrides it via `RunOptions::init_values`).
    pub fn init_values(&self) -> &Arc<HashMap<String, Value>> {
        &self.init_values
    }
}

/// One produced tensor instance.
struct Slot {
    val: Option<Value>,
    /// Bytes currently charged to the gauge for this slot.
    charged: u64,
    /// Reads (plus output pin) remaining before the value is dead.
    remaining: u32,
}

/// Mutable state of one in-flight run. Fully owned (plan, inputs, ctx are
/// Arcs/clones), so abandoned jobs — timeout, fault — can be drained by the
/// pool after the caller returned without any lifetime gymnastics.
struct JobInner {
    plan: Arc<StealPlan>,
    inputs: Vec<Env>,
    /// Effective weight table: `RunOptions::init_values` override or the
    /// plan's own pre-converted table.
    init: Arc<HashMap<String, Value>>,
    ctx: ExecCtx,
    injector: Option<Arc<FaultInjector>>,
    obs: Obs,
    reuse: bool,
    chaos: Option<StealChaos>,
    gauge: Option<Arc<MemGauge>>,
    /// Pending dependency count per task.
    pending: Vec<AtomicU32>,
    /// Produced tensor instances, `b * num_slots + base`.
    slots: Vec<Mutex<Slot>>,
    out_envs: Mutex<Vec<Env>>,
    completed: AtomicUsize,
    total: usize,
    /// Absolute deadline (submission time + recv timeout). Injected stalls
    /// sleep in bounded chunks against it, so a stalled *participating
    /// caller* still observes its own timeout — there is no peer blocked in
    /// `recv` to flag it, unlike the channel executors.
    deadline: Instant,
    done: AtomicBool,
    dead: AtomicBool,
    err: Mutex<Option<RuntimeError>>,
    finalized: AtomicBool,
    wait_m: StdMutex<()>,
    wait_cv: Condvar,
}

impl JobInner {
    fn new(
        plan: &Arc<StealPlan>,
        inputs: Vec<Env>,
        ctx: &ExecCtx,
        opts: &RunOptions,
        deadline: Instant,
    ) -> JobInner {
        let ctx = &opts.apply_backend(ctx);
        let pending = (0..plan.batch)
            .flat_map(|_| plan.nodes.iter().map(|n| AtomicU32::new(n.preds)))
            .collect();
        let slots = (0..plan.batch)
            .flat_map(|_| {
                plan.slot_reads.iter().map(|&r| {
                    Mutex::new(Slot {
                        val: None,
                        charged: 0,
                        remaining: r,
                    })
                })
            })
            .collect();
        let batch = plan.batch;
        JobInner {
            plan: Arc::clone(plan),
            inputs,
            init: opts
                .init_values
                .clone()
                .unwrap_or_else(|| Arc::clone(&plan.init_values)),
            ctx: ctx.clone(),
            injector: opts.injector.clone(),
            obs: opts.obs.clone(),
            reuse: opts.reuse,
            chaos: opts.steal_chaos,
            gauge: ctx.mem_gauge().cloned(),
            pending,
            slots,
            out_envs: Mutex::new(vec![Env::new(); batch]),
            completed: AtomicUsize::new(0),
            total: batch * plan.nodes.len(),
            deadline,
            done: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            err: Mutex::new(None),
            finalized: AtomicBool::new(false),
            wait_m: StdMutex::new(()),
            wait_cv: Condvar::new(),
        }
    }

    fn slot(&self, batch: usize, base: u32) -> &Mutex<Slot> {
        &self.slots[batch * self.plan.slot_names.len() + base as usize]
    }

    fn notify(&self) {
        let _g = self.wait_m.lock().unwrap_or_else(|e| e.into_inner());
        self.wait_cv.notify_all();
    }

    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        self.notify();
    }

    fn fail(&self, e: RuntimeError) {
        {
            let mut err = self.err.lock();
            if err.is_none() {
                *err = Some(e);
            }
        }
        self.dead.store(true, Ordering::SeqCst);
        self.notify();
    }

    /// Free every remaining gauge charge (pinned graph outputs, values kept
    /// by `reuse: false`, anything live on an error path). Called
    /// synchronously by the successful caller — so a shared gauge reads
    /// `live_bytes() == 0` the moment `run_plan` returns — and idempotently
    /// from `Drop` for abandoned jobs.
    fn finalize(&self) {
        if self.finalized.swap(true, Ordering::SeqCst) {
            return;
        }
        for s in &self.slots {
            let mut sl = s.lock();
            if sl.charged > 0 {
                if let Some(g) = &self.gauge {
                    g.free(sl.charged as usize);
                }
                sl.charged = 0;
            }
            sl.val = None;
        }
    }
}

impl Drop for JobInner {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// One schedulable unit: a (batch, node) instance of a job.
struct Task {
    job: Arc<JobInner>,
    /// `b * num_nodes + n`.
    task: u32,
}

/// How many deque slots are reserved for participating callers (beyond the
/// background workers). Callers past this budget still run correctly —
/// they seed the injector and steal like everyone else, they just lack an
/// owned LIFO deque.
const CALLER_SLOTS: usize = 16;

/// Per-slot execution telemetry: one entry per deque slot plus a final
/// aggregate entry for slotless callers. All relaxed atomics — recording
/// is a handful of uncontended RMWs per task, cheap enough to stay
/// unconditionally on (the batch-1 stealing-vs-sequential bench guard
/// bounds the cost).
#[derive(Default)]
struct SlotTelemetry {
    /// Tasks executed from this slot.
    tasks: AtomicU64,
    /// Successful steals *by* this slot from peer deques.
    steals: AtomicU64,
    /// Nanoseconds parked/waiting for work.
    idle_ns: AtomicU64,
    /// Deepest local deque observed at push (window + lifetime).
    peak_depth: PeakGauge,
}

/// Pool-wide telemetry shared by all slots.
struct PoolTelemetry {
    /// `deques.len() + 1` entries; the last aggregates slotless callers.
    slots: Vec<SlotTelemetry>,
    injector_pushes: AtomicU64,
    injector_pops: AtomicU64,
    /// Per-task execution time, nanoseconds (kernel body, excluding chaos
    /// stalls and queueing).
    exec_ns: Histogram,
}

impl PoolTelemetry {
    fn new(slots: usize) -> PoolTelemetry {
        PoolTelemetry {
            slots: (0..slots).map(|_| SlotTelemetry::default()).collect(),
            injector_pushes: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            exec_ns: Histogram::new(),
        }
    }
}

/// Telemetry of one deque slot (or the slotless-caller aggregate) inside a
/// [`StealPoolStats`] snapshot.
#[derive(Debug, Clone)]
pub struct StealSlotStats {
    pub slot: usize,
    /// `"worker"` for pool threads, `"caller"` for participating callers.
    pub kind: &'static str,
    pub tasks: u64,
    pub steals: u64,
    pub idle_ns: u64,
    /// Peak local-deque depth this window (reset by
    /// [`StealPool::stats_and_reset_window`]).
    pub peak_depth_window: u64,
    pub peak_depth_lifetime: u64,
}

/// Point-in-time aggregate of a pool's telemetry: lifetime counters plus
/// per-window deque-depth peaks and the per-task execution histogram.
#[derive(Debug, Clone)]
pub struct StealPoolStats {
    pub workers: usize,
    /// Tasks executed, summed over slots.
    pub tasks: u64,
    /// Successful peer-deque steals, summed over slots.
    pub steals: u64,
    pub injector_pushes: u64,
    pub injector_pops: u64,
    /// Nanoseconds spent parked waiting for work, summed over slots.
    pub idle_ns: u64,
    /// Slots that have ever executed, stolen, or idled (workers and
    /// callers), in slot order.
    pub per_slot: Vec<StealSlotStats>,
    pub exec_ns: HistogramSnapshot,
}

impl StealPoolStats {
    /// Prometheus text exposition of every pool series, appended to `out`.
    pub fn render_prometheus(&self, out: &mut String) {
        out.push_str("# HELP ramiel_steal_workers background worker threads in the pool\n");
        out.push_str("# TYPE ramiel_steal_workers gauge\n");
        out.push_str(&format!("ramiel_steal_workers {}\n", self.workers));
        let per_slot =
            |out: &mut String, name: &str, help: &str, get: fn(&StealSlotStats) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n"));
                out.push_str(&format!("# TYPE {name} counter\n"));
                for s in &self.per_slot {
                    out.push_str(&format!(
                        "{name}{{slot=\"{}\",kind=\"{}\"}} {}\n",
                        s.slot,
                        s.kind,
                        get(s)
                    ));
                }
            };
        per_slot(
            out,
            "ramiel_steal_tasks_total",
            "tasks executed per deque slot",
            |s| s.tasks,
        );
        per_slot(
            out,
            "ramiel_steal_steals_total",
            "successful peer-deque steals per slot",
            |s| s.steals,
        );
        per_slot(
            out,
            "ramiel_steal_idle_ns_total",
            "nanoseconds parked waiting for work per slot",
            |s| s.idle_ns,
        );
        out.push_str("# HELP ramiel_steal_deque_peak_depth peak local-deque depth this window\n");
        out.push_str("# TYPE ramiel_steal_deque_peak_depth gauge\n");
        for s in &self.per_slot {
            out.push_str(&format!(
                "ramiel_steal_deque_peak_depth{{slot=\"{}\",kind=\"{}\"}} {}\n",
                s.slot, s.kind, s.peak_depth_window
            ));
        }
        out.push_str(
            "# HELP ramiel_steal_injector_pushes_total tasks pushed to the global injector\n",
        );
        out.push_str("# TYPE ramiel_steal_injector_pushes_total counter\n");
        out.push_str(&format!(
            "ramiel_steal_injector_pushes_total {}\n",
            self.injector_pushes
        ));
        out.push_str(
            "# HELP ramiel_steal_injector_pops_total tasks popped from the global injector\n",
        );
        out.push_str("# TYPE ramiel_steal_injector_pops_total counter\n");
        out.push_str(&format!(
            "ramiel_steal_injector_pops_total {}\n",
            self.injector_pops
        ));
        render_histogram_text(
            out,
            "ramiel_steal_task_exec_ns",
            "per-task execution time, nanoseconds",
            &[],
            &self.exec_ns,
        );
    }

    /// One-line human summary for CLI output.
    pub fn text_summary(&self) -> String {
        let steal_pct = if self.tasks > 0 {
            100.0 * self.steals as f64 / self.tasks as f64
        } else {
            0.0
        };
        format!(
            "tasks {} | steals {} ({steal_pct:.1}%) | injector push/pop {}/{} | \
             idle {:.2} ms | exec p50 {} ns p99 {} ns max {} ns",
            self.tasks,
            self.steals,
            self.injector_pushes,
            self.injector_pops,
            self.idle_ns as f64 / 1e6,
            self.exec_ns.percentile(0.5),
            self.exec_ns.percentile(0.99),
            self.exec_ns.max,
        )
    }
}

struct PoolShared {
    /// `workers` worker-owned deques followed by `CALLER_SLOTS` caller
    /// deques. Bottom = back (owner LIFO), top = front (thief FIFO).
    deques: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    workers: usize,
    free_caller_slots: Mutex<Vec<usize>>,
    sleepers: AtomicUsize,
    gate: StdMutex<()>,
    cv: Condvar,
    stop: AtomicBool,
    telemetry: PoolTelemetry,
}

impl PoolShared {
    /// Telemetry slot for an executor identity: deque slot, or the final
    /// aggregate entry for slotless callers.
    fn tel(&self, me: Option<usize>) -> &SlotTelemetry {
        &self.telemetry.slots[me.unwrap_or(self.deques.len())]
    }

    /// Pop in steal order: own deque bottom, then the injector, then peer
    /// deque tops.
    fn next_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(me) = me {
            if let Some(t) = self.deques[me].lock().pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().pop_front() {
            self.telemetry.injector_pops.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map(|m| m + 1).unwrap_or(0);
        for i in 0..n {
            let victim = (start + i) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.deques[victim].lock().pop_front() {
                self.tel(me).steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Push one ready task: to the executor's own deque bottom (LIFO), or
    /// the injector for slotless callers / diverted chaos pushes.
    fn push_local(&self, me: Option<usize>, t: Task) {
        match me {
            Some(me) => self.push_deque(me, t),
            None => {
                self.injector.lock().push_back(t);
                self.telemetry
                    .injector_pushes
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Push onto a specific deque, tracking its depth high-water mark.
    fn push_deque(&self, slot: usize, t: Task) {
        let mut dq = self.deques[slot].lock();
        dq.push_back(t);
        let depth = dq.len() as u64;
        drop(dq);
        self.telemetry.slots[slot].peak_depth.observe(depth);
    }

    fn wake(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    /// Execute one task and release its ready successors. Any panic inside
    /// the node body (injected or genuine) fails the task's job; the
    /// executing thread survives.
    fn exec_task(&self, t: Task, me: Option<usize>) {
        let job = t.job;
        if job.dead.load(Ordering::SeqCst) {
            return;
        }
        let nn = job.plan.nodes.len();
        let (b, n) = ((t.task as usize) / nn, (t.task as usize) % nn);
        let exec_idx = me.unwrap_or(self.deques.len());
        let h = job.chaos.map(|c| mix64(c.seed ^ u64::from(t.task)));
        if let (Some(c), Some(h)) = (job.chaos, h) {
            let stall = h % (c.max_stall_us + 1);
            if stall > 0 {
                std::thread::sleep(Duration::from_micros(stall));
            }
        }
        self.tel(me).tasks.fetch_add(1, Ordering::Relaxed);
        let exec_start = Instant::now();
        let r = catch_unwind(AssertUnwindSafe(|| run_node(&job, b, n, exec_idx)));
        self.telemetry
            .exec_ns
            .record(exec_start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        match r {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                job.fail(e);
                return;
            }
            Err(payload) => {
                job.fail(panic_to_error(Some(exec_idx), payload));
                return;
            }
        }
        if job.completed.fetch_add(1, Ordering::SeqCst) + 1 == job.total {
            job.finish();
            return;
        }
        // Release successors whose last dependency this was, newly-ready
        // tasks going LIFO to the executor's own deque.
        let mut ready: Vec<u32> = Vec::new();
        for &s in &job.plan.nodes[n].succs {
            let st = (b * nn + s as usize) as u32;
            if job.pending[st as usize].fetch_sub(1, Ordering::SeqCst) == 1 {
                ready.push(st);
            }
        }
        if ready.is_empty() {
            return;
        }
        let mut divert = false;
        if let Some(h) = h {
            // Placement permutation: rotate the push order and occasionally
            // divert the whole set to the injector, so different seeds give
            // different steal orders.
            let rot = ((h >> 24) as usize) % ready.len();
            ready.rotate_left(rot);
            divert = (h >> 40) & 3 == 0;
        }
        let target = if divert { None } else { me };
        let pushed = ready.len();
        for st in ready {
            self.push_local(
                target,
                Task {
                    job: Arc::clone(&job),
                    task: st,
                },
            );
        }
        // Keep one successor's worth of work for ourselves implicitly (we
        // just pushed LIFO and will pop it next); wake peers for the rest.
        if pushed > 1 || target.is_none() {
            self.wake();
        }
    }
}

/// Sleep an injected delay, bounded by the job's deadline: the stall fires
/// (faithfully to the fault plan) but can never drag a run past its recv
/// timeout, because the stalled thread may be the only one enforcing it.
fn bounded_stall(job: &JobInner, d: Duration) -> Result<()> {
    let end = Instant::now() + d;
    loop {
        if job.dead.load(Ordering::SeqCst) {
            return Ok(()); // the job already failed; no point stalling on
        }
        let now = Instant::now();
        if now >= end {
            return Ok(());
        }
        if now >= job.deadline {
            return Err(RuntimeError::Timeout {
                cluster: None,
                pending_ops: job.total - job.completed.load(Ordering::SeqCst),
                detail: "injected stall exceeded the work-stealing run's recv timeout".into(),
            });
        }
        std::thread::sleep(
            (end - now)
                .min(job.deadline - now)
                .min(Duration::from_millis(1)),
        );
    }
}

/// The node body: arm faults, gather operands (honoring in-place marks),
/// evaluate, publish outputs to slots, consume inputs. Mirrors
/// `parallel::worker_loop` minus the channels.
fn run_node(job: &JobInner, b: usize, n: usize, exec_idx: usize) -> Result<()> {
    let plan = &*job.plan;
    let node = &plan.nodes[n];
    let init_values = &*job.init;

    // Fault injection: arm this execution's faults, if any. DropMessage is
    // a no-op (no channels to drop from), as in the sequential executor.
    let armed = match &job.injector {
        Some(inj) => inj.begin_node(node.id, b),
        None => Vec::new(),
    };
    let mut kernel_fault = false;
    let mut send_delay = None;
    for kind in &armed {
        job.obs.instant(
            exec_idx as u32,
            format!("fault:{}", kind.name()),
            "fault",
            serde_json::json!({ "node": node.id, "batch": b }),
        );
        match kind {
            FaultKind::KernelError => kernel_fault = true,
            FaultKind::WorkerPanic => std::panic::panic_any(InjectedPanic {
                node: node.id,
                cluster: Some(exec_idx),
            }),
            FaultKind::SendDelay { millis } => send_delay = Some(Duration::from_millis(*millis)),
            FaultKind::RecvDelay { millis } => bounded_stall(job, Duration::from_millis(*millis))?,
            FaultKind::DropMessage => {}
        }
    }

    let outputs = if matches!(node.op, OpKind::Constant) {
        if kernel_fault {
            return Err(RuntimeError::Injected {
                cluster: Some(exec_idx),
                node: node.id,
                kind: FaultKind::KernelError,
            });
        }
        let name = &plan.slot_names[node.out_slots[0] as usize];
        let v = init_values.get(name).ok_or_else(|| {
            RuntimeError::Setup(format!("Constant `{}` missing payload", node.name))
        })?;
        vec![v.clone()]
    } else {
        // A node marked by the in-place pass takes its dying operand *out*
        // of its slot (sole remaining read), so the kernel's `Arc::get_mut`
        // gate can overwrite the buffer in place.
        let mark = if job.reuse {
            plan.marks.slot(node.id)
        } else {
            None
        };
        let mut owned_slot = None;
        let ins: Result<Vec<Value>> = node
            .inputs
            .iter()
            .enumerate()
            .map(|(i, src)| match src {
                InSrc::Slot(base) => {
                    let mut sl = job.slot(b, *base).lock();
                    if mark == Some(i) && sl.remaining == 1 {
                        if let Some(v) = sl.val.take() {
                            owned_slot = Some(i);
                            return Ok(v);
                        }
                    }
                    sl.val.clone().ok_or_else(|| {
                        RuntimeError::Setup(format!(
                            "task ({b}, {n}): operand `{}` missing from its slot",
                            plan.slot_names[*base as usize]
                        ))
                    })
                }
                InSrc::External(name) => job.inputs[b]
                    .get(name)
                    .or_else(|| init_values.get(name))
                    .cloned()
                    .ok_or_else(|| {
                        RuntimeError::Setup(format!("task ({b}, {n}): tensor `{name}` unavailable"))
                    }),
            })
            .collect();
        let hooked;
        let eval_ctx = if kernel_fault {
            hooked = FaultInjector::kernel_fault_ctx(&job.ctx, Some(exec_idx), node.id);
            &hooked
        } else {
            &job.ctx
        };
        match owned_slot {
            Some(s) => eval_op_inplace(eval_ctx, &node.op, ins?, s),
            None => eval_op(eval_ctx, &node.op, &ins?),
        }
        .map_err(|e| {
            if e.0.starts_with(INJECT_MARKER) {
                RuntimeError::Injected {
                    cluster: Some(exec_idx),
                    node: node.id,
                    kind: FaultKind::KernelError,
                }
            } else {
                RuntimeError::Kernel {
                    cluster: Some(exec_idx),
                    node: Some(node.id),
                    msg: format!("{}: {}", node.name, e.0),
                }
            }
        })?
    };

    if let Some(d) = send_delay {
        bounded_stall(job, d)?;
    }
    if job.dead.load(Ordering::SeqCst) {
        return Ok(()); // a peer already failed the job; don't publish
    }
    for (&base, v) in node.out_slots.iter().zip(outputs) {
        let bytes = charge_bytes(&node.op, &v);
        if plan.slot_is_output[base as usize] {
            job.out_envs.lock()[b].insert(plan.slot_names[base as usize].clone(), v.clone());
        }
        let mut sl = job.slot(b, base).lock();
        if let Some(g) = &job.gauge {
            g.alloc(bytes as usize);
            if sl.charged > 0 {
                g.free(sl.charged as usize); // defensive: never double-charge
            }
        }
        sl.charged = bytes;
        if sl.remaining == 0 {
            // No reader and not a graph output: charged and immediately
            // dead, matching the estimator (which samples the peak after
            // production, before eviction).
            if let Some(g) = &job.gauge {
                g.free(bytes as usize);
            }
            sl.charged = 0;
        } else {
            sl.val = Some(v);
        }
    }
    if job.reuse {
        for src in &node.inputs {
            if let InSrc::Slot(base) = src {
                let mut sl = job.slot(b, *base).lock();
                sl.remaining = sl.remaining.saturating_sub(1);
                if sl.remaining == 0 {
                    sl.val = None;
                    if sl.charged > 0 {
                        if let Some(g) = &job.gauge {
                            g.free(sl.charged as usize);
                        }
                        sl.charged = 0;
                    }
                }
            }
        }
    }
    Ok(())
}

fn worker_main(shared: Arc<PoolShared>, w: usize) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if let Some(t) = shared.next_task(Some(w)) {
            shared.exec_task(t, Some(w));
            continue;
        }
        // Park: register as a sleeper, re-scan under the gate so a push
        // that races our scan either lands before it or blocks on the gate
        // until we are inside `wait_timeout`.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let idle_start = Instant::now();
        {
            let g = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            if !shared.stop.load(Ordering::SeqCst) && shared.scan_is_empty() {
                let _ = shared
                    .cv
                    .wait_timeout(g, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        shared.telemetry.slots[w]
            .idle_ns
            .fetch_add(idle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl PoolShared {
    fn scan_is_empty(&self) -> bool {
        if !self.injector.lock().is_empty() {
            return false;
        }
        self.deques.iter().all(|d| d.lock().is_empty())
    }
}

/// A persistent work-stealing pool. One process-wide instance
/// ([`StealPool::global`]) serves every `run_stealing*` call — no per-run
/// thread spawn — but private pools can be built for tests.
pub struct StealPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Background worker count: `RAMIEL_STEAL_WORKERS` or
/// `available_parallelism - 1` (the caller participates), clamped to
/// [1, 8].
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RAMIEL_STEAL_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.clamp(1, 64);
        }
        ramiel_obs::warn(
            "RT-ENV",
            format!("ignoring unparsable RAMIEL_STEAL_WORKERS=`{v}`"),
        );
    }
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(3)
        .clamp(1, 8)
}

impl StealPool {
    /// Build a private pool with `workers` background threads.
    pub fn new(workers: usize) -> StealPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers + CALLER_SLOTS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            workers,
            free_caller_slots: Mutex::new((workers..workers + CALLER_SLOTS).collect()),
            sleepers: AtomicUsize::new(0),
            gate: StdMutex::new(()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            telemetry: PoolTelemetry::new(workers + CALLER_SLOTS + 1),
        });
        let handles = (0..workers)
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ramiel-steal-{w}"))
                    .spawn(move || worker_main(sh, w))
                    .expect("spawn steal worker")
            })
            .collect();
        StealPool { shared, handles }
    }

    /// The process-wide pool, spawned on first use.
    pub fn global() -> &'static StealPool {
        static POOL: OnceLock<StealPool> = OnceLock::new();
        POOL.get_or_init(|| StealPool::new(default_workers()))
    }

    pub fn num_workers(&self) -> usize {
        self.shared.workers
    }

    /// Telemetry snapshot: lifetime counters, current-window deque-depth
    /// peaks, per-task execution histogram.
    pub fn stats(&self) -> StealPoolStats {
        self.snapshot_stats(false)
    }

    /// [`StealPool::stats`], additionally starting a fresh window on every
    /// per-window gauge (interval-delta semantics for periodic scrapes).
    pub fn stats_and_reset_window(&self) -> StealPoolStats {
        self.snapshot_stats(true)
    }

    fn snapshot_stats(&self, reset_windows: bool) -> StealPoolStats {
        let tel = &self.shared.telemetry;
        let workers = self.shared.workers;
        let mut per_slot = Vec::new();
        let (mut tasks, mut steals, mut idle_ns) = (0u64, 0u64, 0u64);
        for (slot, s) in tel.slots.iter().enumerate() {
            let (t, st, idle) = (
                s.tasks.load(Ordering::Relaxed),
                s.steals.load(Ordering::Relaxed),
                s.idle_ns.load(Ordering::Relaxed),
            );
            tasks += t;
            steals += st;
            idle_ns += idle;
            let lifetime = s.peak_depth.lifetime();
            if t == 0 && st == 0 && idle == 0 && lifetime == 0 {
                continue; // slot never used (most caller slots)
            }
            per_slot.push(StealSlotStats {
                slot,
                kind: if slot < workers { "worker" } else { "caller" },
                tasks: t,
                steals: st,
                idle_ns: idle,
                peak_depth_window: if reset_windows {
                    s.peak_depth.take_window()
                } else {
                    s.peak_depth.window()
                },
                peak_depth_lifetime: lifetime,
            });
        }
        StealPoolStats {
            workers,
            tasks,
            steals,
            injector_pushes: tel.injector_pushes.load(Ordering::Relaxed),
            injector_pops: tel.injector_pops.load(Ordering::Relaxed),
            idle_ns,
            per_slot,
            exec_ns: tel.exec_ns.snapshot(),
        }
    }

    /// Execute one planned run. The calling thread participates: it claims
    /// a deque slot, seeds root tasks by locality hint (cluster 0 stays
    /// local, others spread over the workers), executes and steals alongside
    /// the pool, and enforces the recv-timeout deadline. On success the
    /// graph outputs are returned and every gauge charge has been released.
    pub fn run_plan(
        &self,
        plan: &Arc<StealPlan>,
        inputs: &[Env],
        ctx: &ExecCtx,
        opts: &RunOptions,
    ) -> Result<Vec<Env>> {
        if inputs.len() != plan.batch {
            return Err(RuntimeError::Setup(format!(
                "steal plan expects {} input envs, got {}",
                plan.batch,
                inputs.len()
            )));
        }
        let mut run_span = opts.obs.span(0, "steal:run", "steal");
        if let Some(ids) = &opts.request_ids {
            run_span.set_args(serde_json::json!({ "requests": &ids[..] }));
        }
        let mut opts_eff = opts.clone();
        if opts_eff.init_values.is_none() {
            opts_eff.init_values = Some(Arc::clone(&plan.init_values));
        }
        let init_values = opts_eff.init_values.clone().expect("just set");
        let backfill = |outs: &mut Vec<Env>| {
            // Outputs that are direct inputs/initializers (degenerate but
            // legal).
            for (b, env) in outs.iter_mut().enumerate() {
                for name in &plan.graph_outputs {
                    if !env.contains_key(name) {
                        if let Some(v) = inputs[b].get(name).or_else(|| init_values.get(name)) {
                            env.insert(name.clone(), v.clone());
                        }
                    }
                }
            }
        };
        if plan.nodes.is_empty() {
            let mut outs = vec![Env::new(); plan.batch];
            backfill(&mut outs);
            return Ok(outs);
        }

        let timeout = opts_eff.recv_timeout.unwrap_or_else(default_recv_timeout);
        let deadline = Instant::now() + timeout;
        let job = Arc::new(JobInner::new(
            plan,
            inputs.to_vec(),
            ctx,
            &opts_eff,
            deadline,
        ));

        let me = self.shared.free_caller_slots.lock().pop();
        // Seed roots by locality hint: cluster 0 (the longest chain) stays
        // on the caller's deque, other clusters round-robin over workers.
        let nn = plan.nodes.len();
        let mut seeded_remote = false;
        for b in 0..plan.batch {
            for &r in &plan.roots {
                let tid = (b * nn + r as usize) as u32;
                let hint = plan.hints[tid as usize];
                let t = Task {
                    job: Arc::clone(&job),
                    task: tid,
                };
                if hint == 0 && me.is_some() {
                    self.shared.push_local(me, t);
                } else if hint == u32::MAX {
                    self.shared.push_local(None, t);
                    seeded_remote = true;
                } else {
                    let w = (hint as usize).saturating_sub(1) % self.shared.workers;
                    self.shared.push_deque(w, t);
                    seeded_remote = true;
                }
            }
        }
        if seeded_remote {
            self.shared.wake();
        }

        let result =
            loop {
                if job.done.load(Ordering::SeqCst) {
                    break Ok(());
                }
                if job.dead.load(Ordering::SeqCst) {
                    break Err(job.err.lock().clone().unwrap_or_else(|| {
                        RuntimeError::Setup("job died without an error".into())
                    }));
                }
                if let Some(t) = self.shared.next_task(me) {
                    self.shared.exec_task(t, me);
                    continue;
                }
                if Instant::now() >= deadline {
                    job.fail(RuntimeError::Timeout {
                        cluster: None,
                        pending_ops: job.total - job.completed.load(Ordering::SeqCst),
                        detail: format!(
                            "work-stealing run exceeded its {}ms recv timeout",
                            timeout.as_millis()
                        ),
                    });
                    continue; // loop observes `dead` and reports the error
                }
                let idle_start = Instant::now();
                let g = job.wait_m.lock().unwrap_or_else(|e| e.into_inner());
                if !job.done.load(Ordering::SeqCst) && !job.dead.load(Ordering::SeqCst) {
                    let _ = job
                        .wait_cv
                        .wait_timeout(g, Duration::from_micros(200))
                        .unwrap_or_else(|e| e.into_inner());
                }
                self.shared
                    .tel(me)
                    .idle_ns
                    .fetch_add(idle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            };

        // Hand the slot back; any foreign tasks our deque accumulated go to
        // the injector so their jobs keep making progress. Tasks of a dead
        // job are dropped on pop by `exec_task`.
        if let Some(m) = me {
            let drained: Vec<Task> = self.shared.deques[m].lock().drain(..).collect();
            if !drained.is_empty() {
                let mut inj = self.shared.injector.lock();
                for t in drained {
                    inj.push_back(t);
                }
                drop(inj);
                self.shared.wake();
            }
            self.shared.free_caller_slots.lock().push(m);
        }

        result?;
        let mut outs = std::mem::take(&mut *job.out_envs.lock());
        job.finalize();
        backfill(&mut outs);
        Ok(outs)
    }
}

impl Drop for StealPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Execute a batch-1 run on the global work-stealing pool, using the
/// clustering only as locality hints. Returns the graph outputs.
pub fn run_stealing(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
) -> Result<Env> {
    run_stealing_opts(graph, clustering, inputs, ctx, &RunOptions::default())
}

/// [`run_stealing`] with explicit [`RunOptions`].
pub fn run_stealing_opts(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<Env> {
    let plan = Arc::new(StealPlan::new(graph, clustering, 1)?);
    let mut outs = StealPool::global().run_plan(&plan, std::slice::from_ref(inputs), ctx, opts)?;
    Ok(outs.pop().expect("batch 1 yields one output env"))
}

/// Execute a hyperclustered batch on the global work-stealing pool
/// (hypercluster assignments become per-(batch, node) locality hints).
pub fn run_hyper_stealing(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
) -> Result<Vec<Env>> {
    run_hyper_stealing_opts(graph, hc, inputs, ctx, &RunOptions::default())
}

/// [`run_hyper_stealing`] with explicit [`RunOptions`].
pub fn run_hyper_stealing_opts(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<Vec<Env>> {
    let plan = Arc::new(StealPlan::from_hyper(graph, hc)?);
    StealPool::global().run_plan(&plan, inputs, ctx, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::fault::{Fault, FaultPlan};
    use crate::synth_inputs;
    use ramiel_cluster::{cluster_graph, switched_hypercluster, StaticCost};
    use ramiel_models::{build, synthetic, ModelConfig, ModelKind};

    #[test]
    fn stealing_matches_sequential_on_every_model() {
        let cfg = ModelConfig::tiny();
        let ctx = ExecCtx::sequential();
        for kind in ModelKind::all() {
            let g = build(kind, &cfg);
            let clustering = cluster_graph(&g, &StaticCost);
            let inputs = synth_inputs(&g, 5);
            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
            let steal = run_stealing(&g, &clustering, &inputs, &ctx)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(seq, steal, "{}", kind.name());
        }
    }

    #[test]
    fn hyper_stealing_matches_per_sample_sequential() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let hc = switched_hypercluster(&clustering, 3);
        let inputs: Vec<Env> = (0..3).map(|b| synth_inputs(&g, 60 + b as u64)).collect();
        let outs = run_hyper_stealing(&g, &hc, &inputs, &ctx).unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let seq = run_sequential(&g, inp, &ctx).unwrap();
            assert_eq!(seq, outs[b], "batch {b}");
        }
    }

    #[test]
    fn plan_is_reusable_across_runs_and_pools() {
        let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let plan = Arc::new(StealPlan::new(&g, &clustering, 1).unwrap());
        let pool = StealPool::new(2);
        let inputs = synth_inputs(&g, 9);
        let opts = RunOptions::default();
        let a = pool
            .run_plan(&plan, std::slice::from_ref(&inputs), &ctx, &opts)
            .unwrap();
        let b = StealPool::global()
            .run_plan(&plan, std::slice::from_ref(&inputs), &ctx, &opts)
            .unwrap();
        assert_eq!(a, b);
        drop(pool); // private pool joins its workers cleanly
    }

    #[test]
    fn chaos_stalls_and_permutations_do_not_change_outputs() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let inputs = synth_inputs(&g, 17);
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        for seed in 0..16 {
            let opts = RunOptions::default().steal_chaos(StealChaos {
                seed,
                max_stall_us: 200,
            });
            let got = run_stealing_opts(&g, &clustering, &inputs, &ctx, &opts).unwrap();
            assert_eq!(seq, got, "seed {seed}");
        }
    }

    #[test]
    fn injected_kernel_fault_is_structured() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 11);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 2,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::KernelError,
            }],
        });
        let opts = RunOptions::with_injector(inj.clone());
        let err =
            run_stealing_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT", "got {err}");
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn timeout_reports_pending_ops_and_frees_the_caller() {
        // A RecvDelay far beyond the recv timeout: the caller must return
        // with RT-TIMEOUT instead of waiting the stall out.
        let g = synthetic::chain(6);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 3);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 2,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::RecvDelay { millis: 2_000 },
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_millis(100));
        let start = Instant::now();
        let err =
            run_stealing_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-TIMEOUT", "got {err}");
        assert!(
            start.elapsed() < Duration::from_millis(1_500),
            "caller waited out the injected stall"
        );
        match err {
            RuntimeError::Timeout { pending_ops, .. } => assert!(pending_ops > 0),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn gauge_reads_zero_after_success() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let gauge = MemGauge::new();
        let ctx = ExecCtx::sequential().with_mem_gauge(gauge.clone());
        let inputs = synth_inputs(&g, 5);
        run_stealing(&g, &clustering, &inputs, &ctx).unwrap();
        assert_eq!(gauge.live_bytes(), 0);
        assert!(gauge.peak_bytes() > 0);
    }

    #[test]
    fn telemetry_counts_tasks_and_window_resets() {
        let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let plan = Arc::new(StealPlan::new(&g, &clustering, 1).unwrap());
        let pool = StealPool::new(2);
        let inputs = synth_inputs(&g, 21);
        let before = pool.stats();
        pool.run_plan(
            &plan,
            std::slice::from_ref(&inputs),
            &ctx,
            &RunOptions::default(),
        )
        .unwrap();
        let after = pool.stats_and_reset_window();
        let ran = after.tasks - before.tasks;
        assert_eq!(ran as usize, plan.num_tasks(), "every task counted once");
        assert_eq!(after.exec_ns.count, after.tasks, "one exec sample per task");
        assert!(after.exec_ns.sum > 0);
        assert!(after.exec_ns.percentile(0.99) >= after.exec_ns.percentile(0.5));
        // Seeding spread work across worker deques and/or the injector.
        assert!(after.injector_pushes + after.per_slot.iter().map(|s| s.tasks).sum::<u64>() > 0);
        // Windows were reset by the snapshot above; lifetime peaks persist.
        let again = pool.stats();
        assert!(again.per_slot.iter().all(|s| s.peak_depth_window == 0));
        assert_eq!(
            again.per_slot.iter().map(|s| s.peak_depth_lifetime).max(),
            after.per_slot.iter().map(|s| s.peak_depth_lifetime).max()
        );
        // Prometheus rendering carries the counters and the histogram.
        let mut text = String::new();
        after.render_prometheus(&mut text);
        assert!(text.contains("ramiel_steal_tasks_total"));
        assert!(text.contains("ramiel_steal_task_exec_ns_count"));
        let parsed = ramiel_obs::parse_prometheus(&text);
        let total: f64 = parsed
            .iter()
            .filter(|s| s.name == "ramiel_steal_tasks_total")
            .map(|s| s.value)
            .sum();
        assert_eq!(total as u64, after.tasks);
    }

    #[test]
    fn wrong_batch_count_rejected() {
        let g = synthetic::chain(3);
        let clustering = cluster_graph(&g, &StaticCost);
        let hc = ramiel_cluster::hypercluster(&clustering, 2);
        let inputs = vec![synth_inputs(&g, 0)];
        let err = run_hyper_stealing(&g, &hc, &inputs, &ExecCtx::sequential()).unwrap_err();
        assert_eq!(err.code(), "RT-SETUP");
    }
}
