//! # ramiel-runtime
//!
//! Executes dataflow graphs — the stand-in for the paper's PyTorch + Python
//! substrate.
//!
//! - [`exec`] — reference sequential executor (the paper's auto-generated
//!   single-core code path).
//! - [`parallel`] — one OS thread per cluster, crossbeam channels for every
//!   cross-cluster tensor dependence (the paper's Python processes and
//!   bidirectional queues). Also executes hyperclusters (batch > 1).
//! - [`profile`] — the paper's profiling database: per-node times plus the
//!   *slack* spent blocked in `queue.get()` that motivates hyperclustering.
//! - [`sim`] — a deterministic discrete-event simulator over a cost model,
//!   used to regenerate the paper's tables bit-for-bit without timing noise.

pub mod exec;
pub mod memory;
pub mod parallel;
pub mod pool;
pub mod profile;
pub mod sim;

pub use exec::run_sequential;
pub use memory::{clustering_peak_memory, sequential_peak_memory, MemoryReport};
pub use parallel::{run_hyper, run_parallel};
pub use pool::ClusterPool;
pub use profile::{ProfileDb, SlackReport};
pub use sim::{
    simulate_clustering, simulate_hyper, simulate_sequential, SimConfig, SimEvent, SimResult,
};

use ramiel_tensor::Value;
use std::collections::BTreeMap;

/// Named tensor environment used for graph inputs and outputs.
pub type Env = BTreeMap<String, Value>;

/// Runtime error (wraps kernel and structural failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

impl From<ramiel_tensor::ExecError> for RuntimeError {
    fn from(e: ramiel_tensor::ExecError) -> Self {
        RuntimeError(e.0)
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Fabricate deterministic inputs for a graph (random f32 activations,
/// small non-negative i64 ids) — used by tests, examples and benches.
pub fn synth_inputs(graph: &ramiel_ir::Graph, seed: u64) -> Env {
    use ramiel_ir::DType;
    let mut env = Env::new();
    for (i, inp) in graph.inputs.iter().enumerate() {
        let s = seed.wrapping_add(i as u64 * 7919);
        let v = match inp.dtype {
            DType::F32 => Value::random_f32(inp.shape.clone(), s),
            DType::I64 => {
                // ids in [0, 64) so embedding gathers stay in range
                let f = Value::random_f32(inp.shape.clone(), s);
                let data: Vec<i64> = f
                    .f32()
                    .expect("random_f32 yields f32")
                    .data()
                    .iter()
                    .map(|v| ((v.abs() * 1e4) as i64) % 64)
                    .collect();
                Value::I64(
                    ramiel_tensor::Tensor::new(inp.shape.clone(), data)
                        .expect("shape matches by construction"),
                )
            }
            DType::Bool => {
                let f = Value::random_f32(inp.shape.clone(), s);
                let data: Vec<bool> = f
                    .f32()
                    .expect("random_f32 yields f32")
                    .data()
                    .iter()
                    .map(|v| *v > 0.0)
                    .collect();
                Value::Bool(
                    ramiel_tensor::Tensor::new(inp.shape.clone(), data)
                        .expect("shape matches by construction"),
                )
            }
        };
        env.insert(inp.name.clone(), v);
    }
    env
}
