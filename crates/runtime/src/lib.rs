//! # ramiel-runtime
//!
//! Executes dataflow graphs — the stand-in for the paper's PyTorch + Python
//! substrate.
//!
//! - [`exec`] — reference sequential executor (the paper's auto-generated
//!   single-core code path).
//! - [`parallel`] — one OS thread per cluster, crossbeam channels for every
//!   cross-cluster tensor dependence (the paper's Python processes and
//!   bidirectional queues). Also executes hyperclusters (batch > 1).
//! - [`profile`] — the paper's profiling database: per-node times plus the
//!   *slack* spent blocked in `queue.get()` that motivates hyperclustering.
//! - [`sim`] — a deterministic discrete-event simulator over a cost model,
//!   used to regenerate the paper's tables bit-for-bit without timing noise.

pub mod exec;
pub mod fault;
pub mod hyperpool;
pub mod limits;
pub mod memory;
pub mod parallel;
pub mod pool;
pub mod predict;
pub mod profile;
pub mod reuse;
pub mod sim;
pub mod stealing;
pub mod supervisor;

pub use exec::{run_sequential, run_sequential_opts, run_sequential_profiled};
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan};
pub use hyperpool::{HyperPool, PlannedBatch};
pub use memory::{clustering_peak_memory, sequential_peak_memory, MemoryReport};
pub use parallel::{
    run_hyper, run_hyper_opts, run_hyper_profiled, run_hyper_profiled_opts, run_parallel,
    run_parallel_opts, run_parallel_profiled, run_parallel_profiled_opts, RunOptions,
};
pub use pool::ClusterPool;
pub use predict::{predict_report, ClusterPrediction, KindPrediction, PredictionReport};
pub use profile::{OpRecord, ProfileDb, SlackReport, WorkerSpan};
pub use ramiel_tensor::KernelBackend;
pub use sim::{
    simulate_clustering, simulate_hyper, simulate_sequential, SimConfig, SimEvent, SimResult,
};
pub use stealing::{
    run_hyper_stealing, run_hyper_stealing_opts, run_stealing, run_stealing_opts, StealChaos,
    StealPlan, StealPool, StealPoolStats, StealSlotStats,
};
pub use supervisor::{
    run_hyper_stealing_supervised_opts, run_hyper_supervised, run_hyper_supervised_opts,
    run_stealing_supervised_opts, run_supervised, run_supervised_opts, RunReport, SupervisorConfig,
};

use ramiel_tensor::Value;
use std::collections::BTreeMap;

/// Named tensor environment used for graph inputs and outputs.
pub type Env = BTreeMap<String, Value>;

/// Payload size of a tensor value in bytes (used by channel metering and
/// the liveness gauge).
pub fn value_bytes(v: &Value) -> u64 {
    let elem = match v.dtype() {
        ramiel_ir::DType::F32 => 4,
        ramiel_ir::DType::I64 => 8,
        ramiel_ir::DType::Bool => 1,
    };
    v.numel() as u64 * elem
}

/// Bytes actually copied when a `Value` crosses a channel: the enum header
/// plus the tensor's shape vector. The element buffer itself is an
/// `Arc`-shared allocation, so cloning it is a refcount bump, not a copy —
/// this is the number `ChannelMeter` records as `copied_bytes` next to the
/// logical payload size from [`value_bytes`].
pub(crate) fn value_copied_bytes(v: &Value) -> u64 {
    (std::mem::size_of::<Value>() + std::mem::size_of_val(v.shape())) as u64
}

/// Convert a graph's initializer table into runtime `Value`s **once** and
/// share the result. Every executor needs the weights as `Value`s; before
/// this helper each of them rebuilt (deep-copied) the table per run — and
/// the channel workers re-copied entries per fetch. Build it once, hand the
/// `Arc` to [`RunOptions`](parallel::RunOptions::init_values) (or let each
/// run build its own), and every weight fetch becomes a refcount bump on
/// the shared buffers.
pub fn initializer_values(
    graph: &ramiel_ir::Graph,
) -> Result<std::sync::Arc<std::collections::HashMap<String, Value>>> {
    let map: std::collections::HashMap<String, Value> = graph
        .initializers
        .iter()
        .map(|(name, td)| Ok((name.clone(), Value::from_tensor_data(td)?)))
        .collect::<Result<_>>()?;
    Ok(std::sync::Arc::new(map))
}

/// Structured runtime error. Every variant names where the failure happened
/// (`cluster` is the worker/hypercluster index where applicable) so chaos
/// tests and supervisors can act on the *kind* of failure instead of parsing
/// strings. `Display` output keeps the historical `runtime error: …` prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Kernel or data failure while evaluating a node. `msg` carries the
    /// node-name-prefixed kernel message (the pre-enum format string).
    Kernel {
        cluster: Option<usize>,
        node: Option<usize>,
        msg: String,
    },
    /// A channel endpoint disappeared: a peer hung up mid-send, or the run
    /// was aborted after a failure in another worker.
    ChannelClosed {
        cluster: Option<usize>,
        detail: String,
    },
    /// A worker thread panicked (payload captured by the supervisor).
    WorkerPanic {
        cluster: Option<usize>,
        node: Option<usize>,
        detail: String,
    },
    /// A worker (or the pool's result collector, `cluster: None`) gave up
    /// waiting for messages: deadlocked schedule, dropped message, or a peer
    /// too slow for the configured recv timeout.
    Timeout {
        cluster: Option<usize>,
        pending_ops: usize,
        detail: String,
    },
    /// A deliberately injected fault surfaced as this run's failure.
    Injected {
        cluster: Option<usize>,
        node: usize,
        kind: fault::FaultKind,
    },
    /// Setup/schedule-level failure before execution started (bad batch
    /// count, uncovered node, topology error, …).
    Setup(String),
}

/// Detail string marking secondary abort errors (peers torn down after the
/// first failure); the join path ranks these below the root cause.
pub(crate) const ABORT_DETAIL: &str = "aborted after failure in another worker";

impl RuntimeError {
    /// Stable machine-readable code, mirroring ramiel-verify's RV-codes.
    pub fn code(&self) -> &'static str {
        match self {
            RuntimeError::Kernel { .. } => "RT-KERNEL",
            RuntimeError::ChannelClosed { .. } => "RT-CHANNEL",
            RuntimeError::WorkerPanic { .. } => "RT-PANIC",
            RuntimeError::Timeout { .. } => "RT-TIMEOUT",
            RuntimeError::Injected { .. } => "RT-INJECT",
            RuntimeError::Setup(_) => "RT-SETUP",
        }
    }

    /// Whether a supervised retry can plausibly succeed. Genuine kernel
    /// errors and setup errors are deterministic, so retrying is futile —
    /// transient-shaped failures (timeouts, panics, closed channels) and
    /// injected faults (which are keyed to an execution index and thus
    /// don't re-fire) are retryable.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, RuntimeError::Kernel { .. } | RuntimeError::Setup(_))
    }

    /// True for the secondary errors peers report after another worker
    /// already failed; the join path prefers the root cause over these.
    pub fn is_abort(&self) -> bool {
        matches!(self, RuntimeError::ChannelClosed { detail, .. } if detail == ABORT_DETAIL)
    }

    /// Ranking used when several workers fail in one run: lower is closer
    /// to the root cause.
    pub(crate) fn severity_rank(&self) -> u8 {
        if self.is_abort() {
            return 3;
        }
        match self {
            RuntimeError::Kernel { .. }
            | RuntimeError::WorkerPanic { .. }
            | RuntimeError::Injected { .. }
            | RuntimeError::Setup(_) => 0,
            RuntimeError::Timeout { .. } => 1,
            RuntimeError::ChannelClosed { .. } => 2,
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: ")?;
        match self {
            RuntimeError::Kernel { cluster, msg, .. } => match cluster {
                Some(c) => write!(f, "{msg} (cluster {c})"),
                None => write!(f, "{msg}"),
            },
            RuntimeError::ChannelClosed { cluster, detail } => match cluster {
                Some(c) => write!(f, "{detail} (cluster {c})"),
                None => write!(f, "{detail}"),
            },
            RuntimeError::WorkerPanic {
                cluster,
                node,
                detail,
            } => {
                write!(f, "worker panicked")?;
                if let Some(c) = cluster {
                    write!(f, " (cluster {c}")?;
                    if let Some(n) = node {
                        write!(f, ", node {n}")?;
                    }
                    write!(f, ")")?;
                }
                if !detail.is_empty() {
                    write!(f, ": {detail}")?;
                }
                Ok(())
            }
            RuntimeError::Timeout {
                cluster,
                pending_ops,
                detail,
            } => match cluster {
                Some(c) => write!(f, "{detail} (cluster {c}, {pending_ops} ops left)"),
                None => write!(f, "{detail} ({pending_ops} ops left)"),
            },
            RuntimeError::Injected {
                cluster,
                node,
                kind,
            } => {
                write!(f, "injected {kind} at node {node}")?;
                if let Some(c) = cluster {
                    write!(f, " (cluster {c})")?;
                }
                Ok(())
            }
            RuntimeError::Setup(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ramiel_tensor::ExecError> for RuntimeError {
    fn from(e: ramiel_tensor::ExecError) -> Self {
        RuntimeError::Kernel {
            cluster: None,
            node: None,
            msg: e.0,
        }
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Fabricate deterministic inputs for a graph (random f32 activations,
/// small non-negative i64 ids) — used by tests, examples and benches.
pub fn synth_inputs(graph: &ramiel_ir::Graph, seed: u64) -> Env {
    use ramiel_ir::DType;
    let mut env = Env::new();
    for (i, inp) in graph.inputs.iter().enumerate() {
        let s = seed.wrapping_add(i as u64 * 7919);
        let v = match inp.dtype {
            DType::F32 => Value::random_f32(inp.shape.clone(), s),
            DType::I64 => {
                // ids in [0, 64) so embedding gathers stay in range
                let f = Value::random_f32(inp.shape.clone(), s);
                let data: Vec<i64> = f
                    .f32()
                    .expect("random_f32 yields f32")
                    .data()
                    .iter()
                    .map(|v| ((v.abs() * 1e4) as i64) % 64)
                    .collect();
                Value::I64(
                    ramiel_tensor::Tensor::new(inp.shape.clone(), data)
                        .expect("shape matches by construction"),
                )
            }
            DType::Bool => {
                let f = Value::random_f32(inp.shape.clone(), s);
                let data: Vec<bool> = f
                    .f32()
                    .expect("random_f32 yields f32")
                    .data()
                    .iter()
                    .map(|v| *v > 0.0)
                    .collect();
                Value::Bool(
                    ramiel_tensor::Tensor::new(inp.shape.clone(), data)
                        .expect("shape matches by construction"),
                )
            }
        };
        env.insert(inp.name.clone(), v);
    }
    env
}
