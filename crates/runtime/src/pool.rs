//! Persistent cluster-worker pool.
//!
//! [`crate::run_parallel`] spawns one thread per cluster *per inference* —
//! fine for measurement, wasteful for serving. The paper's generated code
//! forks long-lived Python processes once and reuses them; [`ClusterPool`]
//! is that shape: workers spawn once (weights pre-converted and shared),
//! then every [`ClusterPool::run`] call streams one inference through the
//! standing workers. Messages are tagged with a job id so back-to-back
//! inferences cannot cross-talk.
//!
//! ## Failure semantics
//!
//! A failing or panicking job must not kill the pool: workers catch panics
//! per job, report a structured [`RuntimeError`] through the done channel,
//! and broadcast `JobAbort` so peers blocked on that job's tensors give up
//! immediately instead of waiting out the recv timeout. The pool stays
//! serviceable — the next [`ClusterPool::run`] gets fresh workers' attention.

use crate::fault::{panic_to_error, FaultInjector, FaultKind, InjectedPanic, INJECT_MARKER};
use crate::parallel::{default_recv_timeout, RunOptions};
use crate::profile::{OpRecord, ProfileDb, WorkerSpan};
use crate::reuse::{charge_bytes, Liveness};
use crate::{value_bytes, Env, Result, RuntimeError};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ramiel_cluster::Clustering;
use ramiel_ir::{Graph, NodeId, OpKind};
use ramiel_obs::{ChannelMeter, Obs};
use ramiel_passes::{inplace_marks, InPlaceMarks};
use ramiel_tensor::{eval_op, eval_op_inplace, ExecCtx, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A tensor instance within one job.
type Key = (u64, String);

enum WorkerMsg {
    Job {
        id: u64,
        inputs: Arc<Env>,
        /// Collect per-op records for this job.
        profile: bool,
    },
    /// Tensor plus the sending worker (for per-edge channel metrics).
    Tensor(Key, Value, usize),
    /// A peer failed this job: stop waiting for its tensors.
    JobAbort(u64),
    Stop,
}

/// What a worker reports back per job.
struct WorkerDone {
    job: u64,
    outputs: Vec<(String, Value)>,
    error: Option<RuntimeError>,
    /// Per-op records (profiled jobs only).
    records: Vec<OpRecord>,
    /// This worker's wall window over the job (profiled jobs only).
    span: Option<WorkerSpan>,
}

/// A standing pool of cluster workers executing one clustering over and
/// over. Create once, call [`run`](Self::run) per inference, drop to stop.
pub struct ClusterPool {
    worker_txs: Vec<Sender<WorkerMsg>>,
    done_rx: Receiver<WorkerDone>,
    handles: Vec<JoinHandle<()>>,
    next_job: u64,
    num_outputs: usize,
    graph_outputs: Vec<String>,
    recv_timeout: Duration,
    meter: Arc<ChannelMeter>,
    obs: Obs,
    /// Shared timebase for worker-side profiling records.
    epoch: Instant,
}

impl ClusterPool {
    /// Spawn one worker per cluster. The graph and clustering are cloned
    /// into the pool (workers are long-lived, so they own their state).
    pub fn new(graph: &Graph, clustering: &Clustering, ctx: &ExecCtx) -> Result<ClusterPool> {
        ClusterPool::with_options(graph, clustering, ctx, &RunOptions::default())
    }

    /// [`ClusterPool::new`] with explicit [`RunOptions`] (fault injection
    /// and recv timeout).
    pub fn with_options(
        graph: &Graph,
        clustering: &Clustering,
        ctx: &ExecCtx,
        opts: &RunOptions,
    ) -> Result<ClusterPool> {
        let ctx = &opts.apply_backend(ctx);
        let graph = Arc::new(graph.clone());
        let assign = clustering.assignment();
        let adj = graph.adjacency();
        let recv_timeout = opts.recv_timeout.unwrap_or_else(default_recv_timeout);

        // initializer values converted once (or inherited pre-converted via
        // `RunOptions::init_values`), shared by every worker
        let init_values = match &opts.init_values {
            Some(iv) => Arc::clone(iv),
            None => crate::initializer_values(&graph)?,
        };

        // (tensor → remote consumer workers) routing table
        let mut consumers: HashMap<String, Vec<usize>> = HashMap::new();
        for node in &graph.nodes {
            let me = assign[&node.id];
            for inp in &node.inputs {
                if let Some(&p) = adj.producer_of.get(inp) {
                    if assign[&p] != me {
                        let e = consumers.entry(inp.clone()).or_default();
                        if !e.contains(&me) {
                            e.push(me);
                        }
                    }
                }
            }
        }
        let consumers = Arc::new(consumers);
        let graph_outputs: Vec<String> = graph.outputs.clone();
        let marks = Arc::new(if opts.reuse {
            inplace_marks(&graph)
        } else {
            InPlaceMarks::empty()
        });

        let k = clustering.num_clusters();
        // Worker inboxes are bounded (capacity from `limits`, shared with
        // the ramiel-analyze RA0401 lint); the done channel stays unbounded
        // control plane.
        let channels: Vec<(Sender<WorkerMsg>, Receiver<WorkerMsg>)> = (0..k)
            .map(|_| bounded(crate::limits::DATA_CHANNEL_CAPACITY))
            .collect();
        let worker_txs: Vec<Sender<WorkerMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let (done_tx, done_rx) = unbounded::<WorkerDone>();
        let meter = Arc::new(ChannelMeter::new(k));
        let epoch = Instant::now();

        let mut handles = Vec::with_capacity(k);
        for (w, cluster) in clustering.clusters.iter().enumerate() {
            let rx = channels[w].1.clone();
            let peer_txs = worker_txs.clone();
            let graph = Arc::clone(&graph);
            let init_values = Arc::clone(&init_values);
            let consumers = Arc::clone(&consumers);
            let nodes: Vec<NodeId> = cluster.nodes.clone();
            let done_tx = done_tx.clone();
            let ctx = ctx.clone();
            let injector = opts.injector.clone();
            let meter = Arc::clone(&meter);
            let obs = opts.obs.clone();
            let marks = Arc::clone(&marks);
            let reuse = opts.reuse;
            handles.push(std::thread::spawn(move || {
                worker_main(WorkerState {
                    graph: &graph,
                    me: w,
                    nodes: &nodes,
                    init_values: &init_values,
                    rx,
                    peer_txs: &peer_txs,
                    consumers: &consumers,
                    done_tx,
                    ctx: &ctx,
                    injector: injector.as_ref(),
                    recv_timeout,
                    meter: &meter,
                    obs,
                    epoch,
                    marks: &marks,
                    reuse,
                });
            }));
        }

        // how many (worker, job) done messages to expect per job
        Ok(ClusterPool {
            worker_txs,
            done_rx,
            handles,
            next_job: 0,
            num_outputs: k,
            graph_outputs,
            recv_timeout,
            meter,
            obs: opts.obs.clone(),
            epoch,
        })
    }

    /// Run one inference through the standing workers.
    pub fn run(&mut self, inputs: &Env) -> Result<Env> {
        self.run_inner(inputs, false).map(|(env, _)| env)
    }

    /// Run one inference and collect a [`ProfileDb`] for it: per-op records
    /// from every worker plus the pool's cumulative channel statistics
    /// (sends/bytes/blocked time since the pool was created).
    pub fn run_profiled(&mut self, inputs: &Env) -> Result<(Env, ProfileDb)> {
        let (env, db) = self.run_inner(inputs, true)?;
        Ok((env, db.expect("profiled run always builds a db")))
    }

    fn run_inner(&mut self, inputs: &Env, profile: bool) -> Result<(Env, Option<ProfileDb>)> {
        let id = self.next_job;
        self.next_job += 1;
        let shared = Arc::new(inputs.clone());
        for tx in &self.worker_txs {
            tx.send(WorkerMsg::Job {
                id,
                inputs: Arc::clone(&shared),
                profile,
            })
            .map_err(|_| RuntimeError::ChannelClosed {
                cluster: None,
                detail: "pool worker hung up".into(),
            })?;
        }
        let mut db = profile.then(|| {
            let mut db = ProfileDb::new(self.num_outputs, 1);
            // obs-timeline position of the pool epoch all records count from
            db.set_epoch_offset_ns(
                self.obs
                    .now_ns()
                    .saturating_sub(self.epoch.elapsed().as_nanos() as u64),
            );
            db
        });
        let mut env = Env::new();
        let mut errors: Vec<RuntimeError> = Vec::new();
        for received in 0..self.num_outputs {
            // Bounded wait: a wedged worker yields a structured timeout, not
            // a pool that hangs its caller forever.
            let done = self.done_rx.recv_timeout(self.recv_timeout).map_err(|_| {
                RuntimeError::Timeout {
                    cluster: None,
                    pending_ops: self.num_outputs - received,
                    detail: format!("pool collector timed out waiting for job {id} results"),
                }
            })?;
            debug_assert_eq!(done.job, id, "jobs complete in submission order");
            if let Some(e) = done.error {
                errors.push(e);
            }
            if let Some(db) = db.as_mut() {
                db.extend(done.records);
                if let Some(span) = done.span {
                    db.push_worker_span(span);
                }
            }
            for (name, v) in done.outputs {
                env.insert(name, v);
            }
        }
        if let Some(db) = db.as_mut() {
            db.set_channels(self.meter.stats());
        }
        // Report the root cause, not a peer's secondary abort error.
        if let Some(e) = errors
            .into_iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.severity_rank(), *i))
            .map(|(_, e)| e)
        {
            return Err(e);
        }
        // outputs that are direct inputs/initializers
        for name in &self.graph_outputs {
            if !env.contains_key(name) {
                if let Some(v) = inputs.get(name) {
                    env.insert(name.clone(), v.clone());
                }
            }
        }
        Ok((env, db))
    }
}

impl Drop for ClusterPool {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct WorkerState<'a> {
    graph: &'a Graph,
    me: usize,
    nodes: &'a [NodeId],
    init_values: &'a HashMap<String, Value>,
    rx: Receiver<WorkerMsg>,
    peer_txs: &'a [Sender<WorkerMsg>],
    consumers: &'a HashMap<String, Vec<usize>>,
    done_tx: Sender<WorkerDone>,
    ctx: &'a ExecCtx,
    injector: Option<&'a Arc<FaultInjector>>,
    recv_timeout: Duration,
    meter: &'a ChannelMeter,
    obs: Obs,
    epoch: Instant,
    marks: &'a InPlaceMarks,
    reuse: bool,
}

fn worker_main(st: WorkerState<'_>) {
    let graph_outputs: HashSet<&str> = st.graph.outputs.iter().map(String::as_str).collect();
    // tensors that arrived before their job started
    let mut stash: HashMap<Key, Value> = HashMap::new();
    // jobs a peer aborted before we started (or finished) them
    let mut aborted: HashSet<u64> = HashSet::new();

    while let Ok(msg) = st.rx.recv() {
        let (job, inputs, profile) = match msg {
            WorkerMsg::Stop => return,
            WorkerMsg::Tensor(key, v, from) => {
                st.meter.on_recv(from, st.me, 0);
                stash.insert(key, v);
                continue;
            }
            WorkerMsg::JobAbort(j) => {
                aborted.insert(j);
                continue;
            }
            WorkerMsg::Job {
                id,
                inputs,
                profile,
            } => (id, inputs, profile),
        };

        let job_start_ns = st.epoch.elapsed().as_nanos() as u64;
        let (outputs, error, records) = if aborted.contains(&job) {
            (Vec::new(), Some(job_abort_error(st.me)), Vec::new())
        } else {
            // Panics must not kill the pool thread: catch per job, report
            // as a structured error, keep serving.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(
                    &st,
                    &graph_outputs,
                    &mut stash,
                    &mut aborted,
                    job,
                    &inputs,
                    profile,
                )
            }));
            match r {
                Ok(triple) => triple,
                Err(payload) => (
                    Vec::new(),
                    Some(panic_to_error(Some(st.me), payload)),
                    Vec::new(),
                ),
            }
        };
        let span = profile.then(|| WorkerSpan {
            worker: st.me,
            start_ns: job_start_ns,
            end_ns: st.epoch.elapsed().as_nanos() as u64,
        });

        if error.is_some() {
            // Unblock peers waiting on this job's tensors. try_send: a full
            // inbox means the peer is not blocked in recv; it will hit its
            // own recv timeout if it ever waits on this job again.
            for (t, tx) in st.peer_txs.iter().enumerate() {
                if t != st.me {
                    let _ = tx.try_send(WorkerMsg::JobAbort(job));
                }
            }
        }
        // Jobs finish in submission order: stale stash/abort entries for
        // this or earlier jobs can never be read again.
        stash.retain(|(j, _), _| *j > job);
        aborted.retain(|j| *j > job);

        if st
            .done_tx
            .send(WorkerDone {
                job,
                outputs,
                error,
                records,
                span,
            })
            .is_err()
        {
            return;
        }
    }
}

fn job_abort_error(me: usize) -> RuntimeError {
    RuntimeError::ChannelClosed {
        cluster: Some(me),
        detail: crate::ABORT_DETAIL.into(),
    }
}

/// Execute one job's ops on this worker. Returns the graph outputs this
/// worker produced, the first error (if any), and per-op records when
/// `profile` is set.
fn run_job(
    st: &WorkerState<'_>,
    graph_outputs: &HashSet<&str>,
    stash: &mut HashMap<Key, Value>,
    aborted: &mut HashSet<u64>,
    job: u64,
    inputs: &Env,
    profile: bool,
) -> (Vec<(String, Value)>, Option<RuntimeError>, Vec<OpRecord>) {
    let me = st.me;
    let mut env: HashMap<String, Value> = HashMap::new();
    let mut outputs = Vec::new();
    let mut error = None;
    let mut records: Vec<OpRecord> = Vec::new();
    // Per-job liveness: reads remaining per tensor on this worker (graph
    // outputs produced here get one extra pin so they stay charged for the
    // whole job, matching the static estimate).
    let mut live = {
        let mut uses: HashMap<String, usize> = HashMap::new();
        for &nid in st.nodes {
            let node = &st.graph.nodes[nid];
            for t in &node.inputs {
                *uses.entry(t.clone()).or_insert(0) += 1;
            }
            for name in &node.outputs {
                if graph_outputs.contains(name.as_str()) {
                    *uses.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }
        Liveness::new(uses, st.ctx.mem_gauge().cloned())
    };

    'ops: for &nid in st.nodes {
        let node = &st.graph.nodes[nid];

        // Fault injection (jobs execute each node once, so the injector's
        // exec_index distinguishes successive jobs).
        let armed = match st.injector {
            Some(inj) => inj.begin_node(nid, 0),
            None => Vec::new(),
        };
        let mut kernel_fault = false;
        let mut drop_msgs = false;
        let mut send_delay = None;
        for kind in &armed {
            st.obs.instant(
                me as u32,
                format!("fault:{}", kind.name()),
                "fault",
                serde_json::json!({ "node": nid, "job": job }),
            );
            match kind {
                FaultKind::KernelError => kernel_fault = true,
                FaultKind::WorkerPanic => std::panic::panic_any(InjectedPanic {
                    node: nid,
                    cluster: Some(me),
                }),
                FaultKind::SendDelay { millis } => {
                    send_delay = Some(Duration::from_millis(*millis))
                }
                FaultKind::RecvDelay { millis } => {
                    std::thread::sleep(Duration::from_millis(*millis))
                }
                FaultKind::DropMessage => drop_msgs = true,
            }
        }

        // Gather operands, draining the inbox while missing. Remote tensors
        // land in `env` (not a one-shot slot) because several nodes of this
        // cluster may consume the same cross-cluster tensor, which the
        // producer sends only once per consumer cluster.
        let mark = st.marks.slot(nid);
        let mut owned_slot = None;
        let mut blocked_ns: u64 = 0;
        let mut ins: Vec<Value> = Vec::with_capacity(node.inputs.len());
        for (slot, t) in node.inputs.iter().enumerate() {
            loop {
                if let Some(v) = stash.remove(&(job, t.clone())) {
                    live.charge(t.clone(), value_bytes(&v));
                    env.insert(t.clone(), v);
                }
                // A node marked by the in-place pass takes its dying operand
                // *out* of the env (sole remaining read), so the kernel's
                // `Arc::get_mut` gate can overwrite the buffer in place.
                if mark == Some(slot) && live.remaining(t) == 1 {
                    if let Some(v) = env.remove(t.as_str()) {
                        owned_slot = Some(slot);
                        ins.push(v);
                        break;
                    }
                }
                if let Some(v) = env
                    .get(t.as_str())
                    .cloned()
                    .or_else(|| inputs.get(t).cloned())
                    .or_else(|| st.init_values.get(t).cloned())
                {
                    ins.push(v);
                    break;
                }
                let wait_start = Instant::now();
                match st.rx.recv_timeout(st.recv_timeout) {
                    Ok(WorkerMsg::Tensor((j, name), v, from)) => {
                        let waited = wait_start.elapsed().as_nanos() as u64;
                        blocked_ns += waited;
                        st.meter.on_recv(from, me, waited);
                        if j == job {
                            live.charge(name.clone(), value_bytes(&v));
                            env.insert(name, v);
                        } else {
                            stash.insert((j, name), v);
                        }
                    }
                    Ok(WorkerMsg::JobAbort(j)) => {
                        if j == job {
                            error = Some(job_abort_error(me));
                            break 'ops;
                        }
                        aborted.insert(j);
                    }
                    Ok(WorkerMsg::Stop) | Ok(WorkerMsg::Job { .. }) => {
                        error = Some(RuntimeError::Setup(format!(
                            "worker {me}: protocol error waiting for `{t}`"
                        )));
                        break 'ops;
                    }
                    Err(_) => {
                        error = Some(RuntimeError::Timeout {
                            cluster: Some(me),
                            pending_ops: st.nodes.len(),
                            detail: format!("worker {me}: timed out waiting for `{t}` (job {job})"),
                        });
                        break 'ops;
                    }
                }
            }
        }
        let op_start = profile.then(Instant::now);
        let result = if matches!(node.op, OpKind::Constant) {
            if kernel_fault {
                error = Some(RuntimeError::Injected {
                    cluster: Some(me),
                    node: nid,
                    kind: FaultKind::KernelError,
                });
                break 'ops;
            }
            // Constant payloads live in the shared initializer table under
            // the node's output name; cloning shares the buffer.
            st.init_values
                .get(&node.outputs[0])
                .ok_or_else(|| {
                    ramiel_tensor::ExecError(format!("Constant `{}` missing payload", node.name))
                })
                .map(|v| vec![v.clone()])
        } else {
            let hooked;
            let eval_ctx = if kernel_fault {
                hooked = FaultInjector::kernel_fault_ctx(st.ctx, Some(me), nid);
                &hooked
            } else {
                st.ctx
            };
            match owned_slot {
                Some(s) => eval_op_inplace(eval_ctx, &node.op, ins, s),
                None => eval_op(eval_ctx, &node.op, &ins),
            }
        };
        let outs = match result {
            Ok(o) => o,
            Err(e) => {
                error = Some(if e.0.starts_with(INJECT_MARKER) {
                    RuntimeError::Injected {
                        cluster: Some(me),
                        node: nid,
                        kind: FaultKind::KernelError,
                    }
                } else {
                    RuntimeError::Kernel {
                        cluster: Some(me),
                        node: Some(nid),
                        msg: format!("{}: {}", node.name, e.0),
                    }
                });
                break 'ops;
            }
        };
        if let Some(start) = op_start {
            // Operand-wait time belongs to the gap *after* the previous op
            // (same attribution the per-run parallel executor uses).
            if let Some(prev) = records.last_mut() {
                prev.slack_after_ns += blocked_ns;
            }
            records.push(OpRecord {
                worker: me,
                batch: 0,
                node: nid,
                start_ns: (start - st.epoch).as_nanos() as u64,
                end_ns: st.epoch.elapsed().as_nanos() as u64,
                slack_after_ns: 0,
            });
        }
        if let Some(d) = send_delay {
            std::thread::sleep(d);
        }
        for (name, v) in node.outputs.iter().zip(outs) {
            if !drop_msgs {
                if let Some(targets) = st.consumers.get(name) {
                    for &t in targets {
                        st.meter
                            .on_send(me, t, value_bytes(&v), crate::value_copied_bytes(&v));
                        if st.peer_txs[t]
                            .send(WorkerMsg::Tensor((job, name.clone()), v.clone(), me))
                            .is_err()
                        {
                            error = Some(RuntimeError::ChannelClosed {
                                cluster: Some(me),
                                detail: "peer worker hung up".into(),
                            });
                            break 'ops;
                        }
                    }
                }
            }
            if graph_outputs.contains(name.as_str()) {
                outputs.push((name.clone(), v.clone()));
            }
            live.charge(name.clone(), charge_bytes(&node.op, &v));
            env.insert(name.clone(), v);
        }
        if st.reuse {
            // Inputs whose last local read this was — and outputs with no
            // local reader (already shipped/recorded above) — die here.
            for t in &node.inputs {
                if live.consume(t) {
                    env.remove(t.as_str());
                    live.discharge(t);
                }
            }
            for name in &node.outputs {
                if live.remaining(name) == 0 {
                    env.remove(name.as_str());
                    live.discharge(name);
                }
            }
        }
    }

    (outputs, error, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::fault::{Fault, FaultPlan};
    use crate::synth_inputs;
    use ramiel_cluster::{cluster_graph, StaticCost};
    use ramiel_models::{build, synthetic, ModelConfig, ModelKind};

    #[test]
    fn pool_matches_sequential_across_many_jobs() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        for seed in 0..5u64 {
            let inputs = synth_inputs(&g, seed);
            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
            let out = pool.run(&inputs).unwrap();
            assert_eq!(seq, out, "seed {seed}");
        }
    }

    #[test]
    fn pool_survives_interleaved_graph_shapes() {
        let g = synthetic::fork_join(4, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        let seq_inputs: Vec<_> = (0..8).map(|s| synth_inputs(&g, s)).collect();
        let expected: Vec<_> = seq_inputs
            .iter()
            .map(|i| run_sequential(&g, i, &ctx).unwrap())
            .collect();
        for (i, inputs) in seq_inputs.iter().enumerate() {
            assert_eq!(pool.run(inputs).unwrap(), expected[i], "job {i}");
        }
    }

    #[test]
    fn shared_remote_tensor_reaches_every_consumer() {
        // One producer cluster, one consumer cluster where TWO nodes read
        // the producer's tensor: it crosses the boundary once (the routing
        // table dedups per cluster), so the worker must keep it available
        // after the first consumer — regression test for the starvation
        // this caused on multi-head models.
        use ramiel_cluster::Cluster;
        use ramiel_ir::{DType, GraphBuilder};
        let mut b = GraphBuilder::new("shared");
        let x = b.input("x", DType::F32, vec![4]);
        let p = b.op("p", OpKind::Relu, vec![x]);
        let u = b.op("u", OpKind::Relu, vec![p.clone()]);
        let v = b.op("v", OpKind::Neg, vec![p]);
        let w = b.op("w", OpKind::Add, vec![u, v]);
        b.output(&w);
        let g = b.finish().unwrap();
        let clustering = Clustering::new(vec![Cluster::new(vec![0]), Cluster::new(vec![1, 2, 3])]);
        let ctx = ExecCtx::sequential();
        let inputs = synth_inputs(&g, 9);
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let opts = RunOptions::default().recv_timeout(Duration::from_secs(5));
        let mut pool = ClusterPool::with_options(&g, &clustering, &ctx, &opts).unwrap();
        assert_eq!(pool.run(&inputs).unwrap(), seq);
    }

    #[test]
    fn pool_reports_kernel_errors() {
        // graph whose Gather will go out of range at runtime
        use ramiel_ir::{DType, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let idx = b.init(
            "idx",
            ramiel_ir::TensorData::vec_i64(vec![5]), // out of range
        );
        let y = b.op("g", OpKind::Gather { axis: 0 }, vec![x, idx]);
        b.output(&y);
        // bypass shape checking by constructing without finish()'s checks:
        // shape inference would catch this statically, so check the runtime
        // path with a graph whose shapes are fine but data is not — Gather
        // shape inference uses only the indices *shape*, so finish() passes.
        let g = b.finish().unwrap();
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        let err = pool.run(&synth_inputs(&g, 1)).unwrap_err();
        assert_eq!(err.code(), "RT-KERNEL");
        assert!(err.to_string().contains("out of range"), "{err}");
        drop(pool); // clean shutdown after an error
    }

    #[test]
    fn dropping_pool_stops_workers() {
        let g = synthetic::chain(4);
        let clustering = cluster_graph(&g, &StaticCost);
        let pool = ClusterPool::new(&g, &clustering, &ExecCtx::sequential()).unwrap();
        drop(pool); // must not hang
    }

    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<InjectedPanic>().is_some() {
                    return;
                }
                prev(info);
            }));
        });
    }

    #[test]
    fn pool_survives_injected_worker_panic_and_keeps_serving() {
        quiet_injected_panics();
        let g = synthetic::fork_join(4, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        // panic on the first job's execution of node 1, then behave
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 1,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::WorkerPanic,
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_secs(5));
        let mut pool = ClusterPool::with_options(&g, &clustering, &ctx, &opts).unwrap();
        let inputs = synth_inputs(&g, 3);
        let err = pool.run(&inputs).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT", "got {err}");
        // the pool must still be alive and produce correct results
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let out = pool.run(&inputs).unwrap();
        assert_eq!(seq, out);
    }

    #[test]
    fn pool_reports_injected_kernel_fault_with_node() {
        let g = synthetic::fork_join(3, 2, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 2,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::KernelError,
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_secs(5));
        let mut pool = ClusterPool::with_options(&g, &clustering, &ctx, &opts).unwrap();
        let err = pool.run(&synth_inputs(&g, 1)).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Injected { node: 2, .. }),
            "{err}"
        );
    }
}
