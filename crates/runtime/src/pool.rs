//! Persistent cluster-worker pool.
//!
//! [`crate::run_parallel`] spawns one thread per cluster *per inference* —
//! fine for measurement, wasteful for serving. The paper's generated code
//! forks long-lived Python processes once and reuses them; [`ClusterPool`]
//! is that shape: workers spawn once (weights pre-converted and shared),
//! then every [`ClusterPool::run`] call streams one inference through the
//! standing workers. Messages are tagged with a job id so back-to-back
//! inferences cannot cross-talk.

use crate::{Env, Result, RuntimeError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ramiel_cluster::Clustering;
use ramiel_ir::{Graph, NodeId, OpKind};
use ramiel_tensor::{eval_op, ExecCtx, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A tensor instance within one job.
type Key = (u64, String);

enum WorkerMsg {
    Job { id: u64, inputs: Arc<Env> },
    Tensor(Key, Value),
    Stop,
}

/// What a worker reports back per job.
struct WorkerDone {
    job: u64,
    outputs: Vec<(String, Value)>,
    error: Option<String>,
}

/// A standing pool of cluster workers executing one clustering over and
/// over. Create once, call [`run`](Self::run) per inference, drop to stop.
pub struct ClusterPool {
    worker_txs: Vec<Sender<WorkerMsg>>,
    done_rx: Receiver<WorkerDone>,
    handles: Vec<JoinHandle<()>>,
    next_job: u64,
    num_outputs: usize,
    graph_outputs: Vec<String>,
}

impl ClusterPool {
    /// Spawn one worker per cluster. The graph and clustering are cloned
    /// into the pool (workers are long-lived, so they own their state).
    pub fn new(graph: &Graph, clustering: &Clustering, ctx: &ExecCtx) -> Result<ClusterPool> {
        let graph = Arc::new(graph.clone());
        let assign = clustering.assignment();
        let adj = graph.adjacency();

        // initializer values converted once, shared by every worker
        let init_values: HashMap<String, Value> = graph
            .initializers
            .iter()
            .map(|(name, td)| Ok((name.clone(), Value::from_tensor_data(td)?)))
            .collect::<Result<_>>()?;
        let init_values = Arc::new(init_values);

        // (tensor → remote consumer workers) routing table
        let mut consumers: HashMap<String, Vec<usize>> = HashMap::new();
        for node in &graph.nodes {
            let me = assign[&node.id];
            for inp in &node.inputs {
                if let Some(&p) = adj.producer_of.get(inp) {
                    if assign[&p] != me {
                        let e = consumers.entry(inp.clone()).or_default();
                        if !e.contains(&me) {
                            e.push(me);
                        }
                    }
                }
            }
        }
        let consumers = Arc::new(consumers);
        let graph_outputs: Vec<String> = graph.outputs.clone();

        let k = clustering.num_clusters();
        let channels: Vec<(Sender<WorkerMsg>, Receiver<WorkerMsg>)> =
            (0..k).map(|_| unbounded()).collect();
        let worker_txs: Vec<Sender<WorkerMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let (done_tx, done_rx) = unbounded::<WorkerDone>();

        let mut handles = Vec::with_capacity(k);
        for (w, cluster) in clustering.clusters.iter().enumerate() {
            let rx = channels[w].1.clone();
            let peer_txs = worker_txs.clone();
            let graph = Arc::clone(&graph);
            let init_values = Arc::clone(&init_values);
            let consumers = Arc::clone(&consumers);
            let nodes: Vec<NodeId> = cluster.nodes.clone();
            let done_tx = done_tx.clone();
            let ctx = ctx.clone();
            handles.push(std::thread::spawn(move || {
                worker_main(
                    &graph,
                    w,
                    &nodes,
                    &init_values,
                    rx,
                    &peer_txs,
                    &consumers,
                    done_tx,
                    &ctx,
                );
            }));
        }

        // how many (worker, job) done messages to expect per job
        Ok(ClusterPool {
            worker_txs,
            done_rx,
            handles,
            next_job: 0,
            num_outputs: k,
            graph_outputs,
        })
    }

    /// Run one inference through the standing workers.
    pub fn run(&mut self, inputs: &Env) -> Result<Env> {
        let id = self.next_job;
        self.next_job += 1;
        let shared = Arc::new(inputs.clone());
        for tx in &self.worker_txs {
            tx.send(WorkerMsg::Job {
                id,
                inputs: Arc::clone(&shared),
            })
            .map_err(|_| RuntimeError("pool worker hung up".into()))?;
        }
        let mut env = Env::new();
        let mut first_err: Option<String> = None;
        for _ in 0..self.num_outputs {
            let done = self
                .done_rx
                .recv()
                .map_err(|_| RuntimeError("pool collector hung up".into()))?;
            debug_assert_eq!(done.job, id, "jobs complete in submission order");
            if let Some(e) = done.error {
                first_err.get_or_insert(e);
            }
            for (name, v) in done.outputs {
                env.insert(name, v);
            }
        }
        if let Some(e) = first_err {
            return Err(RuntimeError(e));
        }
        // outputs that are direct inputs/initializers
        for name in &self.graph_outputs {
            if !env.contains_key(name) {
                if let Some(v) = inputs.get(name) {
                    env.insert(name.clone(), v.clone());
                }
            }
        }
        Ok(env)
    }
}

impl Drop for ClusterPool {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    graph: &Graph,
    me: usize,
    nodes: &[NodeId],
    init_values: &HashMap<String, Value>,
    rx: Receiver<WorkerMsg>,
    peer_txs: &[Sender<WorkerMsg>],
    consumers: &HashMap<String, Vec<usize>>,
    done_tx: Sender<WorkerDone>,
    ctx: &ExecCtx,
) {
    let graph_outputs: std::collections::HashSet<&str> =
        graph.outputs.iter().map(String::as_str).collect();
    // tensors that arrived before their job started
    let mut stash: HashMap<Key, Value> = HashMap::new();

    while let Ok(msg) = rx.recv() {
        let (job, inputs) = match msg {
            WorkerMsg::Stop => return,
            WorkerMsg::Tensor(key, v) => {
                stash.insert(key, v);
                continue;
            }
            WorkerMsg::Job { id, inputs } => (id, inputs),
        };

        let mut env: HashMap<String, Value> = HashMap::new();
        let mut outputs = Vec::new();
        let mut error = None;

        'ops: for &nid in nodes {
            let node = &graph.nodes[nid];
            // gather operands, draining the inbox while missing
            let mut ins: Vec<Value> = Vec::with_capacity(node.inputs.len());
            for t in &node.inputs {
                loop {
                    if let Some(v) = env
                        .get(t.as_str())
                        .cloned()
                        .or_else(|| inputs.get(t).cloned())
                        .or_else(|| init_values.get(t).cloned())
                        .or_else(|| stash.remove(&(job, t.clone())))
                    {
                        ins.push(v);
                        break;
                    }
                    match rx.recv() {
                        Ok(WorkerMsg::Tensor((j, name), v)) => {
                            if j == job && &name == t {
                                ins.push(v);
                                break;
                            }
                            stash.insert((j, name), v);
                        }
                        Ok(WorkerMsg::Stop) => return,
                        Ok(WorkerMsg::Job { .. }) | Err(_) => {
                            error = Some(format!("worker {me}: protocol error waiting for `{t}`"));
                            break 'ops;
                        }
                    }
                }
            }
            let result = if matches!(node.op, OpKind::Constant) {
                graph
                    .initializers
                    .get(&node.outputs[0])
                    .ok_or_else(|| {
                        ramiel_tensor::ExecError(format!(
                            "Constant `{}` missing payload",
                            node.name
                        ))
                    })
                    .and_then(|td| Value::from_tensor_data(td).map(|v| vec![v]))
            } else {
                eval_op(ctx, &node.op, &ins)
            };
            let outs = match result {
                Ok(o) => o,
                Err(e) => {
                    error = Some(format!("{}: {}", node.name, e.0));
                    break 'ops;
                }
            };
            for (name, v) in node.outputs.iter().zip(outs) {
                if let Some(targets) = consumers.get(name) {
                    for &t in targets {
                        if peer_txs[t]
                            .send(WorkerMsg::Tensor((job, name.clone()), v.clone()))
                            .is_err()
                        {
                            error = Some("peer worker hung up".into());
                            break 'ops;
                        }
                    }
                }
                if graph_outputs.contains(name.as_str()) {
                    outputs.push((name.clone(), v.clone()));
                }
                env.insert(name.clone(), v);
            }
        }

        if done_tx
            .send(WorkerDone {
                job,
                outputs,
                error,
            })
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::synth_inputs;
    use ramiel_cluster::{cluster_graph, StaticCost};
    use ramiel_models::{build, synthetic, ModelConfig, ModelKind};

    #[test]
    fn pool_matches_sequential_across_many_jobs() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        for seed in 0..5u64 {
            let inputs = synth_inputs(&g, seed);
            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
            let out = pool.run(&inputs).unwrap();
            assert_eq!(seq, out, "seed {seed}");
        }
    }

    #[test]
    fn pool_survives_interleaved_graph_shapes() {
        let g = synthetic::fork_join(4, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        let seq_inputs: Vec<_> = (0..8).map(|s| synth_inputs(&g, s)).collect();
        let expected: Vec<_> = seq_inputs
            .iter()
            .map(|i| run_sequential(&g, i, &ctx).unwrap())
            .collect();
        for (i, inputs) in seq_inputs.iter().enumerate() {
            assert_eq!(pool.run(inputs).unwrap(), expected[i], "job {i}");
        }
    }

    #[test]
    fn pool_reports_kernel_errors() {
        // graph whose Gather will go out of range at runtime
        use ramiel_ir::{DType, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let idx = b.init(
            "idx",
            ramiel_ir::TensorData::vec_i64(vec![5]), // out of range
        );
        let y = b.op("g", OpKind::Gather { axis: 0 }, vec![x, idx]);
        b.output(&y);
        // bypass shape checking by constructing without finish()'s checks:
        // shape inference would catch this statically, so check the runtime
        // path with a graph whose shapes are fine but data is not — Gather
        // shape inference uses only the indices *shape*, so finish() passes.
        let g = b.finish().unwrap();
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        let err = pool.run(&synth_inputs(&g, 1)).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
        drop(pool); // clean shutdown after an error
    }

    #[test]
    fn dropping_pool_stops_workers() {
        let g = synthetic::chain(4);
        let clustering = cluster_graph(&g, &StaticCost);
        let pool = ClusterPool::new(&g, &clustering, &ExecCtx::sequential()).unwrap();
        drop(pool); // must not hang
    }
}
