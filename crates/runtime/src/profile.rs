//! The profiling database (Fig. 10's "Profile DB").
//!
//! Records per-op execution windows and the *slack* each worker spends
//! blocked on `recv` after an op — the imbalance signal the paper uses to
//! motivate hyperclustering and to hand-tune switched hyperclusters.

use ramiel_obs::ChannelEdgeStats;
use serde::Serialize;

/// One executed operation.
#[derive(Debug, Clone, Serialize)]
pub struct OpRecord {
    pub worker: usize,
    pub batch: usize,
    pub node: usize,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Time spent blocked waiting for messages immediately after this op.
    pub slack_after_ns: u64,
}

/// One worker's wall-clock window: from entering its loop to finishing its
/// last op. Busy + recorded slack is bounded by this window (the remainder
/// is scheduling overhead and waits not attributable to a finished op).
#[derive(Debug, Clone, Serialize)]
pub struct WorkerSpan {
    pub worker: usize,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Collected trace of a parallel run.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileDb {
    workers: usize,
    batch: usize,
    records: Vec<OpRecord>,
    worker_spans: Vec<WorkerSpan>,
    channels: Vec<ChannelEdgeStats>,
    /// Offset of this run's epoch on the exporting [`ramiel_obs::Obs`]
    /// timeline (0 when no enabled sink was attached to the run).
    epoch_offset_ns: u64,
    /// Kernel backend the profiled run executed with (`"scalar"`, `"simd"`,
    /// `"quant-i8"`). Carried into [`Self::measured_cost`] so reclustering
    /// decisions know which backend the node times price.
    backend: Option<String>,
}

/// Per-worker slack aggregation.
#[derive(Debug, Clone, Serialize)]
pub struct SlackReport {
    pub worker: usize,
    pub busy_ns: u64,
    pub slack_ns: u64,
    /// slack / (busy + slack)
    pub slack_fraction: f64,
}

impl ProfileDb {
    pub fn new(workers: usize, batch: usize) -> Self {
        ProfileDb {
            workers,
            batch,
            records: Vec::new(),
            worker_spans: Vec::new(),
            channels: Vec::new(),
            epoch_offset_ns: 0,
            backend: None,
        }
    }

    /// Record which kernel backend the profiled run executed with.
    pub fn set_backend(&mut self, name: impl Into<String>) {
        self.backend = Some(name.into());
    }

    /// Kernel backend of the profiled run, if recorded.
    pub fn backend(&self) -> Option<&str> {
        self.backend.as_deref()
    }

    pub fn extend(&mut self, records: Vec<OpRecord>) {
        self.records.extend(records);
    }

    pub fn push_worker_span(&mut self, span: WorkerSpan) {
        self.worker_spans.push(span);
    }

    pub fn set_channels(&mut self, channels: Vec<ChannelEdgeStats>) {
        self.channels = channels;
    }

    pub fn set_epoch_offset_ns(&mut self, offset: u64) {
        self.epoch_offset_ns = offset;
    }

    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    pub fn worker_spans(&self) -> &[WorkerSpan] {
        &self.worker_spans
    }

    pub fn channels(&self) -> &[ChannelEdgeStats] {
        &self.channels
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Wall-clock span of the run (max end − min start).
    pub fn makespan_ns(&self) -> u64 {
        let start = self.records.iter().map(|r| r.start_ns).min().unwrap_or(0);
        let end = self.records.iter().map(|r| r.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Aggregate busy/slack time per worker.
    pub fn slack_report(&self) -> Vec<SlackReport> {
        let mut busy = vec![0u64; self.workers];
        let mut slack = vec![0u64; self.workers];
        for r in &self.records {
            busy[r.worker] += r.end_ns - r.start_ns;
            slack[r.worker] += r.slack_after_ns;
        }
        (0..self.workers)
            .map(|w| SlackReport {
                worker: w,
                busy_ns: busy[w],
                slack_ns: slack[w],
                slack_fraction: slack[w] as f64 / (busy[w] + slack[w]).max(1) as f64,
            })
            .collect()
    }

    /// Serialize to JSON for offline analysis.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization cannot fail")
    }

    /// Replay this profile into an obs sink: one thread track per worker
    /// (named), one span per op, explicit slack slices, and per-edge channel
    /// statistics as instant events. Timestamps are shifted by the epoch
    /// offset recorded at run start so executor slices line up with compile
    /// spans captured on the same sink.
    pub fn export_to_obs(&self, obs: &ramiel_obs::Obs, graph: &ramiel_ir::Graph) {
        if !obs.is_enabled() {
            return;
        }
        let off = self.epoch_offset_ns;
        for w in 0..self.workers {
            obs.name_thread(w as u32, format!("worker {w}"));
        }
        for r in &self.records {
            let name = graph
                .nodes
                .get(r.node)
                .map(|n| format!("{} ({})", n.name, n.op.name()))
                .unwrap_or_else(|| format!("node {}", r.node));
            obs.complete(
                r.worker as u32,
                name,
                "op",
                off + r.start_ns,
                off + r.end_ns,
                serde_json::json!({ "node": r.node, "batch": r.batch }),
            );
            if r.slack_after_ns > 0 {
                obs.complete(
                    r.worker as u32,
                    "slack (blocked on recv)",
                    "slack",
                    off + r.end_ns,
                    off + r.end_ns + r.slack_after_ns,
                    serde_json::Value::Null,
                );
            }
        }
        for c in &self.channels {
            obs.instant(
                c.to as u32,
                format!("channel {} -> {}", c.from, c.to),
                "channel",
                serde_json::json!({
                    "sends": c.sends,
                    "recvs": c.recvs,
                    "bytes": c.bytes,
                    "copied_bytes": c.copied_bytes,
                    "blocked_ms": c.blocked_ns as f64 / 1e6,
                    "max_in_flight": c.max_in_flight,
                }),
            );
        }
    }

    /// Distil measured per-node busy times into a [`MeasuredCost`] model for
    /// profile-guided reclustering: mean busy ns per node, backed by per-op-
    /// kind means for nodes this profile never saw.
    pub fn measured_cost(&self, graph: &ramiel_ir::Graph) -> ramiel_cluster::MeasuredCost {
        let mut sum = vec![0u64; graph.num_nodes()];
        let mut cnt = vec![0u64; graph.num_nodes()];
        for r in &self.records {
            if r.node < sum.len() {
                sum[r.node] += r.end_ns.saturating_sub(r.start_ns);
                cnt[r.node] += 1;
            }
        }
        let samples: Vec<(usize, u64)> = (0..graph.num_nodes())
            .filter(|&n| cnt[n] > 0)
            .map(|n| (n, sum[n] / cnt[n]))
            .collect();
        let mc = ramiel_cluster::MeasuredCost::from_node_ns(graph, &samples);
        match &self.backend {
            Some(b) => mc.with_backend(b.clone()),
            None => mc,
        }
    }

    /// Export as a Chrome trace (`chrome://tracing` / Perfetto) — one lane
    /// per cluster worker, one slice per op, plus explicit slack slices so
    /// the communication gaps that motivate hyperclustering are visible.
    pub fn to_chrome_trace(&self, graph: &ramiel_ir::Graph) -> String {
        let mut events = Vec::with_capacity(self.records.len() * 2);
        for r in &self.records {
            let name = graph
                .nodes
                .get(r.node)
                .map(|n| format!("{} ({})", n.name, n.op.name()))
                .unwrap_or_else(|| format!("node {}", r.node));
            events.push(serde_json::json!({
                "name": name,
                "cat": "op",
                "ph": "X",
                "ts": r.start_ns as f64 / 1e3,
                "dur": (r.end_ns - r.start_ns) as f64 / 1e3,
                "pid": 0,
                "tid": r.worker,
                "args": {"batch": r.batch}
            }));
            if r.slack_after_ns > 0 {
                events.push(serde_json::json!({
                    "name": "slack (blocked on queue.get)",
                    "cat": "slack",
                    "ph": "X",
                    "ts": r.end_ns as f64 / 1e3,
                    "dur": r.slack_after_ns as f64 / 1e3,
                    "pid": 0,
                    "tid": r.worker,
                }));
            }
        }
        serde_json::to_string(&serde_json::json!({ "traceEvents": events }))
            .expect("trace serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_report_aggregates_per_worker() {
        let mut db = ProfileDb::new(2, 1);
        db.extend(vec![
            OpRecord {
                worker: 0,
                batch: 0,
                node: 0,
                start_ns: 0,
                end_ns: 100,
                slack_after_ns: 50,
            },
            OpRecord {
                worker: 0,
                batch: 0,
                node: 1,
                start_ns: 150,
                end_ns: 200,
                slack_after_ns: 0,
            },
            OpRecord {
                worker: 1,
                batch: 0,
                node: 2,
                start_ns: 0,
                end_ns: 300,
                slack_after_ns: 0,
            },
        ]);
        assert_eq!(db.makespan_ns(), 300);
        let rep = db.slack_report();
        assert_eq!(rep[0].busy_ns, 150);
        assert_eq!(rep[0].slack_ns, 50);
        assert!((rep[0].slack_fraction - 0.25).abs() < 1e-9);
        assert_eq!(rep[1].slack_ns, 0);
    }

    #[test]
    fn chrome_trace_has_op_and_slack_slices() {
        let mut g = ramiel_ir::Graph::new("t");
        g.push_node(
            "relu0",
            ramiel_ir::OpKind::Relu,
            vec!["x".into()],
            vec!["y".into()],
        );
        let mut db = ProfileDb::new(1, 1);
        db.extend(vec![OpRecord {
            worker: 0,
            batch: 0,
            node: 0,
            start_ns: 1000,
            end_ns: 3000,
            slack_after_ns: 500,
        }]);
        let trace = db.to_chrome_trace(&g);
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("relu0 (Relu)"));
        assert!(trace.contains("slack (blocked on queue.get)"));
        // valid JSON
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_db_is_sane() {
        let db = ProfileDb::new(1, 1);
        assert_eq!(db.makespan_ns(), 0);
        assert_eq!(db.slack_report()[0].busy_ns, 0);
        assert!(db.to_json().contains("records"));
    }
}
