//! Reference sequential executor.

use crate::fault::{FaultInjector, FaultKind, InjectedPanic, INJECT_MARKER};
use crate::parallel::RunOptions;
use crate::profile::{OpRecord, ProfileDb, WorkerSpan};
use crate::reuse::{charge_bytes, Liveness};
use crate::{Env, Result, RuntimeError};
use ramiel_ir::topo::topo_sort;
use ramiel_ir::{Graph, OpKind};
use ramiel_passes::{inplace_marks, InPlaceMarks};
use ramiel_tensor::{eval_op, eval_op_inplace, ExecCtx, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Execute the whole graph on the calling thread in topological order.
/// Returns the graph outputs. This is the baseline every parallel schedule
/// is validated against.
pub fn run_sequential(graph: &Graph, inputs: &Env, ctx: &ExecCtx) -> Result<Env> {
    run_sequential_opts(graph, inputs, ctx, &RunOptions::default())
}

/// [`run_sequential`] with [`RunOptions`] — the fault injector applies its
/// node-keyed faults here too (kernel errors via the kernel hook, delays as
/// sleeps, panics via [`InjectedPanic`]); channel faults (`DropMessage`)
/// have no transport to act on and are no-ops. This is what lets the
/// supervisor's sequential fallback stay subject to the same fault plan.
pub fn run_sequential_opts(
    graph: &Graph,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<Env> {
    run_sequential_inner(graph, inputs, ctx, opts, None)
}

/// [`run_sequential`] plus a single-worker [`ProfileDb`] — the same timeline
/// shape the parallel executors produce (one op record per node, a worker
/// span, zero slack and no channels), so executors can be compared like for
/// like.
pub fn run_sequential_profiled(
    graph: &Graph,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<(Env, ProfileDb)> {
    let mut db = ProfileDb::new(1, 1);
    db.set_epoch_offset_ns(opts.obs.now_ns());
    let out = run_sequential_inner(graph, inputs, ctx, opts, Some(&mut db))?;
    Ok((out, db))
}

fn run_sequential_inner(
    graph: &Graph,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
    mut profile: Option<&mut ProfileDb>,
) -> Result<Env> {
    let ctx = &opts.apply_backend(ctx);
    if let Some(db) = profile.as_deref_mut() {
        db.set_backend(ctx.backend().name());
    }
    let epoch = Instant::now();
    let order = topo_sort(graph).map_err(|e| RuntimeError::Setup(e.to_string()))?;
    let mut env: HashMap<&str, Value> = HashMap::with_capacity(graph.num_nodes() * 2);
    for (name, v) in inputs {
        env.insert(name.as_str(), v.clone());
    }

    // Weights are converted to `Value`s at most once per run (or zero times
    // when the caller shares a table via `RunOptions::init_values`); each
    // fetch afterwards is a refcount bump. The per-fetch
    // `Value::from_tensor_data` this replaces deep-copied a weight every
    // time a node consumed it.
    let init_values = match &opts.init_values {
        Some(iv) => std::sync::Arc::clone(iv),
        None => crate::initializer_values(graph)?,
    };

    let fetch = |env: &HashMap<&str, Value>, name: &str| -> Result<Value> {
        if let Some(v) = env.get(name) {
            return Ok(v.clone());
        }
        if let Some(v) = init_values.get(name) {
            return Ok(v.clone());
        }
        Err(RuntimeError::Setup(format!("tensor `{name}` unavailable")))
    };

    // Liveness bookkeeping: remaining reads per tensor (graph outputs carry
    // an extra pin so they survive to the final fetch). Dead tensors are
    // evicted from `env` after their last consumer, and a consumer marked by
    // the in-place pass takes its dying operand *out* of the env so the
    // kernel can overwrite a uniquely-owned buffer.
    let marks = if opts.reuse {
        inplace_marks(graph)
    } else {
        InPlaceMarks::empty()
    };
    let mut live = {
        let mut uses: HashMap<&str, usize> = HashMap::new();
        for node in &graph.nodes {
            for t in &node.inputs {
                *uses.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        for name in &graph.outputs {
            *uses.entry(name.as_str()).or_insert(0) += 1;
        }
        Liveness::new(uses, ctx.mem_gauge().cloned())
    };

    for &id in &order {
        let node = &graph.nodes[id];
        let armed = match &opts.injector {
            Some(inj) => inj.begin_node(id, 0),
            None => Vec::new(),
        };
        let mut kernel_fault = false;
        for kind in &armed {
            opts.obs.instant(
                0,
                format!("fault:{}", kind.name()),
                "fault",
                serde_json::json!({ "node": id }),
            );
            match kind {
                FaultKind::KernelError => kernel_fault = true,
                FaultKind::WorkerPanic => std::panic::panic_any(InjectedPanic {
                    node: id,
                    cluster: None,
                }),
                FaultKind::SendDelay { millis } | FaultKind::RecvDelay { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(*millis))
                }
                FaultKind::DropMessage => {} // no channels to drop from
            }
        }
        let op_start = profile.is_some().then(Instant::now);
        let outputs = if matches!(node.op, OpKind::Constant) {
            if kernel_fault {
                return Err(RuntimeError::Injected {
                    cluster: None,
                    node: id,
                    kind: FaultKind::KernelError,
                });
            }
            let v = init_values.get(&node.outputs[0]).ok_or_else(|| {
                RuntimeError::Setup(format!("Constant `{}` missing payload", node.name))
            })?;
            vec![v.clone()]
        } else {
            // The marked operand is pulled out of the env at its last read
            // (remaining == 1 means this node is the sole surviving
            // consumer), dropping the env's handle so the kernel's
            // `Arc::get_mut` gate can succeed.
            let mark = marks.slot(id);
            let mut owned_slot = None;
            let ins: Result<Vec<Value>> = node
                .inputs
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if mark == Some(i) && live.remaining(&t.as_str()) == 1 {
                        if let Some(v) = env.remove(t.as_str()) {
                            owned_slot = Some(i);
                            return Ok(v);
                        }
                    }
                    fetch(&env, t)
                })
                .collect();
            let hooked;
            let eval_ctx = if kernel_fault {
                hooked = FaultInjector::kernel_fault_ctx(ctx, None, id);
                &hooked
            } else {
                ctx
            };
            match owned_slot {
                Some(s) => eval_op_inplace(eval_ctx, &node.op, ins?, s),
                None => eval_op(eval_ctx, &node.op, &ins?),
            }
            .map_err(|e| {
                if e.0.starts_with(INJECT_MARKER) {
                    RuntimeError::Injected {
                        cluster: None,
                        node: id,
                        kind: FaultKind::KernelError,
                    }
                } else {
                    RuntimeError::Kernel {
                        cluster: None,
                        node: Some(id),
                        msg: format!("{}: {}", node.name, e.0),
                    }
                }
            })?
        };
        if let Some(db) = profile.as_deref_mut() {
            let start = op_start.expect("op_start is set whenever profiling");
            db.extend(vec![OpRecord {
                worker: 0,
                batch: 0,
                node: id,
                start_ns: (start - epoch).as_nanos() as u64,
                end_ns: epoch.elapsed().as_nanos() as u64,
                slack_after_ns: 0,
            }]);
        }
        for (name, v) in node.outputs.iter().zip(outputs) {
            live.charge(name.as_str(), charge_bytes(&node.op, &v));
            env.insert(name.as_str(), v);
        }
        if opts.reuse {
            // Inputs whose last read this was — and outputs nothing ever
            // reads — die here.
            for t in &node.inputs {
                if live.consume(&t.as_str()) {
                    env.remove(t.as_str());
                    live.discharge(&t.as_str());
                }
            }
            for name in &node.outputs {
                if live.remaining(&name.as_str()) == 0 {
                    env.remove(name.as_str());
                    live.discharge(&name.as_str());
                }
            }
        }
    }
    if let Some(db) = profile {
        db.push_worker_span(WorkerSpan {
            worker: 0,
            start_ns: 0,
            end_ns: epoch.elapsed().as_nanos() as u64,
        });
    }

    let mut out = Env::new();
    for name in &graph.outputs {
        out.insert(name.clone(), fetch(&env, name)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::synth_inputs;
    use ramiel_ir::{DType, GraphBuilder};
    use ramiel_models::{build, ModelConfig, ModelKind};

    #[test]
    fn tiny_conv_net_runs() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let y = b.conv_relu(&x, 3, 4, 3, 1, 1);
        let z = b.op("gap", OpKind::GlobalAveragePool, vec![y]);
        b.output(&z);
        let g = b.finish().unwrap();
        let out = run_sequential(&g, &synth_inputs(&g, 1), &ExecCtx::sequential()).unwrap();
        let v = out[&z].f32().unwrap().clone();
        assert_eq!(v.shape(), &[1, 4, 1, 1]);
        // relu output means all GAP values are >= 0
        assert!(v.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn outputs_match_inferred_shapes_for_every_model() {
        let cfg = ModelConfig::tiny();
        for kind in ModelKind::all() {
            let g = build(kind, &cfg);
            let out = run_sequential(&g, &synth_inputs(&g, 7), &ExecCtx::sequential())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            for name in &g.outputs {
                let expect = &g.value_info[name];
                assert_eq!(
                    out[name].shape(),
                    &expect.shape[..],
                    "{}: output {name} shape mismatch",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let inputs = synth_inputs(&g, 3);
        let a = run_sequential(&g, &inputs, &ExecCtx::sequential()).unwrap();
        let b = run_sequential(&g, &inputs, &ExecCtx::sequential()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_input_is_an_error() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2]);
        let y = b.op("r", OpKind::Relu, vec![x]);
        b.output(&y);
        let g = b.finish().unwrap();
        let err = run_sequential(&g, &Env::new(), &ExecCtx::sequential()).unwrap_err();
        assert_eq!(err.code(), "RT-SETUP");
    }

    #[test]
    fn sequential_injection_fires_kernel_fault() {
        let g = ramiel_models::synthetic::chain(4);
        let inputs = synth_inputs(&g, 1);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 2,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::KernelError,
            }],
        });
        let opts = RunOptions::with_injector(inj);
        let err = run_sequential_opts(&g, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT");
        assert!(
            matches!(err, RuntimeError::Injected { node: 2, .. }),
            "{err}"
        );
    }
}
