//! Deterministic discrete-event simulator for clustered schedules.
//!
//! Executes a (hyper)clustering against a [`CostModel`] instead of real
//! kernels: every op takes `node_cost` time units on its worker, and every
//! cross-worker dependence adds `comm_latency` units (the paper's unit edge
//! cost). Workers follow the same first-ready-first policy as the real
//! executor. The simulator makes all of the paper's tables reproducible
//! bit-for-bit, independent of host timing noise, and reports the same
//! slack statistics the profiler measures.

use crate::{Result, RuntimeError};
use ramiel_cluster::cost::CostModel;
use ramiel_cluster::hyper::{HyperClustering, HyperOp};
use ramiel_cluster::Clustering;
use ramiel_ir::Graph;
use serde::Serialize;
use std::collections::HashMap;

/// Simulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Latency added to each cross-worker dependence (paper: 1).
    pub comm_latency: u64,
    /// Fixed per-op scheduling overhead (models interpreter dispatch; 0 by
    /// default).
    pub dispatch_overhead: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            comm_latency: 1,
            dispatch_overhead: 0,
        }
    }
}

/// One simulated op execution.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimEvent {
    pub start: u64,
    pub end: u64,
    pub worker: usize,
    pub batch: usize,
    pub node: usize,
}

/// Result of simulating one schedule.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// Total simulated time until the last op finishes.
    pub makespan: u64,
    /// Busy time per worker.
    pub busy: Vec<u64>,
    /// Idle (slack) time per worker within the makespan.
    pub slack: Vec<u64>,
    /// Every op execution in simulation order (ascending start time).
    pub timeline: Vec<SimEvent>,
}

impl SimResult {
    /// Fraction of total worker-time spent idle.
    pub fn slack_fraction(&self) -> f64 {
        let total: u64 = self.busy.iter().chain(&self.slack).sum();
        if total == 0 {
            return 0.0;
        }
        self.slack.iter().sum::<u64>() as f64 / total as f64
    }
}

/// Simulated time of running the whole graph on one worker (no comm cost).
pub fn simulate_sequential(graph: &Graph, cost: &dyn CostModel, batch: usize) -> u64 {
    cost.total_cost(graph) * batch as u64
}

/// Simulate a batch-1 clustering.
pub fn simulate_clustering(
    graph: &Graph,
    clustering: &Clustering,
    cost: &dyn CostModel,
    cfg: &SimConfig,
) -> Result<SimResult> {
    let hc = ramiel_cluster::hypercluster(clustering, 1);
    simulate_hyper(graph, &hc, cost, cfg)
}

/// Simulate a hyperclustered schedule.
pub fn simulate_hyper(
    graph: &Graph,
    hc: &HyperClustering,
    cost: &dyn CostModel,
    cfg: &SimConfig,
) -> Result<SimResult> {
    let k = hc.num_hyperclusters();
    let adj = graph.adjacency();
    let node_cost: Vec<u64> = graph
        .nodes
        .iter()
        .map(|n| cost.node_cost(graph, n))
        .collect();

    // (batch, node) → worker
    let mut owner: HashMap<(usize, usize), usize> = HashMap::new();
    for (w, ops) in hc.hyperclusters.iter().enumerate() {
        for op in ops {
            owner.insert((op.batch, op.node), w);
        }
    }

    let mut finish: HashMap<(usize, usize), u64> = HashMap::new();
    let mut worker_time = vec![0u64; k];
    let mut busy = vec![0u64; k];
    let mut cursor: Vec<Vec<&HyperOp>> = hc
        .hyperclusters
        .iter()
        .map(|ops| ops.iter().collect())
        .collect();
    let mut remaining: usize = cursor.iter().map(|c| c.len()).sum();
    let mut timeline: Vec<SimEvent> = Vec::with_capacity(remaining);

    while remaining > 0 {
        // Each worker proposes its first dependency-satisfied op.
        let mut best: Option<(u64, usize, usize)> = None; // (start, worker, index)
        for (w, ops) in cursor.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                let node = &graph.nodes[op.node];
                let mut ready = 0u64;
                let mut ok = true;
                for &p in &adj.preds[node.id] {
                    match finish.get(&(op.batch, p)) {
                        Some(&f) => {
                            let pw = owner[&(op.batch, p)];
                            let arrive = if pw == w { f } else { f + cfg.comm_latency };
                            ready = ready.max(arrive);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let start = ready.max(worker_time[w]);
                if best.is_none_or(|(bs, bw, _)| (start, w) < (bs, bw)) {
                    best = Some((start, w, i));
                }
                break; // first-ready-first: only the earliest satisfiable op
            }
        }
        let Some((start, w, i)) = best else {
            return Err(RuntimeError::Setup(
                "simulated schedule deadlocked (no executable op)".into(),
            ));
        };
        let op = cursor[w].remove(i);
        let dur = node_cost[op.node] + cfg.dispatch_overhead;
        let end = start + dur;
        worker_time[w] = end;
        busy[w] += dur;
        finish.insert((op.batch, op.node), end);
        timeline.push(SimEvent {
            start,
            end,
            worker: w,
            batch: op.batch,
            node: op.node,
        });
        remaining -= 1;
    }

    let makespan = *worker_time.iter().max().unwrap_or(&0);
    let slack = busy.iter().map(|&b| makespan.saturating_sub(b)).collect();
    timeline.sort_by_key(|e| (e.start, e.worker));
    Ok(SimResult {
        makespan,
        busy,
        slack,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
    use ramiel_models::synthetic;

    #[test]
    fn chain_has_no_parallel_benefit() {
        let g = synthetic::chain(10);
        let clustering = cluster_graph(&g, &StaticCost);
        let sim = simulate_clustering(&g, &clustering, &StaticCost, &SimConfig::default()).unwrap();
        let seq = simulate_sequential(&g, &StaticCost, 1);
        assert_eq!(clustering.num_clusters(), 1);
        assert_eq!(sim.makespan, seq);
        assert_eq!(sim.slack_fraction(), 0.0);
    }

    #[test]
    fn fork_join_speeds_up() {
        let g = synthetic::fork_join(4, 6, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let sim = simulate_clustering(&g, &clustering, &StaticCost, &SimConfig::default()).unwrap();
        let seq = simulate_sequential(&g, &StaticCost, 1);
        assert!(
            sim.makespan < seq,
            "parallel {} should beat sequential {seq}",
            sim.makespan
        );
    }

    #[test]
    fn comm_latency_hurts_makespan() {
        let g = synthetic::fork_join(4, 4, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let cheap = simulate_clustering(
            &g,
            &clustering,
            &StaticCost,
            &SimConfig {
                comm_latency: 0,
                dispatch_overhead: 0,
            },
        )
        .unwrap();
        let pricey = simulate_clustering(
            &g,
            &clustering,
            &StaticCost,
            &SimConfig {
                comm_latency: 20,
                dispatch_overhead: 0,
            },
        )
        .unwrap();
        assert!(pricey.makespan >= cheap.makespan);
    }

    #[test]
    fn hyperclustering_amortizes_slack() {
        // unbalanced fork-join: hypercluster batch 4 should have lower
        // per-sample makespan than batch 1 × 4
        let g = synthetic::fork_join(2, 5, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let cfg = SimConfig {
            comm_latency: 3,
            dispatch_overhead: 0,
        };
        let single = simulate_clustering(&g, &clustering, &StaticCost, &cfg)
            .unwrap()
            .makespan;
        let hc = hypercluster(&clustering, 4);
        let batched = simulate_hyper(&g, &hc, &StaticCost, &cfg).unwrap().makespan;
        assert!(
            batched < 4 * single,
            "batched {batched} should beat 4×{single}"
        );
    }

    #[test]
    fn switched_beats_plain_on_unbalanced_clusters() {
        let g = synthetic::fork_join(2, 8, 1);
        let clustering = cluster_graph(&g, &StaticCost);
        let cfg = SimConfig::default();
        let plain = simulate_hyper(&g, &hypercluster(&clustering, 4), &StaticCost, &cfg).unwrap();
        let switched = simulate_hyper(
            &g,
            &switched_hypercluster(&clustering, 4),
            &StaticCost,
            &cfg,
        )
        .unwrap();
        assert!(
            switched.makespan <= plain.makespan,
            "switched {} vs plain {}",
            switched.makespan,
            plain.makespan
        );
    }

    #[test]
    fn busy_time_equals_total_cost() {
        let g = synthetic::fork_join(3, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let sim = simulate_clustering(&g, &clustering, &StaticCost, &SimConfig::default()).unwrap();
        assert_eq!(
            sim.busy.iter().sum::<u64>(),
            simulate_sequential(&g, &StaticCost, 1)
        );
    }
}
