//! Parallel cluster executor.
//!
//! One OS thread per (hyper)cluster — the paper forks one Python process per
//! cluster; Rust threads give the same placement without the GIL dance.
//! Every cross-cluster tensor dependence becomes a message on the consumer's
//! inbox channel (the paper's `queue.put()` / `queue.get()` pairs).
//!
//! Workers execute their op list *first-ready-first*: they walk the list and
//! run the earliest op whose operands have arrived, buffering out-of-order
//! messages. For linear/merged clusters (ordered by decreasing
//! `distance_to_end`) this degenerates to strict in-order execution; for
//! *switched* hyperclusters it is load-bearing — a strict in-order worker
//! can deadlock on cross-batch wait cycles, which is precisely why the paper
//! calls automatic switched hyperclustering "complex" and hand-tunes it for
//! larger models.
//!
//! ## Failure semantics
//!
//! Worker panics are caught per-thread and surfaced as structured
//! [`RuntimeError`]s. The first failing worker raises a shared abort flag
//! and broadcasts [`Msg::Abort`] to every peer inbox, so workers blocked in
//! `recv` wake immediately instead of burning the full recv timeout. The
//! join path then reports the *root cause* (kernel error, panic, injected
//! fault, timeout) rather than the secondary teardown errors. Fault
//! injection ([`crate::fault`]) and the recv timeout are threaded through
//! [`RunOptions`].

use crate::fault::{panic_to_error, FaultInjector, FaultKind, InjectedPanic, INJECT_MARKER};
use crate::profile::{OpRecord, ProfileDb, WorkerSpan};
use crate::reuse::{charge_bytes, Liveness};
use crate::{value_bytes, Env, Result, RuntimeError, ABORT_DETAIL};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use ramiel_cluster::hyper::{HyperClustering, HyperOp};
use ramiel_cluster::Clustering;
use ramiel_ir::{Graph, OpKind};
use ramiel_obs::{ChannelMeter, Obs};
use ramiel_passes::{inplace_marks, InPlaceMarks};
use ramiel_tensor::{eval_op, eval_op_inplace, ExecCtx, KernelBackend, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker may block on a message before declaring the schedule
/// deadlocked (a schedule bug, not a transient condition). Overridable via
/// `RAMIEL_RECV_TIMEOUT_MS` so tests can exercise the deadlock path quickly,
/// or per-run via [`RunOptions::recv_timeout`].
pub(crate) fn default_recv_timeout() -> Duration {
    static TIMEOUT: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        let default = Duration::from_millis(crate::limits::DEFAULT_RECV_TIMEOUT_MS);
        match std::env::var(crate::limits::RECV_TIMEOUT_ENV) {
            Ok(v) => v
                .parse::<u64>()
                .map(Duration::from_millis)
                .unwrap_or_else(|_| {
                    ramiel_obs::warn(
                        "RT-ENV",
                        format!(
                            "ignoring unparsable RAMIEL_RECV_TIMEOUT_MS=`{v}` \
                             (want milliseconds as an integer); using {}s",
                            default.as_secs()
                        ),
                    );
                    default
                }),
            Err(_) => default,
        }
    })
}

/// Per-run execution options: fault injection, failure-detection knobs, and
/// the observability sink.
#[derive(Clone)]
pub struct RunOptions {
    /// Fault injector shared across workers (and across supervised retries).
    pub injector: Option<Arc<FaultInjector>>,
    /// Worker recv timeout; `None` uses `RAMIEL_RECV_TIMEOUT_MS` or 30s.
    pub recv_timeout: Option<Duration>,
    /// Observability sink for structured fault/abort events; disabled by
    /// default (one null check per event).
    pub obs: Obs,
    /// Pre-converted initializer table (see [`crate::initializer_values`]).
    /// When set, runs reuse these shared `Value`s instead of re-converting
    /// the graph's `TensorData` — the win for repeated inference, since the
    /// conversion is the only remaining deep copy of the weights.
    pub init_values: Option<Arc<HashMap<String, Value>>>,
    /// Lifetime-driven buffer reuse (on by default): evict tensors from
    /// worker environments after their last consumer and honor the
    /// `ramiel_passes::inplace` marks via `Arc::get_mut`. Outputs are
    /// bit-identical either way (the in-place kernels mirror the allocating
    /// ones and only fire on provably dead, uniquely-owned buffers); turning
    /// this off exists for memory-accounting baselines.
    pub reuse: bool,
    /// Scheduling adversary for the work-stealing executor (seeded stalls
    /// and placement permutations); ignored by the static executors. Used
    /// by the conformance harness — see `tests/steal_conformance.rs`.
    pub steal_chaos: Option<crate::stealing::StealChaos>,
    /// Request ids carried by a serve batch. Attached to the stealing
    /// executor's run span, so per-request serve traces can be joined with
    /// steal-pool task placement on the shared obs timeline. `None`
    /// outside the serving path.
    pub request_ids: Option<Arc<Vec<u64>>>,
    /// Kernel backend override for this run. `None` keeps whatever the
    /// [`ExecCtx`] already carries (its default is
    /// [`KernelBackend::ScalarF32`]); `Some` rebinds the context at the
    /// executor boundary, so one prepared model can serve different
    /// backends per request. All six executors honor it — the override is
    /// applied at each executor's single ctx-plumbing point.
    pub backend: Option<KernelBackend>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            injector: None,
            recv_timeout: None,
            obs: Obs::default(),
            init_values: None,
            reuse: true,
            steal_chaos: None,
            request_ids: None,
            backend: None,
        }
    }
}

impl RunOptions {
    pub fn with_injector(injector: Arc<FaultInjector>) -> Self {
        RunOptions {
            injector: Some(injector),
            ..RunOptions::default()
        }
    }

    /// Enable or disable lifetime-driven buffer reuse.
    pub fn reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Reuse a shared initializer table across runs.
    pub fn init_values(mut self, init_values: Arc<HashMap<String, Value>>) -> Self {
        self.init_values = Some(init_values);
        self
    }

    /// Arm the work-stealing scheduling adversary (no-op on the static
    /// executors).
    pub fn steal_chaos(mut self, chaos: crate::stealing::StealChaos) -> Self {
        self.steal_chaos = Some(chaos);
        self
    }

    /// Select the kernel backend for this run (scalar f32, lane-unrolled
    /// SIMD f32, or quantized i8).
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The context this run should execute with: the caller's `ctx`, with
    /// the backend override rebound if one is set. Every executor routes
    /// its worker contexts through here so `--backend` behaves identically
    /// across all of them.
    pub fn apply_backend(&self, ctx: &ExecCtx) -> ExecCtx {
        match self.backend {
            Some(b) if b != ctx.backend() => ctx.with_backend(b),
            _ => ctx.clone(),
        }
    }
}

/// Key for a tensor instance: (tensor name, batch element).
type Key = (String, usize);

/// A message between cluster workers. Tensors carry the sending worker so
/// receivers can attribute blocked time to the right channel edge.
enum Msg {
    Tensor(Key, Value, usize),
    /// A peer failed; unwind without waiting for more tensors.
    Abort,
}

/// Execute a batch-1 clustering in parallel. Returns the graph outputs.
pub fn run_parallel(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
) -> Result<Env> {
    run_parallel_opts(graph, clustering, inputs, ctx, &RunOptions::default())
}

/// [`run_parallel`] with explicit [`RunOptions`].
pub fn run_parallel_opts(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<Env> {
    let hc = ramiel_cluster::hypercluster(clustering, 1);
    let mut outs = run_hyper_opts(graph, &hc, std::slice::from_ref(inputs), ctx, opts)?;
    Ok(outs.pop().expect("batch 1 yields one output env"))
}

/// Same as [`run_parallel`] but also returns the profiling database
/// (per-op times and communication slack).
pub fn run_parallel_profiled(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
) -> Result<(Env, ProfileDb)> {
    run_parallel_profiled_opts(graph, clustering, inputs, ctx, &RunOptions::default())
}

/// [`run_parallel_profiled`] with explicit [`RunOptions`].
pub fn run_parallel_profiled_opts(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<(Env, ProfileDb)> {
    let hc = ramiel_cluster::hypercluster(clustering, 1);
    let (mut outs, db) =
        run_hyper_profiled_opts(graph, &hc, std::slice::from_ref(inputs), ctx, opts)?;
    Ok((outs.pop().expect("batch 1 yields one output env"), db))
}

/// Execute a hyperclustered schedule over `batch` independent input
/// environments. Returns one output environment per batch element.
pub fn run_hyper(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
) -> Result<Vec<Env>> {
    run_hyper_opts(graph, hc, inputs, ctx, &RunOptions::default())
}

/// [`run_hyper`] with explicit [`RunOptions`].
pub fn run_hyper_opts(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<Vec<Env>> {
    run_hyper_inner(graph, hc, inputs, ctx, opts).map(|(outs, _)| outs)
}

/// [`run_hyper`] plus the profiling database.
pub fn run_hyper_profiled(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
) -> Result<(Vec<Env>, ProfileDb)> {
    run_hyper_inner(graph, hc, inputs, ctx, &RunOptions::default())
}

/// [`run_hyper_profiled`] with explicit [`RunOptions`].
pub fn run_hyper_profiled_opts(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<(Vec<Env>, ProfileDb)> {
    run_hyper_inner(graph, hc, inputs, ctx, opts)
}

/// Shared read-only worker state (one instance per run, borrowed by every
/// worker thread in the scope).
struct Shared<'a> {
    graph: &'a Graph,
    inputs: &'a [Env],
    init_values: &'a HashMap<String, Value>,
    senders: &'a [Sender<Msg>],
    consumers: &'a HashMap<Key, Vec<usize>>,
    out_envs: &'a Mutex<Vec<Env>>,
    graph_outputs: &'a HashSet<&'a str>,
    db: &'a Mutex<ProfileDb>,
    meter: &'a ChannelMeter,
    obs: &'a Obs,
    epoch: Instant,
    abort: &'a AtomicBool,
    recv_timeout: Duration,
    injector: Option<&'a Arc<FaultInjector>>,
    marks: &'a InPlaceMarks,
    reuse: bool,
}

fn run_hyper_inner(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
) -> Result<(Vec<Env>, ProfileDb)> {
    if inputs.len() != hc.batch {
        return Err(RuntimeError::Setup(format!(
            "hypercluster expects {} input envs, got {}",
            hc.batch,
            inputs.len()
        )));
    }
    let k = hc.num_hyperclusters();

    // (batch, node) → owning worker.
    let mut owner: HashMap<(usize, usize), usize> = HashMap::new();
    for (w, ops) in hc.hyperclusters.iter().enumerate() {
        for op in ops {
            owner.insert((op.batch, op.node), w);
        }
    }

    // For every produced tensor instance, the set of *remote* consumer
    // workers it must be sent to.
    let adj = graph.adjacency();
    let mut consumers: HashMap<Key, Vec<usize>> = HashMap::new();
    for (w, ops) in hc.hyperclusters.iter().enumerate() {
        for op in ops {
            let node = &graph.nodes[op.node];
            for inp in &node.inputs {
                if let Some(&p) = adj.producer_of.get(inp) {
                    let pw = owner
                        .get(&(op.batch, p))
                        .ok_or_else(|| RuntimeError::Setup(format!("node {p} unassigned")))?;
                    if *pw != w {
                        let entry = consumers.entry((inp.clone(), op.batch)).or_default();
                        if !entry.contains(&w) {
                            entry.push(w);
                        }
                    }
                }
            }
        }
    }

    // One inbox per worker. Bounded so a runaway producer applies
    // backpressure instead of growing without limit; the capacity lives in
    // `limits` where the ramiel-analyze RA0401 lint reads the same number.
    let channels: Vec<(Sender<Msg>, Receiver<Msg>)> = (0..k)
        .map(|_| bounded(crate::limits::DATA_CHANNEL_CAPACITY))
        .collect();
    let senders: Vec<Sender<Msg>> = channels.iter().map(|(s, _)| s.clone()).collect();

    // Shared read-only state. The initializer table is built (deep-copied
    // out of the graph) at most once per run — or zero times, when the
    // caller supplies a shared table via `RunOptions::init_values` — and
    // every worker fetch of a weight is then a refcount bump.
    let init_values: Arc<HashMap<String, Value>> = match &opts.init_values {
        Some(iv) => Arc::clone(iv),
        None => crate::initializer_values(graph)?,
    };
    let graph_outputs: HashSet<&str> = graph.outputs.iter().map(String::as_str).collect();

    let ctx = opts.apply_backend(ctx);
    let out_envs: Mutex<Vec<Env>> = Mutex::new(vec![Env::new(); hc.batch]);
    let mut db0 = ProfileDb::new(k, hc.batch);
    // Anchor this run on the sink's timeline so executor slices line up
    // with compile spans captured earlier on the same sink.
    db0.set_epoch_offset_ns(opts.obs.now_ns());
    db0.set_backend(ctx.backend().name());
    let db: Mutex<ProfileDb> = Mutex::new(db0);
    let meter = ChannelMeter::new(k);
    let abort = AtomicBool::new(false);
    let marks = if opts.reuse {
        inplace_marks(graph)
    } else {
        InPlaceMarks::empty()
    };
    let shared = Shared {
        graph,
        inputs,
        init_values: init_values.as_ref(),
        senders: &senders,
        consumers: &consumers,
        out_envs: &out_envs,
        graph_outputs: &graph_outputs,
        db: &db,
        meter: &meter,
        obs: &opts.obs,
        epoch: Instant::now(),
        abort: &abort,
        recv_timeout: opts.recv_timeout.unwrap_or_else(default_recv_timeout),
        injector: opts.injector.as_ref(),
        marks: &marks,
        reuse: opts.reuse,
    };

    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::with_capacity(k);
        for (w, ops) in hc.hyperclusters.iter().enumerate() {
            let rx = channels[w].1.clone();
            let ctx = ctx.clone();
            let sh = &shared;
            handles.push(scope.spawn(move || -> Result<()> {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(sh, w, ops, rx, &ctx)
                }))
                .unwrap_or_else(|payload| Err(panic_to_error(Some(w), payload)));
                if let Err(e) = &r {
                    // First failure: raise the abort flag and wake every
                    // peer so nobody waits out the full recv timeout.
                    if !e.is_abort() {
                        sh.abort.store(true, Ordering::Relaxed);
                        for (t, s) in sh.senders.iter().enumerate() {
                            if t != w {
                                // try_send: the abort *flag* is the real
                                // signal; this only wakes peers blocked in
                                // recv, and a full inbox means the peer is
                                // not blocked.
                                let _ = s.try_send(Msg::Abort);
                            }
                        }
                    }
                }
                r
            }));
        }
        let mut errors: Vec<RuntimeError> = Vec::new();
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => errors.push(e),
                // Unreachable in practice (panics are caught inside the
                // closure), but never let a panic escape the join path.
                Err(payload) => errors.push(panic_to_error(Some(w), payload)),
            }
        }
        match root_cause(errors) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    db.lock().set_channels(meter.stats());

    // Outputs that are direct inputs/initializers (degenerate but legal).
    let mut outs = out_envs.into_inner();
    for (b, env) in outs.iter_mut().enumerate() {
        for name in &graph.outputs {
            if !env.contains_key(name) {
                if let Some(v) = inputs[b].get(name).or_else(|| init_values.get(name)) {
                    env.insert(name.clone(), v.clone());
                }
            }
        }
    }
    Ok((outs, db.into_inner()))
}

/// Pick the most root-cause-like error from a failed run: injected faults,
/// kernel errors and panics outrank timeouts, which outrank closed
/// channels, which outrank the secondary post-abort teardown errors.
fn root_cause(errors: Vec<RuntimeError>) -> Option<RuntimeError> {
    errors
        .into_iter()
        .enumerate()
        .min_by_key(|(i, e)| (e.severity_rank(), *i))
        .map(|(_, e)| e)
}

fn abort_error(me: usize) -> RuntimeError {
    RuntimeError::ChannelClosed {
        cluster: Some(me),
        detail: ABORT_DETAIL.into(),
    }
}

/// The body of one cluster worker: first-ready-first execution over its op
/// list, draining the inbox while blocked.
fn worker_loop(
    sh: &Shared<'_>,
    me: usize,
    ops: &[HyperOp],
    rx: Receiver<Msg>,
    ctx: &ExecCtx,
) -> Result<()> {
    // Local environment of tensor instances available to this worker.
    let mut env: HashMap<Key, Value> = HashMap::new();
    // Liveness over this worker's keys: reads remaining per tensor instance
    // (graph outputs produced here carry one extra pin so they stay resident
    // — and charged — to the end, matching the static estimate).
    let mut live = {
        let mut uses: HashMap<Key, usize> = HashMap::new();
        for op in ops {
            let node = &sh.graph.nodes[op.node];
            for t in &node.inputs {
                *uses.entry((t.clone(), op.batch)).or_insert(0) += 1;
            }
            for name in &node.outputs {
                if sh.graph_outputs.contains(name.as_str()) {
                    *uses.entry((name.clone(), op.batch)).or_insert(0) += 1;
                }
            }
        }
        Liveness::new(uses, ctx.mem_gauge().cloned())
    };
    let mut remaining: Vec<bool> = vec![true; ops.len()];
    let mut left = ops.len();
    let mut records = Vec::with_capacity(ops.len());
    let loop_start_ns = (Instant::now() - sh.epoch).as_nanos() as u64;

    let available = |env: &HashMap<Key, Value>, tensor: &str, batch: usize| -> bool {
        env.contains_key(&(tensor.to_string(), batch))
            || sh.init_values.contains_key(tensor)
            || sh.inputs[batch].contains_key(tensor)
    };
    let fetch = |env: &HashMap<Key, Value>, tensor: &str, batch: usize| -> Result<Value> {
        if let Some(v) = env.get(&(tensor.to_string(), batch)) {
            return Ok(v.clone());
        }
        if let Some(v) = sh.inputs[batch].get(tensor) {
            return Ok(v.clone());
        }
        if let Some(v) = sh.init_values.get(tensor) {
            return Ok(v.clone());
        }
        Err(RuntimeError::Setup(format!(
            "worker {me}: tensor `{tensor}` (batch {batch}) unavailable"
        )))
    };

    while left > 0 {
        if sh.abort.load(Ordering::Relaxed) {
            return Err(abort_error(me));
        }
        // Drain any already-arrived messages without blocking.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Tensor(key, v, from) => {
                    sh.meter.on_recv(from, me, 0);
                    live.charge(key.clone(), value_bytes(&v));
                    env.insert(key, v);
                }
                Msg::Abort => return Err(abort_error(me)),
            }
        }
        // First op whose operands are all available.
        let next = ops.iter().enumerate().position(|(i, op)| {
            remaining[i]
                && sh.graph.nodes[op.node]
                    .inputs
                    .iter()
                    .all(|t| available(&env, t, op.batch))
        });
        let Some(i) = next else {
            // Block for the next message (bounded, so schedule bugs surface
            // as errors instead of hangs).
            let wait_start = Instant::now();
            match rx.recv_timeout(sh.recv_timeout) {
                Ok(Msg::Tensor(key, v, from)) => {
                    let waited = wait_start.elapsed().as_nanos() as u64;
                    sh.meter.on_recv(from, me, waited);
                    if let Some(last) = records.last_mut() {
                        let r: &mut OpRecord = last;
                        r.slack_after_ns += waited;
                    }
                    live.charge(key.clone(), value_bytes(&v));
                    env.insert(key, v);
                    continue;
                }
                Ok(Msg::Abort) => return Err(abort_error(me)),
                Err(_) => {
                    return Err(RuntimeError::Timeout {
                        cluster: Some(me),
                        pending_ops: left,
                        detail: format!(
                            "worker {me}: deadlocked waiting for messages; \
                             run `ramiel check <model>` to statically diagnose the schedule"
                        ),
                    })
                }
            }
        };

        remaining[i] = false;
        left -= 1;
        let op = &ops[i];
        let node = &sh.graph.nodes[op.node];

        // Fault injection: arm this execution's faults, if any.
        let armed = match sh.injector {
            Some(inj) => inj.begin_node(op.node, op.batch),
            None => Vec::new(),
        };
        let mut kernel_fault = false;
        let mut drop_msgs = false;
        let mut send_delay = None;
        for kind in &armed {
            sh.obs.instant(
                me as u32,
                format!("fault:{}", kind.name()),
                "fault",
                serde_json::json!({ "node": op.node, "batch": op.batch }),
            );
            match kind {
                FaultKind::KernelError => kernel_fault = true,
                FaultKind::WorkerPanic => std::panic::panic_any(InjectedPanic {
                    node: op.node,
                    cluster: Some(me),
                }),
                FaultKind::SendDelay { millis } => {
                    send_delay = Some(Duration::from_millis(*millis))
                }
                FaultKind::RecvDelay { millis } => {
                    std::thread::sleep(Duration::from_millis(*millis))
                }
                FaultKind::DropMessage => drop_msgs = true,
            }
        }

        let start = Instant::now();
        let outputs = if matches!(node.op, OpKind::Constant) {
            if kernel_fault {
                return Err(RuntimeError::Injected {
                    cluster: Some(me),
                    node: op.node,
                    kind: FaultKind::KernelError,
                });
            }
            // A Constant's payload is already in the shared initializer
            // table under its output name — share it, don't re-convert.
            let v = sh.init_values.get(&node.outputs[0]).ok_or_else(|| {
                RuntimeError::Setup(format!("Constant `{}` missing payload", node.name))
            })?;
            vec![v.clone()]
        } else {
            // A node marked by the in-place pass takes its dying operand
            // *out* of the env (sole remaining read), so the kernel's
            // `Arc::get_mut` gate can overwrite the buffer in place.
            let mark = sh.marks.slot(op.node);
            let mut owned_slot = None;
            let ins: Result<Vec<Value>> = node
                .inputs
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if mark == Some(i) {
                        let key = (t.clone(), op.batch);
                        if live.remaining(&key) == 1 {
                            if let Some(v) = env.remove(&key) {
                                owned_slot = Some(i);
                                return Ok(v);
                            }
                        }
                    }
                    fetch(&env, t, op.batch)
                })
                .collect();
            let hooked;
            let eval_ctx = if kernel_fault {
                hooked = FaultInjector::kernel_fault_ctx(ctx, Some(me), op.node);
                &hooked
            } else {
                ctx
            };
            match owned_slot {
                Some(s) => eval_op_inplace(eval_ctx, &node.op, ins?, s),
                None => eval_op(eval_ctx, &node.op, &ins?),
            }
            .map_err(|e| {
                if e.0.starts_with(INJECT_MARKER) {
                    RuntimeError::Injected {
                        cluster: Some(me),
                        node: op.node,
                        kind: FaultKind::KernelError,
                    }
                } else {
                    RuntimeError::Kernel {
                        cluster: Some(me),
                        node: Some(op.node),
                        msg: format!("{}: {}", node.name, e.0),
                    }
                }
            })?
        };
        let end = Instant::now();
        records.push(OpRecord {
            worker: me,
            batch: op.batch,
            node: op.node,
            start_ns: (start - sh.epoch).as_nanos() as u64,
            end_ns: (end - sh.epoch).as_nanos() as u64,
            slack_after_ns: 0,
        });

        if let Some(d) = send_delay {
            std::thread::sleep(d);
        }
        for (name, v) in node.outputs.iter().zip(outputs) {
            // Ship to remote consumers (one message per consumer worker) —
            // unless an injected DropMessage fault loses them in transit.
            if !drop_msgs {
                if let Some(targets) = sh.consumers.get(&(name.clone(), op.batch)) {
                    for &t in targets {
                        sh.meter
                            .on_send(me, t, value_bytes(&v), crate::value_copied_bytes(&v));
                        sh.senders[t]
                            .send(Msg::Tensor((name.clone(), op.batch), v.clone(), me))
                            .map_err(|_| RuntimeError::ChannelClosed {
                                cluster: Some(me),
                                detail: "consumer hung up".into(),
                            })?;
                    }
                }
            }
            if sh.graph_outputs.contains(name.as_str()) {
                sh.out_envs.lock()[op.batch].insert(name.clone(), v.clone());
            }
            live.charge((name.clone(), op.batch), charge_bytes(&node.op, &v));
            env.insert((name.clone(), op.batch), v);
        }
        if sh.reuse {
            // Inputs whose last local read this was — and outputs with no
            // local reader (already shipped/recorded above) — die here.
            for t in &node.inputs {
                let key = (t.clone(), op.batch);
                if live.consume(&key) {
                    env.remove(&key);
                    live.discharge(&key);
                }
            }
            for name in &node.outputs {
                let key = (name.clone(), op.batch);
                if live.remaining(&key) == 0 {
                    env.remove(&key);
                    live.discharge(&key);
                }
            }
        }
    }

    drop(live); // release remaining gauge charges (pinned graph outputs)
    let loop_end_ns = (Instant::now() - sh.epoch).as_nanos() as u64;
    let mut db = sh.db.lock();
    db.extend(records);
    db.push_worker_span(WorkerSpan {
        worker: me,
        start_ns: loop_start_ns,
        end_ns: loop_end_ns,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::fault::{Fault, FaultPlan};
    use crate::synth_inputs;
    use ramiel_cluster::{cluster_graph, switched_hypercluster, StaticCost};
    use ramiel_models::{build, synthetic, ModelConfig, ModelKind};

    fn assert_close(a: &Env, b: &Env) {
        assert_eq!(a.len(), b.len());
        for (k, va) in a {
            let vb = &b[k];
            match (va, vb) {
                (Value::F32(x), Value::F32(y)) => {
                    assert_eq!(x.shape(), y.shape(), "{k} shape");
                    for (p, q) in x.data().iter().zip(y.data()) {
                        assert!((p - q).abs() <= 1e-4 * p.abs().max(1.0), "{k}: {p} vs {q}");
                    }
                }
                _ => assert_eq!(va, vb, "{k}"),
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_fork_join() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 11);
        let ctx = ExecCtx::sequential();
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let par = run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
        assert_close(&seq, &par);
    }

    #[test]
    fn parallel_matches_sequential_on_every_model() {
        let cfg = ModelConfig::tiny();
        let ctx = ExecCtx::sequential();
        for kind in ModelKind::all() {
            let g = build(kind, &cfg);
            let clustering = cluster_graph(&g, &StaticCost);
            let inputs = synth_inputs(&g, 5);
            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
            let par = run_parallel(&g, &clustering, &inputs, &ctx)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_close(&seq, &par);
        }
    }

    #[test]
    fn hypercluster_matches_per_sample_sequential() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        for batch in [2usize, 4] {
            let hc = ramiel_cluster::hypercluster(&clustering, batch);
            let inputs: Vec<Env> = (0..batch).map(|b| synth_inputs(&g, b as u64)).collect();
            let outs = run_hyper(&g, &hc, &inputs, &ctx).unwrap();
            for (b, inp) in inputs.iter().enumerate() {
                let seq = run_sequential(&g, inp, &ctx).unwrap();
                assert_close(&seq, &outs[b]);
            }
        }
    }

    #[test]
    fn switched_hypercluster_executes_without_deadlock() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let hc = switched_hypercluster(&clustering, 3);
        let inputs: Vec<Env> = (0..3).map(|b| synth_inputs(&g, 100 + b as u64)).collect();
        let outs = run_hyper(&g, &hc, &inputs, &ctx).unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let seq = run_sequential(&g, inp, &ctx).unwrap();
            assert_close(&seq, &outs[b]);
        }
    }

    #[test]
    fn channel_sends_copy_headers_not_payloads() {
        // The zero-copy regression guard: every cross-cluster message
        // carries its full logical payload in `bytes`, but the sender only
        // deep-copies the Value header + shape vector (the element buffer
        // is Arc-shared). Aggregate copied bytes must therefore sit far
        // below aggregate payload bytes. A 64 KiB activation crossing two
        // clusters makes the header/payload gap unmistakable.
        use ramiel_cluster::{Cluster, Clustering};
        use ramiel_ir::{DType, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new("zc");
        let x = b.input("x", DType::F32, vec![1, 16384]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Sigmoid, vec![a]);
        b.output(&c);
        let g = b.finish().unwrap();
        let clustering = Clustering::new(vec![Cluster::new(vec![0]), Cluster::new(vec![1])]);
        let inputs = synth_inputs(&g, 9);
        let (_, db) =
            run_parallel_profiled(&g, &clustering, &inputs, &ExecCtx::sequential()).unwrap();
        let stats = db.channels();
        assert!(!stats.is_empty(), "expected cross-cluster traffic");
        let bytes: u64 = stats.iter().map(|c| c.bytes).sum();
        let copied: u64 = stats.iter().map(|c| c.copied_bytes).sum();
        assert!(copied > 0, "sends still copy the value header");
        assert!(
            copied * 2 <= bytes,
            "copied {copied} of {bytes} payload bytes — channel sends are deep-copying again"
        );
    }

    #[test]
    fn shared_init_table_is_reusable_across_runs() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 21);
        let ctx = ExecCtx::sequential();
        let iv = crate::initializer_values(&g).unwrap();
        let opts = RunOptions::default().init_values(Arc::clone(&iv));
        let a = run_parallel_opts(&g, &clustering, &inputs, &ctx, &opts).unwrap();
        let b = run_parallel_opts(&g, &clustering, &inputs, &ctx, &opts).unwrap();
        let fresh = run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
        // Same table, same inputs, deterministic kernels → identical envs.
        assert_eq!(a, b);
        assert_eq!(a, fresh);
        // The shared table survives the runs untouched (COW means a run can
        // never mutate the weights in place).
        assert_eq!(iv.len(), g.initializers.len());
    }

    #[test]
    fn profiler_records_every_op() {
        let g = synthetic::fork_join(3, 2, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 1);
        let (_, db) =
            run_parallel_profiled(&g, &clustering, &inputs, &ExecCtx::sequential()).unwrap();
        assert_eq!(db.records().len(), g.num_nodes());
        // end >= start for every record
        assert!(db.records().iter().all(|r| r.end_ns >= r.start_ns));
    }

    #[test]
    fn invalid_schedule_missing_producers_fails_fast() {
        // A schedule that omits the producer ops entirely (check_coverage
        // would reject it) must error at setup, not hang in recv. Note
        // first-ready-first execution makes *covering* schedules
        // deadlock-free by construction: the topologically-minimal
        // unexecuted op always has its operands en route, so only broken
        // schedules like this one can stall — and they are caught here.
        use ramiel_cluster::hyper::{HyperClustering, HyperOp};
        use ramiel_ir::{DType, GraphBuilder, OpKind};

        let mut b = GraphBuilder::new("dl");
        let x = b.input("x", DType::F32, vec![2]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Sigmoid, vec![a]);
        b.output(&c);
        let g = b.finish().unwrap();

        let hc = HyperClustering {
            batch: 2,
            hyperclusters: vec![
                vec![HyperOp { batch: 0, node: 1 }],
                vec![HyperOp { batch: 1, node: 1 }],
            ],
            switched: true,
        };
        let inputs = vec![synth_inputs(&g, 0), synth_inputs(&g, 1)];
        let err = run_hyper(&g, &hc, &inputs, &ExecCtx::sequential()).unwrap_err();
        assert_eq!(err.code(), "RT-SETUP");
        assert!(err.to_string().contains("unassigned"), "unexpected: {err}");
    }

    #[test]
    fn adversarial_cross_batch_order_still_completes() {
        // The wait-cycle shape that deadlocks strict in-order workers:
        // W0 = [c(b0), a(b1)], W1 = [c(b1), a(b0)]. First-ready-first
        // execution reorders around the blocked head and completes.
        use ramiel_cluster::hyper::{HyperClustering, HyperOp};
        use ramiel_ir::{DType, GraphBuilder, OpKind};

        let mut b = GraphBuilder::new("adv");
        let x = b.input("x", DType::F32, vec![2]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Sigmoid, vec![a]);
        b.output(&c);
        let g = b.finish().unwrap();

        let hc = HyperClustering {
            batch: 2,
            hyperclusters: vec![
                vec![HyperOp { batch: 0, node: 1 }, HyperOp { batch: 1, node: 0 }],
                vec![HyperOp { batch: 1, node: 1 }, HyperOp { batch: 0, node: 0 }],
            ],
            switched: true,
        };
        hc.check_coverage(2).unwrap();
        let inputs = vec![synth_inputs(&g, 0), synth_inputs(&g, 1)];
        let ctx = ExecCtx::sequential();
        let outs = run_hyper(&g, &hc, &inputs, &ctx).unwrap();
        for (b_i, inp) in inputs.iter().enumerate() {
            let seq = crate::exec::run_sequential(&g, inp, &ctx).unwrap();
            assert_eq!(seq, outs[b_i]);
        }
    }

    #[test]
    fn wrong_batch_count_rejected() {
        let g = synthetic::chain(3);
        let clustering = cluster_graph(&g, &StaticCost);
        let hc = ramiel_cluster::hypercluster(&clustering, 2);
        let inputs = vec![synth_inputs(&g, 0)]; // only 1 env for batch 2
        let err = run_hyper(&g, &hc, &inputs, &ExecCtx::sequential()).unwrap_err();
        assert_eq!(err.code(), "RT-SETUP");
    }

    /// Find a node whose output crosses clusters (so dropping its message
    /// actually starves a consumer).
    fn cross_cluster_producer(g: &Graph, clustering: &Clustering) -> usize {
        let assign = clustering.assignment();
        let adj = g.adjacency();
        for node in &g.nodes {
            for inp in &node.inputs {
                if let Some(&p) = adj.producer_of.get(inp) {
                    if assign[&p] != assign[&node.id] {
                        return p;
                    }
                }
            }
        }
        panic!("graph has no cross-cluster edge");
    }

    #[test]
    fn injected_kernel_fault_is_structured_and_aborts_peers() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 11);
        let node = cross_cluster_producer(&g, &clustering);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::KernelError,
            }],
        });
        let opts = RunOptions::with_injector(inj.clone()).recv_timeout(Duration::from_secs(5));
        let start = Instant::now();
        let err =
            run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT", "got {err}");
        assert!(
            matches!(err, RuntimeError::Injected { node: n, .. } if n == node),
            "{err}"
        );
        assert_eq!(inj.fired().len(), 1);
        // abort broadcast must beat the 5s recv timeout by a wide margin
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "peers waited out the timeout"
        );
    }

    #[test]
    fn injected_worker_panic_is_captured_not_propagated() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 3);
        let node = cross_cluster_producer(&g, &clustering);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::WorkerPanic,
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_secs(5));
        let err =
            run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT", "got {err}");
        assert!(
            matches!(
                err,
                RuntimeError::Injected {
                    kind: FaultKind::WorkerPanic,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn dropped_message_surfaces_as_timeout() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 7);
        let node = cross_cluster_producer(&g, &clustering);
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::DropMessage,
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_millis(200));
        let err =
            run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
        assert_eq!(err.code(), "RT-TIMEOUT", "got {err}");
    }

    #[test]
    fn delays_do_not_change_outputs() {
        let g = synthetic::fork_join(3, 2, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 9);
        let ctx = ExecCtx::sequential();
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![
                Fault {
                    node: 0,
                    batch: 0,
                    exec_index: 0,
                    kind: FaultKind::SendDelay { millis: 10 },
                },
                Fault {
                    node: 1,
                    batch: 0,
                    exec_index: 0,
                    kind: FaultKind::RecvDelay { millis: 10 },
                },
            ],
        });
        let opts = RunOptions::with_injector(inj.clone());
        let par = run_parallel_opts(&g, &clustering, &inputs, &ctx, &opts).unwrap();
        assert_close(&seq, &par);
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn empty_plan_injector_changes_nothing() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 5);
        let ctx = ExecCtx::sequential();
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let inj = FaultInjector::new(FaultPlan::none());
        let opts = RunOptions::with_injector(inj.clone());
        let par = run_parallel_opts(&g, &clustering, &inputs, &ctx, &opts).unwrap();
        assert_close(&seq, &par);
        assert!(inj.fired().is_empty());
    }
}
