//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed-driven schedule of faults to inject into a run:
//! *kernel error on node N's k-th execution*, *worker panic*, *send/recv
//! delay*, *dropped message*. The plan is pure data — two runs with the same
//! plan over the same graph observe exactly the same faults, because every
//! fault is keyed by `(node, batch, exec_index)` and each worker executes a
//! given `(node, batch)` instance at most once per attempt. Retries advance
//! the execution count, so a fault with `exec_index = k` fires on the k-th
//! attempt and *only* then — which is what makes supervised retry converge.
//!
//! The [`FaultInjector`] is the runtime half: executors call
//! [`FaultInjector::begin_node`] before evaluating a node and act on the
//! armed [`FaultKind`]s. Kernel faults do not short-circuit in the executor;
//! they are threaded through [`ExecCtx::with_kernel_hook`] so the fault
//! travels the same path a real kernel failure would (`eval_op` → `ExecError`
//! → executor error mapping). With no injector installed the executors pay a
//! single `Option` check per node; with an empty plan, one `HashMap` lookup.

use parking_lot::Mutex;
use ramiel_tensor::ExecCtx;
use std::collections::HashMap;
use std::sync::Arc;

/// Marker prefix carried by injected kernel faults through the tensor layer,
/// so executors can tell an injected `ExecError` from a genuine one.
pub const INJECT_MARKER: &str = "fault-injected:";

/// Panic payload used for injected worker panics (thrown via
/// `std::panic::panic_any` so supervisors can downcast instead of parsing
/// strings). Test harnesses can filter these out of the panic hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    pub node: usize,
    pub cluster: Option<usize>,
}

/// The kinds of fault the injector can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The node's kernel evaluation fails with an injected `ExecError`.
    KernelError,
    /// The worker executing the node panics (via [`InjectedPanic`]).
    WorkerPanic,
    /// The worker sleeps before shipping the node's outputs (slow `put`).
    SendDelay { millis: u64 },
    /// The worker sleeps before evaluating the node (slow `get`/pickup).
    RecvDelay { millis: u64 },
    /// The node's outputs are not sent to remote consumers (lost message);
    /// consumers observe a recv timeout.
    DropMessage,
}

impl FaultKind {
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::KernelError => "kernel-error",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::SendDelay { .. } => "send-delay",
            FaultKind::RecvDelay { .. } => "recv-delay",
            FaultKind::DropMessage => "drop-message",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::SendDelay { millis } => write!(f, "send-delay({millis}ms)"),
            FaultKind::RecvDelay { millis } => write!(f, "recv-delay({millis}ms)"),
            other => f.write_str(other.name()),
        }
    }
}

/// One scheduled fault: fire `kind` on the `exec_index`-th execution of
/// `(node, batch)` (0-based, counted across retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub node: usize,
    pub batch: usize,
    pub exec_index: u32,
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at node {} (batch {}, exec #{})",
            self.kind, self.node, self.batch, self.exec_index
        )
    }
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    pub faults: Vec<Fault>,
}

/// splitmix64 — tiny, deterministic, no external dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: injection machinery armed, nothing fires. Used by the
    /// overhead guard bench.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derive a plan of `count` faults over a graph of `num_nodes` nodes and
    /// `batch` batch elements, purely from `seed`. `exec_index` is drawn
    /// from {0, 1, 2} so retried runs can be re-faulted.
    pub fn random(seed: u64, num_nodes: usize, batch: usize, count: usize) -> Self {
        let mut st = seed ^ 0xda71_ef00_c0ff_ee00;
        let mut faults = Vec::with_capacity(count);
        if num_nodes == 0 {
            return FaultPlan { seed, faults };
        }
        for _ in 0..count {
            let node = (splitmix64(&mut st) as usize) % num_nodes;
            let b = (splitmix64(&mut st) as usize) % batch.max(1);
            let exec_index = (splitmix64(&mut st) % 3) as u32;
            let kind = match splitmix64(&mut st) % 5 {
                0 => FaultKind::KernelError,
                1 => FaultKind::WorkerPanic,
                2 => FaultKind::SendDelay {
                    millis: 1 + splitmix64(&mut st) % 20,
                },
                3 => FaultKind::RecvDelay {
                    millis: 1 + splitmix64(&mut st) % 20,
                },
                _ => FaultKind::DropMessage,
            };
            faults.push(Fault {
                node,
                batch: b,
                exec_index,
                kind,
            });
        }
        FaultPlan { seed, faults }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Runtime half of the fault model: tracks per-`(node, batch)` execution
/// counts and arms the planned faults at the right execution. Shared across
/// workers (and across supervised retries) behind an `Arc`.
pub struct FaultInjector {
    plan: FaultPlan,
    /// (node, batch) → planned (exec_index, kind) pairs. Only keys present
    /// here ever touch the counts mutex, so an empty plan costs one failed
    /// lookup per node.
    index: HashMap<(usize, usize), Vec<(u32, FaultKind)>>,
    counts: Mutex<HashMap<(usize, usize), u32>>,
    fired: Mutex<Vec<Fault>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        let mut index: HashMap<(usize, usize), Vec<(u32, FaultKind)>> = HashMap::new();
        for f in &plan.faults {
            index
                .entry((f.node, f.batch))
                .or_default()
                .push((f.exec_index, f.kind));
        }
        Arc::new(FaultInjector {
            plan,
            index,
            counts: Mutex::new(HashMap::new()),
            fired: Mutex::new(Vec::new()),
        })
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record one execution of `(node, batch)` and return the faults armed
    /// for exactly this execution (usually none). Deterministic: the n-th
    /// call for a given key always observes count n.
    pub fn begin_node(&self, node: usize, batch: usize) -> Vec<FaultKind> {
        let Some(entries) = self.index.get(&(node, batch)) else {
            return Vec::new();
        };
        let mut counts = self.counts.lock();
        let c = counts.entry((node, batch)).or_insert(0);
        let k = *c;
        *c += 1;
        drop(counts);
        let armed: Vec<FaultKind> = entries
            .iter()
            .filter(|(i, _)| *i == k)
            .map(|(_, kind)| *kind)
            .collect();
        if !armed.is_empty() {
            let mut fired = self.fired.lock();
            for kind in &armed {
                fired.push(Fault {
                    node,
                    batch,
                    exec_index: k,
                    kind: *kind,
                });
            }
        }
        armed
    }

    /// Every fault that has actually fired so far (across retries), in
    /// canonical `(node, batch, exec_index, kind)` order. Faults on
    /// *different* workers reach the log in scheduling order, so the raw
    /// append order is not reproducible across runs — the sort is what makes
    /// the report deterministic for a given plan.
    pub fn fired(&self) -> Vec<Fault> {
        let mut fired = self.fired.lock().clone();
        fired.sort_by_key(|f| (f.node, f.batch, f.exec_index, f.kind.name()));
        fired
    }

    /// Build an [`ExecCtx`] whose kernel hook fails the next evaluation with
    /// an injected error, so the fault flows through the real kernel path.
    pub fn kernel_fault_ctx(base: &ExecCtx, cluster: Option<usize>, node: usize) -> ExecCtx {
        let msg = match cluster {
            Some(c) => format!("{INJECT_MARKER} kernel fault at node {node} (cluster {c})"),
            None => format!("{INJECT_MARKER} kernel fault at node {node}"),
        };
        base.with_kernel_hook(Arc::new(move |_op| Some(msg.clone())))
    }
}

/// Convert a caught panic payload into a structured [`crate::RuntimeError`]:
/// injected panics (thrown as [`InjectedPanic`]) become `Injected`, anything
/// else becomes `WorkerPanic` with the stringified payload.
pub fn panic_to_error(
    cluster: Option<usize>,
    payload: Box<dyn std::any::Any + Send>,
) -> crate::RuntimeError {
    match payload.downcast::<InjectedPanic>() {
        Ok(ip) => crate::RuntimeError::Injected {
            cluster: ip.cluster.or(cluster),
            node: ip.node,
            kind: FaultKind::WorkerPanic,
        },
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            crate::RuntimeError::WorkerPanic {
                cluster,
                node: None,
                detail,
            }
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("fired", &self.fired.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::random(42, 17, 4, 6);
        let b = FaultPlan::random(42, 17, 4, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        assert!(a.faults.iter().all(|f| f.node < 17 && f.batch < 4));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::random(1, 50, 2, 8);
        let b = FaultPlan::random(2, 50, 2, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn injector_fires_on_exact_execution_index() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 3,
                batch: 0,
                exec_index: 1,
                kind: FaultKind::KernelError,
            }],
        };
        let inj = FaultInjector::new(plan);
        assert!(inj.begin_node(3, 0).is_empty(), "exec #0 must not fire");
        assert_eq!(inj.begin_node(3, 0), vec![FaultKind::KernelError]);
        assert!(inj.begin_node(3, 0).is_empty(), "exec #2 must not fire");
        assert!(inj.begin_node(4, 0).is_empty(), "other nodes untouched");
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn empty_plan_fires_nothing() {
        let inj = FaultInjector::new(FaultPlan::none());
        for n in 0..100 {
            assert!(inj.begin_node(n, 0).is_empty());
        }
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn kernel_fault_ctx_flows_through_eval() {
        use ramiel_ir::OpKind;
        use ramiel_tensor::{eval_op, Tensor, Value};
        let ctx = ExecCtx::sequential();
        let faulted = FaultInjector::kernel_fault_ctx(&ctx, Some(2), 7);
        let x = Value::F32(Tensor::new(vec![2], vec![1.0, -1.0]).unwrap());
        let err = eval_op(&faulted, &OpKind::Relu, std::slice::from_ref(&x)).unwrap_err();
        assert!(err.0.starts_with(INJECT_MARKER), "{}", err.0);
        assert!(
            err.0.contains("node 7") && err.0.contains("cluster 2"),
            "{}",
            err.0
        );
        // the clean ctx is unaffected
        assert!(eval_op(&ctx, &OpKind::Relu, &[x]).is_ok());
    }
}
