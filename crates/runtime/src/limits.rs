//! Central home for the runtime's channel and timeout constants.
//!
//! These numbers used to be scattered as magic literals across the
//! executors (`parallel`, `pool`, `hyperpool`). They live here so the
//! static capacity-deadlock lint in `ramiel-analyze` and the executors
//! provably agree on the values being analyzed: the lint imports these
//! constants instead of guessing.

/// Capacity of the bounded data-plane channels carrying cross-cluster
/// tensors (worker inboxes in `parallel`, `pool` and `hyperpool`). A full
/// inbox applies backpressure to producers; `ramiel-analyze` RA0401 flags
/// schedules whose worst-case in-flight message count can reach this bound
/// inside a cluster cycle, which is the shape that can deadlock. Sized far
/// above any real schedule (the largest model ships a few hundred
/// cross-cluster messages per batch) so backpressure never engages in
/// practice.
pub const DATA_CHANNEL_CAPACITY: usize = 4096;

/// Default worker recv timeout, overridable via [`RECV_TIMEOUT_ENV`].
pub const DEFAULT_RECV_TIMEOUT_MS: u64 = 30_000;

/// Environment variable overriding [`DEFAULT_RECV_TIMEOUT_MS`].
pub const RECV_TIMEOUT_ENV: &str = "RAMIEL_RECV_TIMEOUT_MS";

/// Extra slack the hyperpool's result collector waits beyond the worker
/// recv timeout, so workers time out (with per-op context) before the
/// collector gives up.
pub const COLLECTOR_GRACE_MS: u64 = 2_000;
