//! Supervised parallel execution: retry, backoff, and sequential fallback.
//!
//! The parallel executor already converts worker panics, timeouts and
//! injected faults into structured [`RuntimeError`]s; the supervisor decides
//! what to do with them. Policy:
//!
//! 1. **Retry** transient-shaped failures (`RT-TIMEOUT`, `RT-PANIC`,
//!    `RT-CHANNEL`, `RT-INJECT`) up to [`SupervisorConfig::max_retries`]
//!    times with bounded exponential backoff. Every cluster is idempotent —
//!    kernels are pure functions of their inputs and workers own disjoint
//!    node sets — so re-running a failed inference from scratch is safe.
//!    Injected faults are keyed to an execution index, so a retry advances
//!    past them by construction (the determinism guarantee: which attempt a
//!    fault hits is a pure function of the [`crate::FaultPlan`]).
//! 2. **Fall back** to the reference sequential executor once retries are
//!    exhausted, re-executing the failed run's work on the calling thread so
//!    callers still get correct outputs with no channels left to fail.
//! 3. **Give up immediately** on deterministic failures (`RT-KERNEL`,
//!    `RT-SETUP`): a genuine kernel/data error or a broken schedule fails
//!    identically on every attempt, and papering over a schedule bug with
//!    the sequential executor would hide exactly what `ramiel check` exists
//!    to catch.

use crate::exec::run_sequential_opts;
use crate::fault::{panic_to_error, Fault, FaultInjector};
use crate::parallel::{run_hyper_opts, RunOptions};
use crate::{Env, Result, RuntimeError};
use ramiel_cluster::hyper::HyperClustering;
use ramiel_cluster::Clustering;
use ramiel_ir::Graph;
use ramiel_tensor::ExecCtx;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retry attempts after the first failure (0 = single attempt).
    pub max_retries: u32,
    /// First backoff pause; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Re-execute on the reference sequential executor after retries are
    /// exhausted (retryable failures only).
    pub fallback: bool,
    /// Worker recv timeout; `None` uses `RAMIEL_RECV_TIMEOUT_MS` or 30s.
    pub recv_timeout: Option<Duration>,
    /// Observability sink: retry/fallback decisions are emitted as trace
    /// instants (disabled handle = zero cost).
    pub obs: ramiel_obs::Obs,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            fallback: true,
            recv_timeout: None,
            obs: ramiel_obs::Obs::disabled(),
        }
    }
}

/// What happened during one supervised run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Parallel attempts made (including the first).
    pub attempts: u32,
    /// Whether the sequential fallback produced the final result.
    pub fell_back: bool,
    /// Errors that triggered a retry or the fallback, in order.
    pub errors: Vec<RuntimeError>,
    /// Faults the injector actually fired, across all attempts.
    pub faults_fired: Vec<Fault>,
}

fn backoff_for(cfg: &SupervisorConfig, retry: u32) -> Duration {
    let mult = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
    cfg.backoff_base
        .checked_mul(mult)
        .unwrap_or(cfg.backoff_max)
        .min(cfg.backoff_max)
}

/// Supervised batch-1 parallel run over a clustering.
pub fn run_supervised(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    injector: Option<Arc<FaultInjector>>,
    cfg: &SupervisorConfig,
) -> (Result<Env>, RunReport) {
    let opts = RunOptions {
        injector,
        ..RunOptions::default()
    };
    run_supervised_opts(graph, clustering, inputs, ctx, &opts, cfg)
}

/// [`run_supervised`] with explicit [`RunOptions`] (shared initializer
/// table, obs sink, recv timeout).
pub fn run_supervised_opts(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
    cfg: &SupervisorConfig,
) -> (Result<Env>, RunReport) {
    let hc = ramiel_cluster::hypercluster(clustering, 1);
    let (res, report) =
        run_hyper_supervised_opts(graph, &hc, std::slice::from_ref(inputs), ctx, opts, cfg);
    (
        res.map(|mut outs| outs.pop().expect("batch 1 yields one output env")),
        report,
    )
}

/// Supervised hyperclustered run: retry with backoff, then sequential
/// fallback per batch element. Returns the outcome plus a [`RunReport`].
pub fn run_hyper_supervised(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    injector: Option<Arc<FaultInjector>>,
    cfg: &SupervisorConfig,
) -> (Result<Vec<Env>>, RunReport) {
    let opts = RunOptions {
        injector,
        ..RunOptions::default()
    };
    run_hyper_supervised_opts(graph, hc, inputs, ctx, &opts, cfg)
}

/// [`run_hyper_supervised`] with explicit [`RunOptions`]. A caller-supplied
/// `init_values` table is reused across every attempt **and** the sequential
/// fallback — serving callers hold the plan's table for the process
/// lifetime, so supervision never rebuilds (deep-copies) the weights.
pub fn run_hyper_supervised_opts(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
    cfg: &SupervisorConfig,
) -> (Result<Vec<Env>>, RunReport) {
    supervise(graph, inputs, ctx, opts, cfg, |o| {
        run_hyper_opts(graph, hc, inputs, ctx, o)
    })
}

/// Supervised batch-1 run on the work-stealing executor: same retry /
/// backoff / sequential-fallback policy as the channel executors. The
/// stealing executor reports the same structured `RuntimeError`s, so the
/// retryability classification carries over unchanged.
pub fn run_stealing_supervised_opts(
    graph: &Graph,
    clustering: &Clustering,
    inputs: &Env,
    ctx: &ExecCtx,
    opts: &RunOptions,
    cfg: &SupervisorConfig,
) -> (Result<Env>, RunReport) {
    let (res, report) = supervise(graph, std::slice::from_ref(inputs), ctx, opts, cfg, |o| {
        crate::stealing::run_stealing_opts(graph, clustering, inputs, ctx, o).map(|out| vec![out])
    });
    (
        res.map(|mut outs| outs.pop().expect("batch 1 yields one output env")),
        report,
    )
}

/// Supervised hyper-batch run on the work-stealing executor.
pub fn run_hyper_stealing_supervised_opts(
    graph: &Graph,
    hc: &HyperClustering,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
    cfg: &SupervisorConfig,
) -> (Result<Vec<Env>>, RunReport) {
    supervise(graph, inputs, ctx, opts, cfg, |o| {
        crate::stealing::run_hyper_stealing_opts(graph, hc, inputs, ctx, o)
    })
}

/// The shared supervision core: retry `attempt` with bounded backoff while
/// failures are retryable, then fall back to per-batch-element sequential
/// execution. Every executor variant plugs in via the `attempt` closure.
fn supervise(
    graph: &Graph,
    inputs: &[Env],
    ctx: &ExecCtx,
    opts: &RunOptions,
    cfg: &SupervisorConfig,
    attempt: impl Fn(&RunOptions) -> Result<Vec<Env>>,
) -> (Result<Vec<Env>>, RunReport) {
    let mut opts = opts.clone();
    if opts.recv_timeout.is_none() {
        opts.recv_timeout = cfg.recv_timeout;
    }
    if !opts.obs.is_enabled() {
        opts.obs = cfg.obs.clone();
    }
    if opts.init_values.is_none() {
        // Convert the weights once here so retries and the sequential
        // fallback share one table instead of rebuilding it per attempt.
        // On failure fall back to per-run conversion, which will surface
        // the same error with run context attached.
        opts.init_values = crate::initializer_values(graph).ok();
    }
    let injector = opts.injector.clone();
    let mut report = RunReport::default();
    let finish = |report: &mut RunReport| {
        if let Some(inj) = &injector {
            report.faults_fired = inj.fired();
        }
    };

    let mut last_err: Option<RuntimeError> = None;
    for retry in 0..=cfg.max_retries {
        report.attempts += 1;
        let r = catch_unwind(AssertUnwindSafe(|| attempt(&opts)))
            .unwrap_or_else(|payload| Err(panic_to_error(None, payload)));
        match r {
            Ok(outs) => {
                finish(&mut report);
                return (Ok(outs), report);
            }
            Err(e) => {
                let retryable = e.is_retryable();
                report.errors.push(e.clone());
                last_err = Some(e);
                if !retryable {
                    // Deterministic failure: neither retry nor fallback can
                    // produce a different (honest) answer.
                    finish(&mut report);
                    return (Err(last_err.expect("just set")), report);
                }
                if retry < cfg.max_retries {
                    cfg.obs.instant(
                        0,
                        format!("supervisor:retry (attempt {})", retry + 2),
                        "supervisor",
                        serde_json::json!({
                            "error": last_err.as_ref().expect("just set").code(),
                            "backoff_ms": backoff_for(cfg, retry).as_millis() as u64,
                        }),
                    );
                    std::thread::sleep(backoff_for(cfg, retry));
                }
            }
        }
    }

    if cfg.fallback {
        report.fell_back = true;
        cfg.obs.instant(
            0,
            "supervisor:fallback to sequential".to_string(),
            "supervisor",
            serde_json::json!({
                "error": last_err.as_ref().expect("retries exhausted").code(),
                "attempts": report.attempts,
            }),
        );
        let mut outs = Vec::with_capacity(inputs.len());
        for env in inputs {
            let r = catch_unwind(AssertUnwindSafe(|| {
                run_sequential_opts(graph, env, ctx, &opts)
            }))
            .unwrap_or_else(|payload| Err(panic_to_error(None, payload)));
            match r {
                Ok(out) => outs.push(out),
                Err(e) => {
                    report.errors.push(e.clone());
                    finish(&mut report);
                    return (Err(e), report);
                }
            }
        }
        finish(&mut report);
        return (Ok(outs), report);
    }

    finish(&mut report);
    (
        Err(last_err.expect("loop ran at least one attempt")),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::{run_sequential, synth_inputs};
    use ramiel_cluster::{cluster_graph, StaticCost};
    use ramiel_models::synthetic;

    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info
                    .payload()
                    .downcast_ref::<crate::fault::InjectedPanic>()
                    .is_some()
                {
                    return; // expected chaos, keep test output readable
                }
                prev(info);
            }));
        });
    }

    fn one_fault(node: usize, exec_index: u32, kind: FaultKind) -> Arc<FaultInjector> {
        FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node,
                batch: 0,
                exec_index,
                kind,
            }],
        })
    }

    #[test]
    fn retry_recovers_from_injected_kernel_fault() {
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 11);
        let ctx = ExecCtx::sequential();
        let expect = run_sequential(&g, &inputs, &ctx).unwrap();
        let inj = one_fault(2, 0, FaultKind::KernelError);
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            fallback: false,
            recv_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let (res, report) = run_supervised(&g, &clustering, &inputs, &ctx, Some(inj), &cfg);
        assert_eq!(res.unwrap(), expect);
        assert_eq!(report.attempts, 2);
        assert!(!report.fell_back);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.faults_fired.len(), 1);
    }

    #[test]
    fn fallback_recovers_when_retries_exhausted() {
        quiet_injected_panics();
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 4);
        let ctx = ExecCtx::sequential();
        let expect = run_sequential(&g, &inputs, &ctx).unwrap();
        // panic on both the first AND the retry attempt
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![
                Fault {
                    node: 1,
                    batch: 0,
                    exec_index: 0,
                    kind: FaultKind::WorkerPanic,
                },
                Fault {
                    node: 1,
                    batch: 0,
                    exec_index: 1,
                    kind: FaultKind::WorkerPanic,
                },
            ],
        });
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            fallback: true,
            recv_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let (res, report) = run_supervised(&g, &clustering, &inputs, &ctx, Some(inj), &cfg);
        assert_eq!(res.unwrap(), expect);
        assert_eq!(report.attempts, 2);
        assert!(report.fell_back);
        assert_eq!(report.faults_fired.len(), 2);
    }

    #[test]
    fn non_retryable_kernel_error_fails_without_retry() {
        // A graph whose Gather goes out of range at runtime: deterministic
        // data error → one attempt, no fallback masking.
        use ramiel_ir::{DType, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let idx = b.init("idx", ramiel_ir::TensorData::vec_i64(vec![5]));
        let y = b.op("g", OpKind::Gather { axis: 0 }, vec![x, idx]);
        b.output(&y);
        let g = b.finish().unwrap();
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 1);
        let cfg = SupervisorConfig {
            max_retries: 3,
            fallback: true,
            ..Default::default()
        };
        let (res, report) =
            run_supervised(&g, &clustering, &inputs, &ExecCtx::sequential(), None, &cfg);
        let err = res.unwrap_err();
        assert_eq!(err.code(), "RT-KERNEL");
        assert_eq!(report.attempts, 1, "deterministic errors must not retry");
        assert!(!report.fell_back);
    }

    #[test]
    fn opts_variant_reuses_caller_init_table_through_fallback() {
        quiet_injected_panics();
        let g = synthetic::fork_join(4, 3, 3);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 4);
        let ctx = ExecCtx::sequential();
        let expect = run_sequential(&g, &inputs, &ctx).unwrap();
        let iv = crate::initializer_values(&g).unwrap();
        // Panic on every parallel attempt so the sequential fallback runs —
        // both paths must share the caller's table, not rebuild it.
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![
                Fault {
                    node: 1,
                    batch: 0,
                    exec_index: 0,
                    kind: FaultKind::WorkerPanic,
                },
                Fault {
                    node: 1,
                    batch: 0,
                    exec_index: 1,
                    kind: FaultKind::WorkerPanic,
                },
            ],
        });
        let opts = RunOptions::with_injector(inj)
            .recv_timeout(Duration::from_secs(5))
            .init_values(Arc::clone(&iv));
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            fallback: true,
            ..Default::default()
        };
        let (res, report) = run_supervised_opts(&g, &clustering, &inputs, &ctx, &opts, &cfg);
        assert_eq!(res.unwrap(), expect);
        assert!(report.fell_back);
        // The shared table is still ours alone once the run finished: no
        // attempt squirreled away a rebuilt copy.
        assert_eq!(iv.len(), g.initializers.len());
    }

    #[test]
    fn backoff_is_bounded() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(40),
            ..Default::default()
        };
        assert_eq!(backoff_for(&cfg, 0), Duration::from_millis(10));
        assert_eq!(backoff_for(&cfg, 1), Duration::from_millis(20));
        assert_eq!(backoff_for(&cfg, 2), Duration::from_millis(40));
        assert_eq!(backoff_for(&cfg, 10), Duration::from_millis(40));
        assert_eq!(backoff_for(&cfg, 40), Duration::from_millis(40));
    }
}
