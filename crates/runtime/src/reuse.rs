//! Liveness bookkeeping shared by all four executors.
//!
//! Each executor (or worker thread) tracks, per environment key, how many
//! reads remain before the value is dead. Dead values are evicted from the
//! environment — which both releases real memory early and is what lets the
//! in-place rewrite (`ramiel_passes::inplace`) find a uniquely-owned buffer
//! at its last use. The tracker also charges/discharges the optional
//! [`MemGauge`] on the [`ExecCtx`], so measured peak live bytes line up
//! with the accounting model `ramiel-analyze` uses for its static estimate:
//! a value is charged from the step that materializes it in an environment
//! to the step after its last read, graph outputs stay charged to the end,
//! and alias-producing ops (reshape family, `Identity`/`Dropout`,
//! `Constant` fetches) charge zero because they share an existing buffer.

use ramiel_ir::OpKind;
use ramiel_tensor::{MemGauge, Value};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// True for ops whose output shares its input buffer (`Tensor::reshaped` /
/// `clone` paths in `eval_op`): their outputs are refcount bumps, not
/// allocations, so liveness accounting charges them zero bytes.
pub fn is_alias_op(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Reshape
            | OpKind::Flatten { .. }
            | OpKind::Squeeze { .. }
            | OpKind::Unsqueeze { .. }
            | OpKind::Identity
            | OpKind::Dropout
            // Constant outputs are fetched from the shared initializer
            // table, so the env entry is another handle, not new bytes.
            | OpKind::Constant
    )
}

/// Bytes to charge for one produced output of `op`.
pub(crate) fn charge_bytes(op: &OpKind, v: &Value) -> u64 {
    if is_alias_op(op) {
        0
    } else {
        crate::value_bytes(v)
    }
}

/// Per-worker liveness tracker over environment keys of type `K`.
pub(crate) struct Liveness<K> {
    /// Remaining reads per key (graph outputs carry one extra pin).
    uses: HashMap<K, usize>,
    /// Gauge-charged bytes per currently-live key.
    charged: HashMap<K, u64>,
    gauge: Option<Arc<MemGauge>>,
}

impl<K: Hash + Eq + Clone> Liveness<K> {
    pub fn new(uses: HashMap<K, usize>, gauge: Option<Arc<MemGauge>>) -> Self {
        Liveness {
            uses,
            charged: HashMap::new(),
            gauge,
        }
    }

    /// Remaining reads of `k` (0 when the key is unknown to this worker).
    pub fn remaining(&self, k: &K) -> usize {
        self.uses.get(k).copied().unwrap_or(0)
    }

    /// Record that a value was materialized in the environment under `k`,
    /// charging `bytes` to the gauge. A no-op when no gauge is attached —
    /// eviction itself needs no byte accounting.
    pub fn charge(&mut self, k: K, bytes: u64) {
        let Some(g) = &self.gauge else {
            return;
        };
        g.alloc(bytes as usize);
        // Re-materializing a key (a duplicate channel delivery) must not
        // leak the previous charge.
        if let Some(prev) = self.charged.insert(k, bytes) {
            g.free(prev as usize);
        }
    }

    /// Record one read of `k`; returns `true` when that was the last read
    /// and the caller should evict the env entry and call
    /// [`Liveness::discharge`].
    pub fn consume(&mut self, k: &K) -> bool {
        match self.uses.get_mut(k) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                self.uses.remove(k);
                true
            }
            None => false,
        }
    }

    /// Release the gauge charge for an evicted key (no-op for keys that
    /// were never charged, e.g. graph inputs seeded by the caller).
    pub fn discharge(&mut self, k: &K) {
        if let Some(bytes) = self.charged.remove(k) {
            if let Some(g) = &self.gauge {
                g.free(bytes as usize);
            }
        }
    }
}

/// Dropping the tracker frees every remaining charge (pinned graph outputs,
/// values kept alive by `reuse: false`, anything live on an error path), so
/// a gauge shared across runs — a pool serving many jobs — doesn't
/// accumulate phantom live bytes. Peaks recorded earlier are unaffected.
impl<K> Drop for Liveness<K> {
    fn drop(&mut self) {
        if let Some(g) = &self.gauge {
            for (_, bytes) in self.charged.drain() {
                g.free(bytes as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_counts_down_and_reports_death() {
        let mut uses = HashMap::new();
        uses.insert("a", 2usize);
        let mut live = Liveness::new(uses, None);
        assert_eq!(live.remaining(&"a"), 2);
        assert!(!live.consume(&"a"));
        assert!(live.consume(&"a"));
        assert!(!live.consume(&"a"), "dead keys never report again");
        assert_eq!(live.remaining(&"b"), 0);
    }

    #[test]
    fn charge_discharge_round_trips_through_gauge() {
        let g = MemGauge::new();
        let mut live = Liveness::new(HashMap::new(), Some(Arc::clone(&g)));
        live.charge("x", 100);
        live.charge("y", 40);
        assert_eq!(g.live_bytes(), 140);
        live.discharge(&"x");
        live.discharge(&"x"); // double-discharge is a no-op
        assert_eq!(g.live_bytes(), 40);
        assert_eq!(g.peak_bytes(), 140);
    }

    #[test]
    fn alias_ops_charge_zero() {
        assert!(is_alias_op(&OpKind::Reshape));
        assert!(is_alias_op(&OpKind::Identity));
        assert!(!is_alias_op(&OpKind::Relu));
        assert!(!is_alias_op(&OpKind::Transpose { perm: vec![] }));
    }
}
