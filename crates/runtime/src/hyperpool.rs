//! Persistent *hypercluster* worker pool — the serving-path executor.
//!
//! [`crate::ClusterPool`] keeps workers alive across batch-1 inferences;
//! a serving layer that coalesces requests into hypercluster batches needs
//! the same shape for batch > 1, with the batch size varying job to job
//! (whatever the micro-batcher managed to collect before its delay budget
//! ran out). [`HyperPool`] is that executor: one standing worker per
//! cluster, each job shipping an [`Arc`]'d schedule ([`PlannedBatch`]) so
//! consecutive jobs can run at different batch sizes without respawning
//! threads or recomputing routing tables.
//!
//! Workers execute their op list **first-ready-first**, exactly like the
//! per-run executor in [`crate::parallel`] — load-bearing for *switched*
//! hyperclusters, where strict in-order execution can deadlock on
//! cross-batch wait cycles. Messages are tagged `(job, tensor, batch)` so
//! back-to-back jobs cannot cross-talk.
//!
//! ## Failure semantics
//!
//! Same contract as [`crate::ClusterPool`]: a failing or panicking job must
//! not kill the pool. Workers catch panics per job, report a structured
//! [`RuntimeError`] through the done channel, and broadcast `JobAbort` so
//! peers blocked on that job's tensors give up immediately. The pool stays
//! serviceable for the next job — which is what lets the serving layer
//! retry a poisoned batch (or degrade it to per-request sequential
//! execution) without tearing the server down.

use crate::fault::{panic_to_error, FaultInjector, FaultKind, InjectedPanic, INJECT_MARKER};
use crate::parallel::{default_recv_timeout, RunOptions};
use crate::reuse::{charge_bytes, Liveness};
use crate::{value_bytes, Env, Result, RuntimeError};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use ramiel_cluster::hyper::{HyperClustering, HyperOp};
use ramiel_ir::{Graph, OpKind};
use ramiel_obs::{ChannelEdgeStats, ChannelMeter, Obs};
use ramiel_passes::{inplace_marks, InPlaceMarks};
use ramiel_tensor::{eval_op, eval_op_inplace, ExecCtx, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A tensor instance: (job id, tensor name, batch element).
type Key = (u64, String, usize);

/// A hypercluster schedule plus its precomputed message-routing table.
/// Built once per (clustering, batch size) and shared — via `Arc` — by
/// every job that executes at that batch size, so the per-job cost of a
/// different batch size is a pointer swap, not a recompute.
pub struct PlannedBatch {
    hc: HyperClustering,
    /// For every produced tensor instance `(name, batch)`, the remote
    /// workers that consume it.
    consumers: HashMap<(String, usize), Vec<usize>>,
}

impl PlannedBatch {
    /// Precompute ownership and routing for `hc` over `graph`. Fails fast
    /// (RT-SETUP) on schedules that reference unassigned producers.
    pub fn new(graph: &Graph, hc: HyperClustering) -> Result<PlannedBatch> {
        let mut owner: HashMap<(usize, usize), usize> = HashMap::new();
        for (w, ops) in hc.hyperclusters.iter().enumerate() {
            for op in ops {
                owner.insert((op.batch, op.node), w);
            }
        }
        let adj = graph.adjacency();
        let mut consumers: HashMap<(String, usize), Vec<usize>> = HashMap::new();
        for (w, ops) in hc.hyperclusters.iter().enumerate() {
            for op in ops {
                let node = &graph.nodes[op.node];
                for inp in &node.inputs {
                    if let Some(&p) = adj.producer_of.get(inp) {
                        let pw = owner
                            .get(&(op.batch, p))
                            .ok_or_else(|| RuntimeError::Setup(format!("node {p} unassigned")))?;
                        if *pw != w {
                            let entry = consumers.entry((inp.clone(), op.batch)).or_default();
                            if !entry.contains(&w) {
                                entry.push(w);
                            }
                        }
                    }
                }
            }
        }
        Ok(PlannedBatch { hc, consumers })
    }

    /// Batch size this schedule executes.
    pub fn batch(&self) -> usize {
        self.hc.batch
    }

    /// Worker count the schedule expects (one per hypercluster).
    pub fn num_workers(&self) -> usize {
        self.hc.num_hyperclusters()
    }

    /// The underlying schedule.
    pub fn hyperclustering(&self) -> &HyperClustering {
        &self.hc
    }
}

enum PoolMsg {
    Job {
        id: u64,
        inputs: Arc<Vec<Env>>,
        plan: Arc<PlannedBatch>,
    },
    /// Tensor plus the sending worker (for per-edge channel metrics).
    Tensor(Key, Value, usize),
    /// A peer failed this job: stop waiting for its tensors.
    JobAbort(u64),
    Stop,
}

struct PoolDone {
    job: u64,
    /// (batch element, tensor name, value) graph outputs this worker made.
    outputs: Vec<(usize, String, Value)>,
    error: Option<RuntimeError>,
}

/// A standing pool of hypercluster workers. Create once per compiled plan,
/// call [`run_batch`](Self::run_batch) per micro-batch (any batch size whose
/// [`PlannedBatch`] matches the worker count), drop to stop.
pub struct HyperPool {
    worker_txs: Vec<Sender<PoolMsg>>,
    done_rx: Receiver<PoolDone>,
    handles: Vec<JoinHandle<()>>,
    next_job: u64,
    workers: usize,
    graph_outputs: Vec<String>,
    init_values: Arc<HashMap<String, Value>>,
    recv_timeout: Duration,
    meter: Arc<ChannelMeter>,
}

impl HyperPool {
    /// Spawn `workers` standing workers over `graph` (one per cluster of
    /// the clustering every submitted [`PlannedBatch`] was derived from).
    pub fn new(graph: &Graph, workers: usize, ctx: &ExecCtx) -> Result<HyperPool> {
        HyperPool::with_options(graph, workers, ctx, &RunOptions::default())
    }

    /// [`HyperPool::new`] with explicit [`RunOptions`] (shared initializer
    /// table, fault injection, recv timeout, obs sink).
    pub fn with_options(
        graph: &Graph,
        workers: usize,
        ctx: &ExecCtx,
        opts: &RunOptions,
    ) -> Result<HyperPool> {
        if workers == 0 {
            return Err(RuntimeError::Setup("pool needs at least one worker".into()));
        }
        let ctx = &opts.apply_backend(ctx);
        let graph = Arc::new(graph.clone());
        let recv_timeout = opts.recv_timeout.unwrap_or_else(default_recv_timeout);
        let init_values = match &opts.init_values {
            Some(iv) => Arc::clone(iv),
            None => crate::initializer_values(&graph)?,
        };
        let graph_outputs = graph.outputs.clone();
        let marks = Arc::new(if opts.reuse {
            inplace_marks(&graph)
        } else {
            InPlaceMarks::empty()
        });

        // Worker inboxes are bounded (capacity from `limits`, shared with
        // the ramiel-analyze RA0401 lint); the done channel stays unbounded
        // control plane.
        let channels: Vec<(Sender<PoolMsg>, Receiver<PoolMsg>)> = (0..workers)
            .map(|_| bounded(crate::limits::DATA_CHANNEL_CAPACITY))
            .collect();
        let worker_txs: Vec<Sender<PoolMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let (done_tx, done_rx) = unbounded::<PoolDone>();
        let meter = Arc::new(ChannelMeter::new(workers));

        let mut handles = Vec::with_capacity(workers);
        for (w, (_, rx)) in channels.iter().enumerate() {
            let rx = rx.clone();
            let peer_txs = worker_txs.clone();
            let graph = Arc::clone(&graph);
            let init_values = Arc::clone(&init_values);
            let done_tx = done_tx.clone();
            let ctx = ctx.clone();
            let injector = opts.injector.clone();
            let meter = Arc::clone(&meter);
            let obs = opts.obs.clone();
            let marks = Arc::clone(&marks);
            let reuse = opts.reuse;
            handles.push(std::thread::spawn(move || {
                worker_main(WorkerState {
                    graph: &graph,
                    me: w,
                    init_values: &init_values,
                    rx,
                    peer_txs: &peer_txs,
                    done_tx,
                    ctx: &ctx,
                    injector: injector.as_ref(),
                    recv_timeout,
                    meter: &meter,
                    obs,
                    marks: &marks,
                    reuse,
                });
            }));
        }

        Ok(HyperPool {
            worker_txs,
            done_rx,
            handles,
            next_job: 0,
            workers,
            graph_outputs,
            init_values,
            recv_timeout,
            meter,
        })
    }

    /// Worker count (schedules submitted here must match it).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative per-edge channel statistics since the pool was created.
    pub fn channel_stats(&self) -> Vec<ChannelEdgeStats> {
        self.meter.stats()
    }

    /// Execute one micro-batch through the standing workers. Returns one
    /// output environment per batch element.
    pub fn run_batch(
        &mut self,
        plan: &Arc<PlannedBatch>,
        inputs: &Arc<Vec<Env>>,
    ) -> Result<Vec<Env>> {
        if plan.num_workers() != self.workers {
            return Err(RuntimeError::Setup(format!(
                "schedule has {} hyperclusters but the pool has {} workers",
                plan.num_workers(),
                self.workers
            )));
        }
        if inputs.len() != plan.batch() {
            return Err(RuntimeError::Setup(format!(
                "schedule expects {} input envs, got {}",
                plan.batch(),
                inputs.len()
            )));
        }
        let id = self.next_job;
        self.next_job += 1;
        for tx in &self.worker_txs {
            tx.send(PoolMsg::Job {
                id,
                inputs: Arc::clone(inputs),
                plan: Arc::clone(plan),
            })
            .map_err(|_| RuntimeError::ChannelClosed {
                cluster: None,
                detail: "pool worker hung up".into(),
            })?;
        }
        let mut outs = vec![Env::new(); plan.batch()];
        let mut errors: Vec<RuntimeError> = Vec::new();
        // Workers bound their own recvs by `recv_timeout` and then report a
        // structured Timeout; waiting strictly longer here means a wedged
        // *worker* surfaces as its own error instead of racing this
        // collector-side deadline (losing that race strands the worker's
        // late PoolDone in the channel for the next job to trip over).
        let wait = self
            .recv_timeout
            .saturating_add(Duration::from_millis(crate::limits::COLLECTOR_GRACE_MS));
        let mut received = 0;
        while received < self.workers {
            let done = self
                .done_rx
                .recv_timeout(wait)
                .map_err(|_| RuntimeError::Timeout {
                    cluster: None,
                    pending_ops: self.workers - received,
                    detail: format!("pool collector timed out waiting for job {id} results"),
                })?;
            if done.job != id {
                // Stale completion from a job a previous (timed-out)
                // collection abandoned — drain and ignore.
                continue;
            }
            received += 1;
            if let Some(e) = done.error {
                errors.push(e);
            }
            for (b, name, v) in done.outputs {
                outs[b].insert(name, v);
            }
        }
        // Report the root cause, not a peer's secondary abort error.
        if let Some(e) = errors
            .into_iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.severity_rank(), *i))
            .map(|(_, e)| e)
        {
            return Err(e);
        }
        // Outputs that are direct inputs/initializers (degenerate but legal).
        for (b, env) in outs.iter_mut().enumerate() {
            for name in &self.graph_outputs {
                if !env.contains_key(name) {
                    if let Some(v) = inputs[b].get(name).or_else(|| self.init_values.get(name)) {
                        env.insert(name.clone(), v.clone());
                    }
                }
            }
        }
        Ok(outs)
    }
}

impl Drop for HyperPool {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(PoolMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct WorkerState<'a> {
    graph: &'a Graph,
    me: usize,
    init_values: &'a HashMap<String, Value>,
    rx: Receiver<PoolMsg>,
    peer_txs: &'a [Sender<PoolMsg>],
    done_tx: Sender<PoolDone>,
    ctx: &'a ExecCtx,
    injector: Option<&'a Arc<FaultInjector>>,
    recv_timeout: Duration,
    meter: &'a ChannelMeter,
    obs: Obs,
    marks: &'a InPlaceMarks,
    reuse: bool,
}

fn job_abort_error(me: usize) -> RuntimeError {
    RuntimeError::ChannelClosed {
        cluster: Some(me),
        detail: crate::ABORT_DETAIL.into(),
    }
}

fn worker_main(st: WorkerState<'_>) {
    let graph_outputs: HashSet<&str> = st.graph.outputs.iter().map(String::as_str).collect();
    // Tensors that arrived before their job started on this worker.
    let mut stash: HashMap<Key, Value> = HashMap::new();
    // Jobs a peer aborted before we started (or finished) them.
    let mut aborted: HashSet<u64> = HashSet::new();

    while let Ok(msg) = st.rx.recv() {
        let (job, inputs, plan) = match msg {
            PoolMsg::Stop => return,
            PoolMsg::Tensor(key, v, from) => {
                st.meter.on_recv(from, st.me, 0);
                stash.insert(key, v);
                continue;
            }
            PoolMsg::JobAbort(j) => {
                aborted.insert(j);
                continue;
            }
            PoolMsg::Job { id, inputs, plan } => (id, inputs, plan),
        };

        let (outputs, error) = if aborted.contains(&job) {
            (Vec::new(), Some(job_abort_error(st.me)))
        } else {
            // Panics must not kill the pool thread: catch per job, report
            // as a structured error, keep serving.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(
                    &st,
                    &graph_outputs,
                    &mut stash,
                    &mut aborted,
                    job,
                    &inputs,
                    &plan,
                )
            }));
            match r {
                Ok(pair) => pair,
                Err(payload) => (Vec::new(), Some(panic_to_error(Some(st.me), payload))),
            }
        };

        if error.is_some() {
            // Unblock peers waiting on this job's tensors. try_send: a full
            // inbox means the peer is not blocked in recv; it will hit its
            // own recv timeout if it ever waits on this job again.
            for (t, tx) in st.peer_txs.iter().enumerate() {
                if t != st.me {
                    let _ = tx.try_send(PoolMsg::JobAbort(job));
                }
            }
        }
        // Jobs finish in submission order: stale stash/abort entries for
        // this or earlier jobs can never be read again.
        stash.retain(|(j, _, _), _| *j > job);
        aborted.retain(|j| *j > job);

        if st
            .done_tx
            .send(PoolDone {
                job,
                outputs,
                error,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Execute one job's hypercluster ops on this worker, first-ready-first.
/// Returns the graph outputs this worker produced and the first error.
#[allow(clippy::type_complexity)]
fn run_job(
    st: &WorkerState<'_>,
    graph_outputs: &HashSet<&str>,
    stash: &mut HashMap<Key, Value>,
    aborted: &mut HashSet<u64>,
    job: u64,
    inputs: &[Env],
    plan: &PlannedBatch,
) -> (Vec<(usize, String, Value)>, Option<RuntimeError>) {
    let me = st.me;
    let ops: &[HyperOp] = &plan.hc.hyperclusters[me];
    // Tensor instances of *this* job available to this worker.
    let mut env: HashMap<(String, usize), Value> = HashMap::new();
    // Per-job liveness: reads remaining per tensor instance on this worker
    // (graph outputs produced here get one extra pin so they stay charged
    // for the whole job, matching the static estimate).
    let mut live = {
        let mut uses: HashMap<(String, usize), usize> = HashMap::new();
        for op in ops {
            let node = &st.graph.nodes[op.node];
            for t in &node.inputs {
                *uses.entry((t.clone(), op.batch)).or_insert(0) += 1;
            }
            for name in &node.outputs {
                if graph_outputs.contains(name.as_str()) {
                    *uses.entry((name.clone(), op.batch)).or_insert(0) += 1;
                }
            }
        }
        Liveness::new(uses, st.ctx.mem_gauge().cloned())
    };
    // Move stashed early arrivals for this job in.
    let mine: Vec<Key> = stash
        .keys()
        .filter(|(j, _, _)| *j == job)
        .cloned()
        .collect();
    for key in mine {
        if let Some(v) = stash.remove(&key) {
            live.charge((key.1.clone(), key.2), value_bytes(&v));
            env.insert((key.1, key.2), v);
        }
    }
    let mut remaining: Vec<bool> = vec![true; ops.len()];
    let mut left = ops.len();
    let mut outputs: Vec<(usize, String, Value)> = Vec::new();

    let available = |env: &HashMap<(String, usize), Value>, tensor: &str, batch: usize| -> bool {
        env.contains_key(&(tensor.to_string(), batch))
            || st.init_values.contains_key(tensor)
            || inputs[batch].contains_key(tensor)
    };
    let fetch =
        |env: &HashMap<(String, usize), Value>, tensor: &str, batch: usize| -> Result<Value> {
            if let Some(v) = env.get(&(tensor.to_string(), batch)) {
                return Ok(v.clone());
            }
            if let Some(v) = inputs[batch].get(tensor) {
                return Ok(v.clone());
            }
            if let Some(v) = st.init_values.get(tensor) {
                return Ok(v.clone());
            }
            Err(RuntimeError::Setup(format!(
                "worker {me}: tensor `{tensor}` (batch {batch}) unavailable"
            )))
        };
    // Route an inbox message; returns an error to surface, if any.
    macro_rules! take_msg {
        ($msg:expr) => {
            match $msg {
                PoolMsg::Tensor((j, name, b), v, from) => {
                    st.meter.on_recv(from, me, 0);
                    if j == job {
                        live.charge((name.clone(), b), value_bytes(&v));
                        env.insert((name, b), v);
                    } else if j > job {
                        stash.insert((j, name, b), v);
                    } // j < job: stale, drop
                }
                PoolMsg::JobAbort(j) => {
                    if j == job {
                        return (outputs, Some(job_abort_error(me)));
                    }
                    aborted.insert(j);
                }
                PoolMsg::Stop | PoolMsg::Job { .. } => {
                    return (
                        outputs,
                        Some(RuntimeError::Setup(format!(
                            "worker {me}: protocol error mid-job {job}"
                        ))),
                    );
                }
            }
        };
    }

    while left > 0 {
        // Drain any already-arrived messages without blocking.
        loop {
            match st.rx.try_recv() {
                Ok(msg) => take_msg!(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    return (
                        outputs,
                        Some(RuntimeError::ChannelClosed {
                            cluster: Some(me),
                            detail: "pool inbox closed".into(),
                        }),
                    )
                }
            }
        }
        // First op whose operands are all available.
        let next = ops.iter().enumerate().position(|(i, op)| {
            remaining[i]
                && st.graph.nodes[op.node]
                    .inputs
                    .iter()
                    .all(|t| available(&env, t, op.batch))
        });
        let Some(i) = next else {
            // Block for the next message (bounded, so schedule bugs surface
            // as errors instead of hangs).
            match st.rx.recv_timeout(st.recv_timeout) {
                Ok(msg) => take_msg!(msg),
                Err(_) => {
                    return (
                        outputs,
                        Some(RuntimeError::Timeout {
                            cluster: Some(me),
                            pending_ops: left,
                            detail: format!(
                                "worker {me}: timed out waiting for job {job} messages"
                            ),
                        }),
                    )
                }
            }
            continue;
        };

        remaining[i] = false;
        left -= 1;
        let op = &ops[i];
        let node = &st.graph.nodes[op.node];

        // Fault injection: arm this execution's faults, if any.
        let armed = match st.injector {
            Some(inj) => inj.begin_node(op.node, op.batch),
            None => Vec::new(),
        };
        let mut kernel_fault = false;
        let mut drop_msgs = false;
        let mut send_delay = None;
        for kind in &armed {
            st.obs.instant(
                me as u32,
                format!("fault:{}", kind.name()),
                "fault",
                serde_json::json!({ "node": op.node, "batch": op.batch, "job": job }),
            );
            match kind {
                FaultKind::KernelError => kernel_fault = true,
                FaultKind::WorkerPanic => std::panic::panic_any(InjectedPanic {
                    node: op.node,
                    cluster: Some(me),
                }),
                FaultKind::SendDelay { millis } => {
                    send_delay = Some(Duration::from_millis(*millis))
                }
                FaultKind::RecvDelay { millis } => {
                    std::thread::sleep(Duration::from_millis(*millis))
                }
                FaultKind::DropMessage => drop_msgs = true,
            }
        }

        let result = if matches!(node.op, OpKind::Constant) {
            if kernel_fault {
                return (
                    outputs,
                    Some(RuntimeError::Injected {
                        cluster: Some(me),
                        node: op.node,
                        kind: FaultKind::KernelError,
                    }),
                );
            }
            // A Constant's payload is already in the shared initializer
            // table under its output name — share it, don't re-convert.
            st.init_values
                .get(&node.outputs[0])
                .ok_or_else(|| {
                    ramiel_tensor::ExecError(format!("Constant `{}` missing payload", node.name))
                })
                .map(|v| vec![v.clone()])
        } else {
            // A node marked by the in-place pass takes its dying operand
            // *out* of the env (sole remaining read), so the kernel's
            // `Arc::get_mut` gate can overwrite the buffer in place.
            let mark = st.marks.slot(op.node);
            let mut owned_slot = None;
            let mut ins: Vec<Value> = Vec::with_capacity(node.inputs.len());
            for (slot, t) in node.inputs.iter().enumerate() {
                if mark == Some(slot) {
                    let key = (t.clone(), op.batch);
                    if live.remaining(&key) == 1 {
                        if let Some(v) = env.remove(&key) {
                            owned_slot = Some(slot);
                            ins.push(v);
                            continue;
                        }
                    }
                }
                match fetch(&env, t, op.batch) {
                    Ok(v) => ins.push(v),
                    Err(e) => return (outputs, Some(e)),
                }
            }
            let hooked;
            let eval_ctx = if kernel_fault {
                hooked = FaultInjector::kernel_fault_ctx(st.ctx, Some(me), op.node);
                &hooked
            } else {
                st.ctx
            };
            match owned_slot {
                Some(s) => eval_op_inplace(eval_ctx, &node.op, ins, s),
                None => eval_op(eval_ctx, &node.op, &ins),
            }
        };
        let outs = match result {
            Ok(o) => o,
            Err(e) => {
                let err = if e.0.starts_with(INJECT_MARKER) {
                    RuntimeError::Injected {
                        cluster: Some(me),
                        node: op.node,
                        kind: FaultKind::KernelError,
                    }
                } else {
                    RuntimeError::Kernel {
                        cluster: Some(me),
                        node: Some(op.node),
                        msg: format!("{}: {}", node.name, e.0),
                    }
                };
                return (outputs, Some(err));
            }
        };
        if let Some(d) = send_delay {
            std::thread::sleep(d);
        }
        for (name, v) in node.outputs.iter().zip(outs) {
            if !drop_msgs {
                if let Some(targets) = plan.consumers.get(&(name.clone(), op.batch)) {
                    for &t in targets {
                        st.meter
                            .on_send(me, t, value_bytes(&v), crate::value_copied_bytes(&v));
                        if st.peer_txs[t]
                            .send(PoolMsg::Tensor(
                                (job, name.clone(), op.batch),
                                v.clone(),
                                me,
                            ))
                            .is_err()
                        {
                            return (
                                outputs,
                                Some(RuntimeError::ChannelClosed {
                                    cluster: Some(me),
                                    detail: "peer worker hung up".into(),
                                }),
                            );
                        }
                    }
                }
            }
            if graph_outputs.contains(name.as_str()) {
                outputs.push((op.batch, name.clone(), v.clone()));
            }
            live.charge((name.clone(), op.batch), charge_bytes(&node.op, &v));
            env.insert((name.clone(), op.batch), v);
        }
        if st.reuse {
            // Inputs whose last local read this was — and outputs with no
            // local reader (already shipped/recorded above) — die here.
            for t in &node.inputs {
                let key = (t.clone(), op.batch);
                if live.consume(&key) {
                    env.remove(&key);
                    live.discharge(&key);
                }
            }
            for name in &node.outputs {
                let key = (name.clone(), op.batch);
                if live.remaining(&key) == 0 {
                    env.remove(&key);
                    live.discharge(&key);
                }
            }
        }
    }

    (outputs, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::fault::{Fault, FaultPlan};
    use crate::synth_inputs;
    use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
    use ramiel_models::{build, synthetic, ModelConfig, ModelKind};

    fn plans_for(
        graph: &Graph,
        clustering: &ramiel_cluster::Clustering,
        batches: &[usize],
        switched: bool,
    ) -> Vec<Arc<PlannedBatch>> {
        batches
            .iter()
            .map(|&b| {
                let hc = if switched {
                    switched_hypercluster(clustering, b)
                } else {
                    hypercluster(clustering, b)
                };
                Arc::new(PlannedBatch::new(graph, hc).unwrap())
            })
            .collect()
    }

    #[test]
    fn pool_matches_sequential_across_batch_sizes() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let plans = plans_for(&g, &clustering, &[1, 2, 4], false);
        let mut pool = HyperPool::new(&g, clustering.num_clusters(), &ctx).unwrap();
        // Interleave batch sizes job to job, the way a micro-batcher does.
        for (job, plan) in plans.iter().cycle().take(6).enumerate() {
            let inputs: Vec<Env> = (0..plan.batch())
                .map(|b| synth_inputs(&g, (job * 10 + b) as u64))
                .collect();
            let outs = pool.run_batch(plan, &Arc::new(inputs.clone())).unwrap();
            for (b, inp) in inputs.iter().enumerate() {
                let seq = run_sequential(&g, inp, &ctx).unwrap();
                assert_eq!(seq, outs[b], "job {job} batch {b}");
            }
        }
    }

    #[test]
    fn pool_executes_switched_schedules() {
        let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let plans = plans_for(&g, &clustering, &[3], true);
        let mut pool = HyperPool::new(&g, clustering.num_clusters(), &ctx).unwrap();
        let inputs: Vec<Env> = (0..3).map(|b| synth_inputs(&g, 40 + b as u64)).collect();
        let outs = pool
            .run_batch(&plans[0], &Arc::new(inputs.clone()))
            .unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let seq = run_sequential(&g, inp, &ctx).unwrap();
            assert_eq!(seq, outs[b], "batch {b}");
        }
    }

    #[test]
    fn mismatched_schedule_rejected() {
        let g = synthetic::chain(4);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let plan = plans_for(&g, &clustering, &[2], false).remove(0);
        let mut pool = HyperPool::new(&g, clustering.num_clusters() + 1, &ctx).unwrap();
        let inputs: Vec<Env> = (0..2).map(|b| synth_inputs(&g, b as u64)).collect();
        let err = pool.run_batch(&plan, &Arc::new(inputs)).unwrap_err();
        assert_eq!(err.code(), "RT-SETUP");
    }

    #[test]
    fn pool_survives_injected_panic_and_keeps_serving() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<InjectedPanic>().is_some() {
                    return;
                }
                prev(info);
            }));
        });
        let g = synthetic::fork_join(4, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![Fault {
                node: 1,
                batch: 0,
                exec_index: 0,
                kind: FaultKind::WorkerPanic,
            }],
        });
        let opts = RunOptions::with_injector(inj).recv_timeout(Duration::from_secs(5));
        let plan = plans_for(&g, &clustering, &[2], false).remove(0);
        let mut pool = HyperPool::with_options(&g, clustering.num_clusters(), &ctx, &opts).unwrap();
        let inputs: Vec<Env> = (0..2).map(|b| synth_inputs(&g, b as u64)).collect();
        let shared = Arc::new(inputs.clone());
        let err = pool.run_batch(&plan, &shared).unwrap_err();
        assert_eq!(err.code(), "RT-INJECT", "got {err}");
        // The pool must still be alive and produce correct results.
        let outs = pool.run_batch(&plan, &shared).unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let seq = run_sequential(&g, inp, &ctx).unwrap();
            assert_eq!(seq, outs[b], "batch {b}");
        }
    }

    #[test]
    fn dropping_pool_stops_workers() {
        let g = synthetic::chain(4);
        let clustering = cluster_graph(&g, &StaticCost);
        let pool = HyperPool::new(&g, clustering.num_clusters(), &ExecCtx::sequential()).unwrap();
        drop(pool); // must not hang
    }
}
